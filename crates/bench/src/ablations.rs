//! Ablation studies beyond the paper's headline figures (DESIGN.md §7).
//!
//! Each ablation isolates one design choice of ATM and sweeps it:
//!
//! - [`epsilon_sweep`] — the resizing discretization factor ε: candidate
//!   count (solver work) vs ticket reduction vs safety margin;
//! - [`rho_threshold_sweep`] — CBC's correlation threshold ρ_Th:
//!   signature ratio vs spatial-model accuracy;
//! - [`dtw_band_sweep`] — Sakoe–Chiba band width: DTW approximation
//!   error vs cost proxy (cells computed);
//! - [`horizon_sweep`] — prediction horizon: accuracy degradation as the
//!   paper's 1-day choice stretches (paper cites accuracy decreasing
//!   with horizon as the reason ATM is "conservative");
//! - [`temporal_model_sweep`] — MLP vs AR(p) vs seasonal-naive on the
//!   same signature series.

use atm_clustering::dtw::{dtw_distance, dtw_distance_banded};
use atm_core::config::{AtmConfig, ClusterMethod, ResourceScope, TemporalModel};
use atm_core::fleet::{run_fleet, Allocator};
use atm_forecast::mlp::MlpConfig;
use atm_resize::evaluate::{box_outcome, summarize};
use atm_resize::mckp::build_groups;
use atm_resize::{greedy, ResizeProblem, VmDemand};
use atm_ticketing::ThresholdPolicy;
use atm_tracegen::Resource;

use crate::{pipeline_fleet, Scale};

fn threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

/// Sweep of the discretization factor ε for CPU resizing with oracle
/// demands: candidates per VM, mean ticket reduction, and mean capacity
/// slack consumed by the ε safety margin.
pub fn epsilon_sweep(scale: Scale) {
    println!("== ablation: ε (discretization) sweep, CPU, oracle demands ==");
    let fleet = pipeline_fleet(scale);
    let policy = ThresholdPolicy::new(60.0).expect("valid threshold");
    println!(
        "{:>8} {:>16} {:>14} {:>12}",
        "epsilon", "candidates/VM", "reduction", "boxes"
    );
    for epsilon in [0.0, 0.1, 0.25, 0.5, 1.0, 2.0] {
        let mut candidate_counts = Vec::new();
        let mut outcomes = Vec::new();
        for b in &fleet.boxes {
            let demands: Vec<Vec<f64>> = b.vms.iter().map(|vm| vm.demand(Resource::Cpu)).collect();
            let capacity = b.capacity(Resource::Cpu);
            let problem = ResizeProblem::new(
                b.vms
                    .iter()
                    .zip(&demands)
                    .map(|(vm, d)| VmDemand::new(vm.name.clone(), d.clone(), 0.0, capacity))
                    .collect(),
                capacity,
                policy,
            )
            .with_epsilon(epsilon);
            if let Ok(groups) = build_groups(&problem) {
                let mean: f64 =
                    groups.iter().map(|g| g.len() as f64).sum::<f64>() / groups.len() as f64;
                candidate_counts.push(mean);
            }
            if let Ok(allocation) = greedy::solve(&problem) {
                let original: Vec<f64> =
                    b.vms.iter().map(|vm| vm.capacity(Resource::Cpu)).collect();
                if let Ok(o) = box_outcome(&demands, &original, &allocation.capacities, &policy) {
                    outcomes.push(o);
                }
            }
        }
        let mean_candidates: f64 =
            candidate_counts.iter().sum::<f64>() / candidate_counts.len().max(1) as f64;
        if let Ok(s) = summarize(&outcomes) {
            println!(
                "{:>8.2} {:>16.1} {:>12.1}% {:>12}",
                epsilon, mean_candidates, s.mean_reduction_pct, s.boxes_counted
            );
        }
    }
    println!("(larger ε shrinks the knapsack but rounds demands up — a safety margin)");
}

/// Sweep of CBC's ρ_Th: signature ratio and spatial-model in-sample APE.
pub fn rho_threshold_sweep(scale: Scale) {
    println!("== ablation: CBC ρ_Th sweep ==");
    let fleet = pipeline_fleet(scale);
    println!("{:>8} {:>12} {:>14}", "rho_th", "sig ratio", "spatial APE");
    for rho in [0.5, 0.6, 0.7, 0.8, 0.9] {
        let config = AtmConfig {
            cluster_method: ClusterMethod::Cbc { rho_threshold: rho },
            scope: ResourceScope::Inter,
            temporal: TemporalModel::Oracle,
            train_windows: 96,
            horizon: 96,
            ..AtmConfig::default()
        };
        let report = run_fleet(&fleet.boxes, &config, threads());
        println!(
            "{:>8.1} {:>11.0}% {:>13.1}%",
            rho,
            report.mean_final_ratio() * 100.0,
            report.mean_spatial_mape() * 100.0
        );
    }
    println!("(the paper's 0.7 balances reduction against linear-fit quality)");
}

/// Sweep of the Sakoe–Chiba band width: mean relative overestimate vs
/// the exact DTW distance on generated series pairs.
pub fn dtw_band_sweep(scale: Scale) {
    println!("== ablation: DTW band width sweep ==");
    let fleet = pipeline_fleet(scale);
    // Collect some demand series pairs from the first boxes.
    let mut pairs = Vec::new();
    for b in fleet.boxes.iter().take(4) {
        let series: Vec<Vec<f64>> = b
            .vms
            .iter()
            .map(|vm| vm.demand(Resource::Cpu)[..96].to_vec())
            .collect();
        for i in 0..series.len().min(6) {
            for j in i + 1..series.len().min(6) {
                pairs.push((series[i].clone(), series[j].clone()));
            }
        }
    }
    println!(
        "{:>6} {:>18} {:>14}",
        "band", "mean overestimate", "cost ratio"
    );
    for band in [1usize, 2, 4, 8, 16, 48, 96] {
        let mut ratios = Vec::new();
        for (a, b) in &pairs {
            let exact = dtw_distance(a, b).expect("non-empty series");
            let banded = dtw_distance_banded(a, b, band).expect("valid band");
            if exact > 0.0 {
                ratios.push(banded / exact);
            }
        }
        let mean_ratio: f64 = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
        // Cost proxy: fraction of the n×n matrix the band visits.
        let cost = ((2 * band + 1) as f64 / 96.0).min(1.0);
        println!("{:>6} {:>17.3}x {:>13.2}", band, mean_ratio, cost);
    }
    println!("(bands ≥ ~8 windows are near-exact at ~1/6 the cost on 96-sample days)");
}

/// Sweep of the prediction horizon: full-pipeline APE (MLP temporal
/// models) at 6h/12h/1d/2d horizons.
pub fn horizon_sweep(scale: Scale) {
    println!("== ablation: prediction-horizon sweep (MLP, CBC) ==");
    let fleet = pipeline_fleet(scale);
    println!("{:>10} {:>12} {:>12}", "horizon", "mean APE", "peak APE");
    for horizon in [24usize, 48, 96, 192] {
        let config = AtmConfig {
            cluster_method: ClusterMethod::cbc(),
            temporal: TemporalModel::Mlp(MlpConfig {
                epochs: 40,
                hidden: vec![8],
                ..MlpConfig::default()
            }),
            train_windows: match scale {
                Scale::Quick => 2 * 96,
                Scale::Full => 4 * 96,
            },
            horizon,
            ..AtmConfig::default()
        };
        let report = run_fleet(&fleet.boxes, &config, threads());
        if report.reports.is_empty() {
            println!("{horizon:>9}w        (trace too short)");
            continue;
        }
        let mean_all: f64 = report.ape_samples().iter().sum::<f64>() / report.reports.len() as f64;
        let peaks = report.peak_ape_samples();
        let mean_peak: f64 = peaks.iter().sum::<f64>() / peaks.len().max(1) as f64;
        println!(
            "{:>9}w {:>11.1}% {:>11.1}%",
            horizon,
            mean_all * 100.0,
            mean_peak * 100.0
        );
    }
    println!("(paper: accuracy decreases with horizon; 1 day = 96 windows is its pick)");
}

/// Temporal-model swap on the same fleet: MLP vs AR(8) vs seasonal-naive.
pub fn temporal_model_sweep(scale: Scale) {
    println!("== ablation: temporal model sweep (CBC signatures) ==");
    let fleet = pipeline_fleet(scale);
    let models: [(&str, TemporalModel); 4] = [
        (
            "mlp",
            TemporalModel::Mlp(MlpConfig {
                epochs: 60,
                ..MlpConfig::default()
            }),
        ),
        ("ar8", TemporalModel::Ar { order: 8 }),
        (
            "holt-wint",
            TemporalModel::HoltWinters(atm_forecast::holt_winters::HoltWintersConfig::default()),
        ),
        ("seasonal", TemporalModel::SeasonalNaive { period: 96 }),
    ];
    println!(
        "{:<10} {:>12} {:>12} {:>16}",
        "model", "mean APE", "peak APE", "ATM CPU reduction"
    );
    for (name, temporal) in models {
        let config = AtmConfig {
            cluster_method: ClusterMethod::cbc(),
            temporal,
            train_windows: 2 * 96,
            horizon: 96,
            ..AtmConfig::default()
        };
        let report = run_fleet(&fleet.boxes, &config, threads());
        if report.reports.is_empty() {
            continue;
        }
        let mean_all: f64 = report.ape_samples().iter().sum::<f64>() / report.reports.len() as f64;
        let peaks = report.peak_ape_samples();
        let mean_peak: f64 = peaks.iter().sum::<f64>() / peaks.len().max(1) as f64;
        let reduction = report
            .reduction_summary(Resource::Cpu, Allocator::Atm)
            .map_or(f64::NAN, |s| s.mean_reduction_pct);
        println!(
            "{:<10} {:>11.1}% {:>11.1}% {:>15.1}%",
            name,
            mean_all * 100.0,
            mean_peak * 100.0,
            reduction
        );
    }
    println!("(any temporal model plugs in — the paper's claim; accuracy varies)");
}

/// Ridge-regularization sweep for the spatial models: λ vs in-sample fit
/// vs out-of-sample prediction (oracle signatures isolate the spatial
/// stage).
pub fn ridge_lambda_sweep(scale: Scale) {
    println!("== ablation: spatial-model ridge λ sweep (CBC, oracle) ==");
    let fleet = pipeline_fleet(scale);
    println!(
        "{:>10} {:>16} {:>16}",
        "lambda", "in-sample APE", "1-day APE"
    );
    for lambda in [0.0, 0.1, 1.0, 10.0, 100.0] {
        let config = AtmConfig {
            cluster_method: ClusterMethod::cbc(),
            temporal: TemporalModel::Oracle,
            spatial_ridge_lambda: lambda,
            train_windows: 96,
            horizon: 96,
            ..AtmConfig::default()
        };
        let report = run_fleet(&fleet.boxes, &config, threads());
        let in_sample = report.mean_spatial_mape() * 100.0;
        let out_sample =
            report.ape_samples().iter().sum::<f64>() / report.reports.len().max(1) as f64 * 100.0;
        println!("{lambda:>10.1} {in_sample:>15.1}% {out_sample:>15.1}%");
    }
    println!("(λ > 0 trades in-sample fit for robustness to collinear signatures)");
}

/// Cluster-method sweep: DTW vs CBC vs feature-based clustering on
/// signature economy and spatial accuracy.
pub fn cluster_method_sweep(scale: Scale) {
    println!("== ablation: cluster-method sweep (Step 1 alternatives) ==");
    let fleet = pipeline_fleet(scale);
    println!(
        "{:<10} {:>12} {:>14} {:>12}",
        "method", "sig ratio", "spatial APE", "clusters"
    );
    for method in [
        ClusterMethod::dtw(),
        ClusterMethod::cbc(),
        ClusterMethod::features(),
    ] {
        let config = AtmConfig {
            cluster_method: method,
            temporal: TemporalModel::Oracle,
            train_windows: 96,
            horizon: 96,
            ..AtmConfig::default()
        };
        let report = run_fleet(&fleet.boxes, &config, threads());
        let mean_clusters: f64 = report
            .cluster_counts()
            .iter()
            .map(|&c| c as f64)
            .sum::<f64>()
            / report.reports.len().max(1) as f64;
        println!(
            "{:<10} {:>11.0}% {:>13.1}% {:>12.1}",
            method.name(),
            report.mean_final_ratio() * 100.0,
            report.mean_spatial_mape() * 100.0,
            mean_clusters
        );
    }
    println!("(features cluster by shape statistics; DTW by aligned distance; CBC by ρ)");
}

/// Seed-sensitivity study: the headline Fig. 10 number (full-ATM CPU
/// ticket reduction, CBC + MLP) across independent fleet seeds — the
/// reproducibility check a reviewer would ask for.
pub fn seed_sensitivity(scale: Scale) {
    println!("== ablation: fleet-seed sensitivity of the Fig. 10 headline ==");
    use atm_tracegen::{generate_fleet, FleetConfig};
    println!("{:>12} {:>14} {:>14}", "seed", "ATM reduction", "boxes");
    let mut reductions = Vec::new();
    for seed in [1u64, 42, 1337, 0xA7A7_2016, 99_991] {
        let fleet = generate_fleet(&FleetConfig {
            num_boxes: match scale {
                Scale::Quick => 12,
                Scale::Full => 40,
            },
            days: 3,
            gap_probability: 0.0,
            seed,
            ..FleetConfig::default()
        });
        let config = AtmConfig {
            cluster_method: ClusterMethod::cbc(),
            temporal: TemporalModel::Mlp(MlpConfig {
                epochs: 40,
                hidden: vec![8],
                ..MlpConfig::default()
            }),
            train_windows: 2 * 96,
            horizon: 96,
            ..AtmConfig::default()
        };
        let report = run_fleet(&fleet.boxes, &config, threads());
        if let Some(s) = report.reduction_summary(Resource::Cpu, Allocator::Atm) {
            println!(
                "{seed:>12} {:>13.1}% {:>14}",
                s.mean_reduction_pct, s.boxes_counted
            );
            reductions.push(s.mean_reduction_pct);
        }
    }
    if reductions.len() > 1 {
        let mean: f64 = reductions.iter().sum::<f64>() / reductions.len() as f64;
        let var: f64 = reductions
            .iter()
            .map(|r| (r - mean) * (r - mean))
            .sum::<f64>()
            / (reductions.len() - 1) as f64;
        println!(
            "across seeds: {mean:.1}% ± {:.1} (paper Fig. 10: ~60% CPU)",
            var.sqrt()
        );
    }
}

/// Runs every ablation.
pub fn run_all(scale: Scale) {
    #[allow(clippy::type_complexity)]
    let all: [(&str, fn(Scale)); 8] = [
        ("epsilon", epsilon_sweep),
        ("rho-threshold", rho_threshold_sweep),
        ("dtw-band", dtw_band_sweep),
        ("horizon", horizon_sweep),
        ("temporal-model", temporal_model_sweep),
        ("cluster-method", cluster_method_sweep),
        ("ridge-lambda", ridge_lambda_sweep),
        ("seed-sensitivity", seed_sensitivity),
    ];
    for (name, f) in all {
        println!("\n──────────────────── ablation: {name} ────────────────────");
        f(scale);
    }
}

/// Dispatches one ablation by name; returns false if unknown.
pub fn run_one(name: &str, scale: Scale) -> bool {
    match name {
        "epsilon" => epsilon_sweep(scale),
        "rho-threshold" | "rho" => rho_threshold_sweep(scale),
        "dtw-band" | "band" => dtw_band_sweep(scale),
        "horizon" => horizon_sweep(scale),
        "temporal-model" | "temporal" => temporal_model_sweep(scale),
        "cluster-method" | "cluster" => cluster_method_sweep(scale),
        "ridge-lambda" | "ridge" => ridge_lambda_sweep(scale),
        "seed-sensitivity" | "seeds" => seed_sensitivity(scale),
        _ => return false,
    }
    true
}
