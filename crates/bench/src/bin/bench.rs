//! DTW kernel and distance-matrix benchmark: times the naive DP against
//! the optimized [`DtwKernel`] and the sequential matrix build against
//! `build_parallel`, plus an observability-overhead leg (the same online
//! run with instrumentation off and on), then writes a machine-readable
//! report (the `BENCH_PIPELINE.json` at the repo root; schema in
//! `BENCHMARKS.md`).
//!
//! ```sh
//! cargo run --release -p atm-bench --bin bench -- --quick --out bench-quick.json
//! cargo run --release -p atm-bench --bin bench -- --full --out BENCH_PIPELINE.json
//! cargo run --release -p atm-bench --bin bench -- --check BENCH_PIPELINE.json
//! cargo run --release -p atm-bench --bin bench -- --quick --metrics \
//!     --compare BENCH_PIPELINE.json --tolerance 25
//! cargo run --release -p atm-bench --bin bench -- --scenario all \
//!     --compare BENCH_SCENARIOS.json
//! ```
//!
//! `--metrics` additionally writes `OBS_SNAPSHOT.json` (the full metrics
//! snapshot of the instrumented online leg, timings included) and
//! `OBS_EVENTS.jsonl` (its event log). `--compare BASELINE` re-runs the
//! bench and exits non-zero if any kernel or matrix timing regressed
//! beyond `--tolerance` percent after normalizing per DP cell, so a
//! `--quick` run can be gated against the committed `--full` baseline.
//! The fixed-scale `dtw` and `mckp` micro-legs (schema v3) always run
//! the same workload, so those are compared on raw wall time.
//!
//! `--scenario <name|all>` switches to the drift-scenario leg instead of
//! the DTW legs: it replays the committed seeded scenarios from
//! `BENCH_SCENARIOS.json` (clean baseline, adaptive, and non-adaptive
//! runs), reports the measured ticket reductions and drift events as
//! JSON, and — when `--compare` names the committed matrix — exits
//! non-zero if any measured reduction leaves its committed band.
//! `--seed N` overrides the committed seed for ad-hoc replay.
//!
//! `--tickets` switches to the ticket-intelligence leg: it replays the
//! committed churn-storm fleet from `BENCH_TICKETS.json`, measures storm
//! collapse (raw tickets vs deduplicated incidents), runs the supervised
//! fleet with chronic-offender feedback off and on, and proves the
//! feedback never changes report bytes (threads 1 vs 8, in-memory vs
//! chunk store). With `--compare`, the committed relational contract is
//! gated: the storm must still ticket, collapse must still deduplicate,
//! and feedback must not lose more than the committed band vs the
//! no-feedback run.
//!
//! `--serve` switches to the daemon overload leg: it boots a fresh
//! in-process `atm-serve` daemon per committed leg (one in-capacity, one
//! 4× overload) and drives it with the seeded virtual-time load
//! generator, reporting shed rate, degradation-rung counts, goodput, and
//! p50/p99 latency (the committed `BENCH_SERVE.json`). With `--compare`,
//! every deterministic count must match the baseline *exactly* (virtual
//! time makes the accept/shed transcript a pure function of the seed);
//! latencies are gated by `--tolerance` like the timing legs.
//!
//! Every timed leg recomputes the same distances; the binary asserts all
//! legs agree bit-for-bit before reporting, so a report is also a
//! determinism proof for the host it ran on.

use std::time::Instant;

use atm_clustering::adaptive::{agglomerate_adaptive, AdaptiveParams};
use atm_clustering::dtw::{dtw_distance, dtw_distance_banded, dtw_distance_banded_capped};
use atm_clustering::hierarchical::{agglomerate, Linkage};
use atm_clustering::kernel::DtwKernel;
use atm_clustering::prefilter::build_matrix_pruned;
use atm_clustering::DistanceMatrix;
use atm_core::config::{AdaptationConfig, ClusterMethod, TemporalModel, TicketsConfig};
use atm_core::online::{run_online, run_online_observed, DriftEventKind, OnlineReport};
use atm_core::AtmConfig;
use atm_obs::Obs;
use atm_resize::incremental::IncrementalMckp;
use atm_resize::{greedy, ResizeProblem, VmDemand};
use atm_ticketing::ThresholdPolicy;
use atm_tracegen::{generate_box, FleetConfig, ScenarioKind, ScenarioPlan};

/// Schema version written into the report; bump when fields change.
/// Version 2 added the `obs` overhead group; version 3 added the
/// fixed-scale `dtw` and `mckp` kernel micro-leg groups. `--check`
/// still accepts version-1 and version-2 reports so older committed
/// baselines stay valid.
const SCHEMA_VERSION: u64 = 3;

/// Timed matrix-build leg.
struct MatrixLeg {
    threads: usize,
    kernel: &'static str,
    build_ms: f64,
    speedup_vs_sequential_naive: f64,
}

/// Full report, rendered by [`render_json`].
struct BenchReport {
    scale: &'static str,
    host_cpus: usize,
    series_count: usize,
    series_len: usize,
    reps: usize,
    kernel_naive_ms: f64,
    kernel_optimized_ms: f64,
    nn_naive_ms: f64,
    nn_bounded_ms: f64,
    nn_abandoned_pairs: usize,
    nn_total_pairs: usize,
    matrix: Vec<MatrixLeg>,
    dtw: DtwMicroLegs,
    mckp: MckpLegs,
    online_disabled_ms: f64,
    online_enabled_ms: f64,
    distance_checksum: f64,
}

/// Fixed-scale DTW kernel micro-legs (schema v3). The workload is the
/// same regardless of `--quick`/`--full` so raw wall times are directly
/// comparable across reports without per-cell normalization.
struct DtwMicroLegs {
    series_count: usize,
    series_len: usize,
    band: usize,
    naive_ms: f64,
    banded_ms: f64,
    prefiltered_ms: f64,
    pruned_pairs: u64,
    total_pairs: u64,
    /// The median merge radius of the adaptive agglomeration — the
    /// cutoff the prefiltered leg ran with.
    adaptive_cutoff: f64,
    /// The cutoff the adaptive run itself converged to while proving
    /// the dendrogram.
    adaptive_final_cutoff: f64,
    /// Refinement rounds the adaptive run took.
    adaptive_refinements: u64,
    /// Pairs the adaptive run materialized exactly (out of
    /// `total_pairs`).
    adaptive_resolved_pairs: u64,
}

/// Fixed-scale sliding-window MCKP legs (schema v3): the same window
/// sequence solved from scratch per window vs delta-updated through
/// [`IncrementalMckp`]. Like [`DtwMicroLegs`], the workload never
/// changes with `--quick`/`--full`.
struct MckpLegs {
    vms: usize,
    window_len: usize,
    stride: usize,
    windows: usize,
    epsilon: f64,
    scratch_ms: f64,
    incremental_ms: f64,
}

impl BenchReport {
    /// Observability overhead of the online leg, in percent (can be
    /// slightly negative from timer noise on a quiet host).
    fn obs_overhead_pct(&self) -> f64 {
        (self.online_enabled_ms - self.online_disabled_ms) / self.online_disabled_ms.max(1e-9)
            * 100.0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut metrics = false;
    let mut compare: Option<String> = None;
    let mut tolerance_pct = 25.0_f64;
    let mut scenario: Option<String> = None;
    let mut seed_override: Option<u64> = None;
    let mut serve = false;
    let mut fleet: Option<String> = None;
    let mut tickets = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--metrics" => metrics = true,
            "--out" => {
                i += 1;
                if i >= args.len() {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
                out = Some(args[i].clone());
            }
            "--check" => {
                i += 1;
                if i >= args.len() {
                    eprintln!("--check requires a path");
                    std::process::exit(2);
                }
                check = Some(args[i].clone());
            }
            "--compare" => {
                i += 1;
                if i >= args.len() {
                    eprintln!("--compare requires a baseline path");
                    std::process::exit(2);
                }
                compare = Some(args[i].clone());
            }
            "--tolerance" => {
                i += 1;
                tolerance_pct = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("--tolerance requires a non-negative percentage");
                        std::process::exit(2);
                    });
            }
            "--scenario" => {
                i += 1;
                if i >= args.len() {
                    eprintln!("--scenario requires a scenario name or `all`");
                    std::process::exit(2);
                }
                scenario = Some(args[i].clone());
            }
            "--serve" => serve = true,
            "--tickets" => tickets = true,
            "--fleet" => {
                i += 1;
                if i >= args.len() {
                    eprintln!("--fleet requires a profile: `ci` or `full`");
                    std::process::exit(2);
                }
                fleet = Some(args[i].clone());
            }
            "--seed" => {
                i += 1;
                seed_override = args.get(i).and_then(|v| v.parse().ok());
                if seed_override.is_none() {
                    eprintln!("--seed requires an unsigned integer");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench [--quick|--full] [--metrics] [--out PATH] [--check PATH] \
                     [--compare BASELINE [--tolerance PCT]] \
                     [--scenario NAME|all [--seed N]] \
                     [--serve [--seed N]] \
                     [--fleet ci|full [--seed N]] \
                     [--tickets [--seed N]]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(path) = check {
        match check_file(&path) {
            Ok(()) => {
                println!("{path}: valid bench report");
                return;
            }
            Err(e) => {
                eprintln!("{path}: invalid bench report: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(selector) = scenario {
        run_scenario_mode(&selector, seed_override, out.as_deref(), compare.as_deref());
        return;
    }

    if let Some(profile) = fleet {
        run_fleet_mode(
            &profile,
            seed_override,
            out.as_deref(),
            compare.as_deref(),
            tolerance_pct,
        );
        return;
    }

    if serve {
        run_serve_mode(
            seed_override,
            out.as_deref(),
            compare.as_deref(),
            tolerance_pct,
        );
        return;
    }

    if tickets {
        run_tickets_mode(seed_override, out.as_deref(), compare.as_deref());
        return;
    }

    let (report, obs) = run(quick);
    let json = render_json(&report);
    match out {
        Some(path) => {
            // Atomic so a crash mid-write can't leave a torn report where
            // a previous good one lived.
            atm_core::fsio::write_atomic(std::path::Path::new(&path), json.as_bytes())
                .unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                });
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }

    if metrics {
        let snapshot = obs.metrics_snapshot().full_json();
        atm_core::fsio::write_atomic(
            std::path::Path::new("OBS_SNAPSHOT.json"),
            snapshot.as_bytes(),
        )
        .unwrap_or_else(|e| {
            eprintln!("cannot write OBS_SNAPSHOT.json: {e}");
            std::process::exit(1);
        });
        obs.write_events(std::path::Path::new("OBS_EVENTS.jsonl"))
            .unwrap_or_else(|e| {
                eprintln!("cannot write OBS_EVENTS.jsonl: {e}");
                std::process::exit(1);
            });
        eprintln!("wrote OBS_SNAPSHOT.json and OBS_EVENTS.jsonl");
    }

    if let Some(path) = compare {
        match compare_against(&report, &path, tolerance_pct) {
            Ok(regressions) if regressions.is_empty() => {
                eprintln!("no regressions vs {path} (tolerance {tolerance_pct}%)");
            }
            Ok(regressions) => {
                for r in &regressions {
                    eprintln!("REGRESSION: {r}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("cannot compare against {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Deterministic synthetic demand-like series (sinusoid + hash noise);
/// DTW cost depends only on lengths, so these time the kernels honestly.
fn series(len: usize, seed: u64) -> Vec<f64> {
    (0..len)
        .map(|t| {
            let mut z = (t as u64 + 1).wrapping_mul(seed.wrapping_add(0x9E3779B97F4A7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            let noise = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            50.0 + 20.0 * (t as f64 * 0.13 + seed as f64).sin() + 5.0 * noise
        })
        .collect()
}

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let value = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        last = Some(value);
    }
    (best, last.expect("reps >= 1"))
}

/// Fixed-scale DTW micro-legs: the row-DP baseline, the wavefront
/// kernel, and the LB-prefiltered matrix build, all over the same
/// 32×256 banded workload. The cutoff for the prefiltered leg is the
/// converged cutoff of the adaptive merge-radius-driven agglomeration
/// (`atm_clustering::adaptive`), which grows a star-sample seed by
/// feeding the clustering loop's merge radius back into the prefilter —
/// no exact matrix required, unlike the fixed-quartile cutoff it
/// replaces. The adaptive dendrogram and every leg's matrix are
/// asserted bit-identical to their exact references before timings are
/// reported.
fn run_dtw_micro(reps: usize) -> DtwMicroLegs {
    let (count, len, band) = (32usize, 256usize, 16usize);
    let set: Vec<Vec<f64>> = (0..count)
        .map(|i| series(len, i as u64 * 977 + 3))
        .collect();
    let n = set.len();

    let (naive_ms, naive_matrix) = time_best(reps, || {
        DistanceMatrix::build(n, |i, j| dtw_distance_banded(&set[i], &set[j], band))
            .expect("valid series")
    });
    let (banded_ms, banded_matrix) = time_best(reps, || {
        let mut kernel = DtwKernel::banded(band).expect("positive band");
        DistanceMatrix::build(n, |i, j| kernel.distance(&set[i], &set[j])).expect("valid series")
    });
    for i in 0..n {
        for j in 0..n {
            assert_eq!(
                naive_matrix.get(i, j).to_bits(),
                banded_matrix.get(i, j).to_bits(),
                "banded DTW micro-leg diverged at ({i},{j})"
            );
        }
    }

    // Adaptive cutoff: the single-linkage adaptive agglomeration grows
    // a star-sample seed by feeding its own merge radius back into the
    // prefilter (atm_clustering::adaptive), and the clustering loop's
    // median merge radius becomes the leg's cutoff — the old fixed
    // quartile needed the exact distances first, i.e. the very matrix
    // this leg is supposed to avoid building. The dendrogram the
    // adaptive run proves along the way is gated bit-identical against
    // exact agglomeration before anything is timed.
    let params = AdaptiveParams {
        band: Some(band),
        linkage: Linkage::Single,
        ..AdaptiveParams::default()
    };
    let adaptive = agglomerate_adaptive(&set, &params).expect("valid series");
    let exact_dendrogram = agglomerate(&banded_matrix, Linkage::Single).expect("non-empty matrix");
    assert_eq!(
        adaptive.dendrogram, exact_dendrogram,
        "adaptive agglomeration diverged from the exact dendrogram"
    );
    let radii = adaptive.dendrogram.merges();
    let cutoff = radii[radii.len() / 2].2;

    let (prefiltered_ms, (pruned_matrix, stats)) = time_best(reps, || {
        build_matrix_pruned(&set, Some(band), cutoff, 1).expect("valid series")
    });
    for i in 0..n {
        for j in 0..n {
            let want =
                dtw_distance_banded_capped(&set[i], &set[j], band, cutoff).expect("valid series");
            assert_eq!(
                want.to_bits(),
                pruned_matrix.get(i, j).to_bits(),
                "prefiltered DTW micro-leg diverged at ({i},{j})"
            );
        }
    }

    // Count every pair the leg left unmaterialized — bound-pruned or
    // DP'd past the cutoff — rather than only the bound-pruned ones.
    let mut pruned_pairs = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            if pruned_matrix.get(i, j) == f64::INFINITY {
                pruned_pairs += 1;
            }
        }
    }

    DtwMicroLegs {
        series_count: count,
        series_len: len,
        band,
        naive_ms,
        banded_ms,
        prefiltered_ms,
        pruned_pairs,
        total_pairs: stats.pairs,
        adaptive_cutoff: cutoff,
        adaptive_final_cutoff: adaptive.stats.final_cutoff,
        adaptive_refinements: adaptive.stats.refinements,
        adaptive_resolved_pairs: adaptive.stats.resolved_pairs,
    }
}

/// Fixed-scale sliding-window MCKP legs: 64 windows of 12 VM demand
/// streams, stride 4 over 96-sample windows, at the paper's evaluation
/// discretization ε = 5.0. The scratch leg calls [`greedy::solve`] per
/// window; the incremental leg delta-updates one [`IncrementalMckp`]
/// across the sequence. Both legs' allocations are asserted
/// bit-identical before timings are reported.
fn run_mckp_legs(reps: usize) -> MckpLegs {
    let (vms, window_len, stride, windows) = (12usize, 96usize, 4usize, 64usize);
    let epsilon = 5.0;
    let stream_len = window_len + stride * (windows - 1);
    let streams: Vec<Vec<f64>> = (0..vms)
        .map(|v| series(stream_len, v as u64 * 389 + 11))
        .collect();
    let policy = ThresholdPolicy::new(60.0).expect("valid threshold");
    let problems: Vec<ResizeProblem> = (0..windows)
        .map(|k| {
            let s = k * stride;
            ResizeProblem::new(
                streams
                    .iter()
                    .enumerate()
                    .map(|(v, st)| {
                        VmDemand::new(format!("vm{v}"), st[s..s + window_len].to_vec(), 0.0, 1e9)
                    })
                    .collect(),
                45.0 * vms as f64,
                policy.clone(),
            )
            .with_epsilon(epsilon)
        })
        .collect();

    let (scratch_ms, scratch_allocs) = time_best(reps, || {
        problems
            .iter()
            .map(|p| greedy::solve(p).expect("feasible window"))
            .collect::<Vec<_>>()
    });
    let (incremental_ms, incremental_allocs) = time_best(reps, || {
        let mut solver = IncrementalMckp::new();
        problems
            .iter()
            .map(|p| solver.solve(p).expect("feasible window"))
            .collect::<Vec<_>>()
    });
    for (w, (a, b)) in scratch_allocs.iter().zip(&incremental_allocs).enumerate() {
        assert_eq!(a.tickets, b.tickets, "MCKP legs diverged at window {w}");
        assert_eq!(
            a.capacities.len(),
            b.capacities.len(),
            "MCKP legs diverged at window {w}"
        );
        for (x, y) in a.capacities.iter().zip(&b.capacities) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "MCKP capacities diverged at window {w}"
            );
        }
    }

    MckpLegs {
        vms,
        window_len,
        stride,
        windows,
        epsilon,
        scratch_ms,
        incremental_ms,
    }
}

/// Runs every leg; also returns the [`Obs`] handle of the final
/// instrumented online rep so `--metrics` can dump its snapshot and
/// event log.
fn run(quick: bool) -> (BenchReport, Obs) {
    let (series_count, series_len, reps) = if quick { (16, 192, 3) } else { (64, 576, 3) };
    let set: Vec<Vec<f64>> = (0..series_count)
        .map(|i| series(series_len, i as u64 * 131 + 7))
        .collect();
    let n = set.len();

    // Kernel leg: all upper-triangle pairs, single thread.
    let (kernel_naive_ms, naive_matrix) = time_best(reps, || {
        DistanceMatrix::build(n, |i, j| dtw_distance(&set[i], &set[j])).expect("valid series")
    });
    let (kernel_optimized_ms, _) = time_best(reps, || {
        let mut kernel = DtwKernel::new();
        DistanceMatrix::build(n, |i, j| kernel.distance(&set[i], &set[j])).expect("valid series")
    });

    // Nearest-neighbour leg: early abandonment has a best-so-far to beat.
    let (nn_naive_ms, naive_nn) = time_best(reps, || {
        (0..n)
            .map(|i| {
                let mut best = f64::INFINITY;
                for j in 0..n {
                    if i != j {
                        best = best.min(dtw_distance(&set[i], &set[j]).expect("valid series"));
                    }
                }
                best
            })
            .collect::<Vec<f64>>()
    });
    let (nn_bounded_ms, (bounded_nn, nn_abandoned_pairs)) = time_best(reps, || {
        let mut kernel = DtwKernel::new();
        let mut abandoned = 0usize;
        let bests = (0..n)
            .map(|i| {
                let mut best = f64::INFINITY;
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    match kernel
                        .distance_bounded(&set[i], &set[j], best)
                        .expect("valid series")
                    {
                        Some(d) => best = best.min(d),
                        None => abandoned += 1,
                    }
                }
                best
            })
            .collect::<Vec<f64>>();
        (bests, abandoned)
    });
    assert_eq!(
        naive_nn.len(),
        bounded_nn.len(),
        "nearest-neighbour legs diverged"
    );
    for (a, b) in naive_nn.iter().zip(&bounded_nn) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "early abandonment changed a result"
        );
    }

    // Matrix legs: sequential baseline, then the parallel build across
    // thread counts with both kernels. All legs must agree bit-for-bit.
    let mut matrix = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        for kernel_name in ["naive", "optimized"] {
            let (build_ms, built) = if kernel_name == "naive" {
                time_best(reps, || {
                    DistanceMatrix::build_parallel(n, threads, |i, j| {
                        dtw_distance(&set[i], &set[j])
                    })
                    .expect("valid series")
                })
            } else {
                time_best(reps, || {
                    DistanceMatrix::build_parallel_with(n, threads, DtwKernel::new, |k, i, j| {
                        k.distance(&set[i], &set[j])
                    })
                    .expect("valid series")
                })
            };
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(
                        naive_matrix.get(i, j).to_bits(),
                        built.get(i, j).to_bits(),
                        "matrix leg threads={threads} kernel={kernel_name} diverged"
                    );
                }
            }
            matrix.push(MatrixLeg {
                threads,
                kernel: kernel_name,
                build_ms,
                speedup_vs_sequential_naive: kernel_naive_ms / build_ms.max(1e-9),
            });
        }
    }

    // Fixed-scale kernel micro-legs (schema v3): these ignore
    // `--quick`/`--full` on purpose so their raw wall times compare
    // directly across reports.
    let dtw = run_dtw_micro(reps);
    let mckp = run_mckp_legs(reps);

    // Observability-overhead leg: the same seeded online run with
    // instrumentation off and on. The delta is the cost of the obs layer
    // (spans, counters, events) on a realistic workload; `BENCHMARKS.md`
    // budgets it at under 2%. A fresh `Obs` per rep keeps the snapshot a
    // single-run record.
    let trace = generate_box(
        &FleetConfig {
            num_boxes: 1,
            days: if quick { 3 } else { 6 },
            seed: 42,
            gap_probability: 0.0,
            ..FleetConfig::default()
        },
        0,
    );
    let online_config = AtmConfig {
        temporal: TemporalModel::Oracle,
        train_windows: 96,
        horizon: 96,
        ..AtmConfig::fast_for_tests()
    };
    let (online_disabled_ms, disabled_report) = time_best(reps, || {
        run_online(&trace, &online_config).expect("online leg")
    });
    let (online_enabled_ms, (enabled_report, obs)) = time_best(reps, || {
        let obs = Obs::enabled(true);
        let report = run_online_observed(&trace, &online_config, &obs).expect("online leg");
        (report, obs)
    });
    assert_eq!(
        disabled_report.windows.len(),
        enabled_report.windows.len(),
        "observability changed the online run"
    );

    let mut distance_checksum = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            distance_checksum += naive_matrix.get(i, j);
        }
    }

    let report = BenchReport {
        scale: if quick { "quick" } else { "full" },
        host_cpus: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        series_count,
        series_len,
        reps,
        kernel_naive_ms,
        kernel_optimized_ms,
        nn_naive_ms,
        nn_bounded_ms,
        nn_abandoned_pairs,
        nn_total_pairs: n * (n - 1),
        matrix,
        dtw,
        mckp,
        online_disabled_ms,
        online_enabled_ms,
        distance_checksum,
    };
    (report, obs)
}

/// Renders the report as JSON. Hand-rolled (every value is a finite
/// number or a fixed string, so no escaping is needed); the schema is
/// documented in `BENCHMARKS.md` and validated by `--check`.
fn render_json(r: &BenchReport) -> String {
    let mut legs = String::new();
    for (i, leg) in r.matrix.iter().enumerate() {
        if i > 0 {
            legs.push_str(",\n");
        }
        legs.push_str(&format!(
            "    {{\"threads\": {}, \"kernel\": \"{}\", \"build_ms\": {}, \
             \"speedup_vs_sequential_naive\": {}}}",
            leg.threads, leg.kernel, leg.build_ms, leg.speedup_vs_sequential_naive
        ));
    }
    format!(
        "{{\n\
         \x20 \"schema_version\": {},\n\
         \x20 \"scale\": \"{}\",\n\
         \x20 \"host_cpus\": {},\n\
         \x20 \"series_count\": {},\n\
         \x20 \"series_len\": {},\n\
         \x20 \"reps\": {},\n\
         \x20 \"kernel\": {{\"naive_ms\": {}, \"optimized_ms\": {}, \"speedup\": {}}},\n\
         \x20 \"nn_early_abandon\": {{\"naive_ms\": {}, \"bounded_ms\": {}, \"speedup\": {}, \
         \"abandoned_pairs\": {}, \"total_pairs\": {}}},\n\
         \x20 \"matrix\": [\n{}\n  ],\n\
         \x20 \"dtw\": {{\"series_count\": {}, \"series_len\": {}, \"band\": {}, \
         \"naive_ms\": {}, \"banded_ms\": {}, \"prefiltered_ms\": {}, \
         \"banded_speedup\": {}, \"prefiltered_speedup\": {}, \
         \"pruned_pairs\": {}, \"total_pairs\": {}, \
         \"adaptive_cutoff\": {}, \"adaptive_final_cutoff\": {}, \
         \"adaptive_refinements\": {}, \"adaptive_resolved_pairs\": {}}},\n\
         \x20 \"mckp\": {{\"vms\": {}, \"window_len\": {}, \"stride\": {}, \"windows\": {}, \
         \"epsilon\": {}, \"scratch_ms\": {}, \"incremental_ms\": {}, \"speedup\": {}}},\n\
         \x20 \"obs\": {{\"online_disabled_ms\": {}, \"online_enabled_ms\": {}, \
         \"overhead_pct\": {}}},\n\
         \x20 \"distance_checksum\": {}\n\
         }}\n",
        SCHEMA_VERSION,
        r.scale,
        r.host_cpus,
        r.series_count,
        r.series_len,
        r.reps,
        r.kernel_naive_ms,
        r.kernel_optimized_ms,
        r.kernel_naive_ms / r.kernel_optimized_ms.max(1e-9),
        r.nn_naive_ms,
        r.nn_bounded_ms,
        r.nn_naive_ms / r.nn_bounded_ms.max(1e-9),
        r.nn_abandoned_pairs,
        r.nn_total_pairs,
        legs,
        r.dtw.series_count,
        r.dtw.series_len,
        r.dtw.band,
        r.dtw.naive_ms,
        r.dtw.banded_ms,
        r.dtw.prefiltered_ms,
        r.dtw.naive_ms / r.dtw.banded_ms.max(1e-9),
        r.dtw.naive_ms / r.dtw.prefiltered_ms.max(1e-9),
        r.dtw.pruned_pairs,
        r.dtw.total_pairs,
        r.dtw.adaptive_cutoff,
        r.dtw.adaptive_final_cutoff,
        r.dtw.adaptive_refinements,
        r.dtw.adaptive_resolved_pairs,
        r.mckp.vms,
        r.mckp.window_len,
        r.mckp.stride,
        r.mckp.windows,
        r.mckp.epsilon,
        r.mckp.scratch_ms,
        r.mckp.incremental_ms,
        r.mckp.scratch_ms / r.mckp.incremental_ms.max(1e-9),
        r.online_disabled_ms,
        r.online_enabled_ms,
        r.obs_overhead_pct(),
        r.distance_checksum,
    )
}

/// Validates that `path` holds a parseable bench report with the
/// documented fields (used by CI after a `--quick` smoke run, and
/// against the committed `BENCH_PIPELINE.json`).
fn check_file(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let v: serde_json::Value = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    let obj = v.as_object().ok_or("top level is not an object")?;
    for key in [
        "schema_version",
        "host_cpus",
        "series_count",
        "series_len",
        "reps",
    ] {
        if !obj.get(key).is_some_and(serde_json::Value::is_u64) {
            return Err(format!("missing or non-integer field `{key}`"));
        }
    }
    let schema_version = obj
        .get("schema_version")
        .and_then(serde_json::Value::as_u64)
        .expect("checked above");
    if !(1..=SCHEMA_VERSION).contains(&schema_version) {
        return Err(format!(
            "unsupported schema_version {schema_version} (this binary reads 1..={SCHEMA_VERSION})"
        ));
    }
    if !obj.get("scale").is_some_and(serde_json::Value::is_string) {
        return Err("missing or non-string field `scale`".into());
    }
    for (group, fields) in [
        ("kernel", &["naive_ms", "optimized_ms", "speedup"][..]),
        (
            "nn_early_abandon",
            &[
                "naive_ms",
                "bounded_ms",
                "speedup",
                "abandoned_pairs",
                "total_pairs",
            ][..],
        ),
    ] {
        let g = obj
            .get(group)
            .and_then(serde_json::Value::as_object)
            .ok_or_else(|| format!("missing object `{group}`"))?;
        for f in fields {
            if !g.get(*f).is_some_and(serde_json::Value::is_number) {
                return Err(format!("missing or non-numeric field `{group}.{f}`"));
            }
        }
    }
    let legs = obj
        .get("matrix")
        .and_then(serde_json::Value::as_array)
        .ok_or("missing array `matrix`")?;
    if legs.is_empty() {
        return Err("`matrix` has no legs".into());
    }
    for (i, leg) in legs.iter().enumerate() {
        let leg = leg
            .as_object()
            .ok_or_else(|| format!("matrix[{i}] is not an object"))?;
        if !leg.get("threads").is_some_and(serde_json::Value::is_u64) {
            return Err(format!("matrix[{i}].threads missing or non-integer"));
        }
        if !leg.get("kernel").is_some_and(serde_json::Value::is_string) {
            return Err(format!("matrix[{i}].kernel missing or non-string"));
        }
        for f in ["build_ms", "speedup_vs_sequential_naive"] {
            if !leg.get(f).is_some_and(serde_json::Value::is_number) {
                return Err(format!("matrix[{i}].{f} missing or non-numeric"));
            }
        }
    }
    // The fixed-scale kernel micro-leg groups arrived with schema
    // version 3; older baselines stay valid without them.
    if schema_version >= 3 {
        for (group, fields) in [
            (
                "dtw",
                &[
                    "series_count",
                    "series_len",
                    "band",
                    "naive_ms",
                    "banded_ms",
                    "prefiltered_ms",
                    "banded_speedup",
                    "prefiltered_speedup",
                    "pruned_pairs",
                    "total_pairs",
                ][..],
            ),
            (
                "mckp",
                &[
                    "vms",
                    "window_len",
                    "stride",
                    "windows",
                    "epsilon",
                    "scratch_ms",
                    "incremental_ms",
                    "speedup",
                ][..],
            ),
        ] {
            let g = obj
                .get(group)
                .and_then(serde_json::Value::as_object)
                .ok_or_else(|| format!("missing object `{group}`"))?;
            for f in fields {
                if !g.get(*f).is_some_and(serde_json::Value::is_number) {
                    return Err(format!("missing or non-numeric field `{group}.{f}`"));
                }
            }
        }
    }

    // The `obs` overhead group arrived with schema version 2; version-1
    // baselines (committed before the observability layer) stay valid.
    if schema_version >= 2 {
        let g = obj
            .get("obs")
            .and_then(serde_json::Value::as_object)
            .ok_or("missing object `obs`")?;
        for f in ["online_disabled_ms", "online_enabled_ms", "overhead_pct"] {
            if !g.get(f).is_some_and(serde_json::Value::is_number) {
                return Err(format!("missing or non-numeric field `obs.{f}`"));
            }
        }
    }
    if !obj
        .get("distance_checksum")
        .is_some_and(serde_json::Value::is_number)
    {
        return Err("missing or non-numeric field `distance_checksum`".into());
    }
    Ok(())
}

/// Compares the report just produced against the baseline at `path`,
/// normalizing every kernel/matrix wall time per DP cell
/// (`pairs * len^2`) so a `--quick` run is comparable with the committed
/// `--full` baseline. Returns the regressions beyond `tolerance_pct`
/// (empty = gate passes); every comparison is echoed to stderr either
/// way. Legs present in only one report are skipped, so the gate also
/// tolerates baselines from hosts with fewer matrix thread counts.
fn compare_against(
    report: &BenchReport,
    path: &str,
    tolerance_pct: f64,
) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let v: serde_json::Value = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    let obj = v.as_object().ok_or("baseline top level is not an object")?;

    let cells = |count: f64, len: f64| count * (count - 1.0) / 2.0 * len * len;
    let base_count = obj
        .get("series_count")
        .and_then(serde_json::Value::as_u64)
        .ok_or("baseline missing `series_count`")? as f64;
    let base_len = obj
        .get("series_len")
        .and_then(serde_json::Value::as_u64)
        .ok_or("baseline missing `series_len`")? as f64;
    let base_cells = cells(base_count, base_len);
    let cur_cells = cells(report.series_count as f64, report.series_len as f64);
    if base_cells <= 0.0 || cur_cells <= 0.0 {
        return Err("degenerate DP cell count".into());
    }

    let mut regressions = Vec::new();
    let mut check = |name: &str, current_ms: f64, baseline_ms: f64| {
        let cur = current_ms / cur_cells * 1e6; // ns per DP cell
        let base = baseline_ms / base_cells * 1e6;
        let delta_pct = (cur - base) / base.max(1e-12) * 100.0;
        eprintln!("{name}: {cur:.4} ns/cell vs baseline {base:.4} ns/cell ({delta_pct:+.1}%)");
        if delta_pct > tolerance_pct {
            regressions.push(format!(
                "{name} regressed {delta_pct:+.1}% per DP cell (tolerance {tolerance_pct}%)"
            ));
        }
    };

    let kernel = obj
        .get("kernel")
        .and_then(serde_json::Value::as_object)
        .ok_or("baseline missing object `kernel`")?;
    for (field, current_ms) in [
        ("naive_ms", report.kernel_naive_ms),
        ("optimized_ms", report.kernel_optimized_ms),
    ] {
        let baseline_ms = kernel
            .get(field)
            .and_then(serde_json::Value::as_f64)
            .ok_or_else(|| format!("baseline missing `kernel.{field}`"))?;
        check(&format!("kernel.{field}"), current_ms, baseline_ms);
    }

    let legs = obj
        .get("matrix")
        .and_then(serde_json::Value::as_array)
        .ok_or("baseline missing array `matrix`")?;
    for leg in legs {
        let threads = leg.get("threads").and_then(serde_json::Value::as_u64);
        let kernel_name = leg.get("kernel").and_then(serde_json::Value::as_str);
        let build_ms = leg.get("build_ms").and_then(serde_json::Value::as_f64);
        let (Some(threads), Some(kernel_name), Some(build_ms)) = (threads, kernel_name, build_ms)
        else {
            return Err("malformed baseline matrix leg".into());
        };
        if let Some(current) = report
            .matrix
            .iter()
            .find(|l| l.threads as u64 == threads && l.kernel == kernel_name)
        {
            check(
                &format!("matrix[threads={threads},kernel={kernel_name}]"),
                current.build_ms,
                build_ms,
            );
        }
    }

    // Fixed-scale micro-legs (schema v3): the workload never changes, so
    // raw wall times compare directly. Baselines written before v3 lack
    // these groups and are skipped, same as absent matrix legs.
    let mut check_raw = |name: &str, current_ms: f64, baseline_ms: f64| {
        let delta_pct = (current_ms - baseline_ms) / baseline_ms.max(1e-12) * 100.0;
        eprintln!("{name}: {current_ms:.3} ms vs baseline {baseline_ms:.3} ms ({delta_pct:+.1}%)");
        if delta_pct > tolerance_pct {
            regressions.push(format!(
                "{name} regressed {delta_pct:+.1}% (tolerance {tolerance_pct}%)"
            ));
        }
    };
    if let Some(g) = obj.get("dtw").and_then(serde_json::Value::as_object) {
        for (field, current_ms) in [
            ("naive_ms", report.dtw.naive_ms),
            ("banded_ms", report.dtw.banded_ms),
            ("prefiltered_ms", report.dtw.prefiltered_ms),
        ] {
            let baseline_ms = g
                .get(field)
                .and_then(serde_json::Value::as_f64)
                .ok_or_else(|| format!("baseline missing `dtw.{field}`"))?;
            check_raw(&format!("dtw.{field}"), current_ms, baseline_ms);
        }
    }
    if let Some(g) = obj.get("mckp").and_then(serde_json::Value::as_object) {
        for (field, current_ms) in [
            ("scratch_ms", report.mckp.scratch_ms),
            ("incremental_ms", report.mckp.incremental_ms),
        ] {
            let baseline_ms = g
                .get(field)
                .and_then(serde_json::Value::as_f64)
                .ok_or_else(|| format!("baseline missing `mckp.{field}`"))?;
            check_raw(&format!("mckp.{field}"), current_ms, baseline_ms);
        }
    }

    Ok(regressions)
}

/// One committed drift scenario, as read from `BENCH_SCENARIOS.json`.
struct ScenarioSpec {
    kind: ScenarioKind,
    seed: u64,
    days: usize,
    band_pp: f64,
    no_harm_pp: f64,
    nonadaptive_violates: bool,
    daily_growth: Option<f64>,
    max_factor: Option<f64>,
}

/// Measured outcome of one scenario's three runs.
struct ScenarioResult {
    name: &'static str,
    seed: u64,
    days: usize,
    baseline_reduction_pct: f64,
    adaptive_reduction_pct: f64,
    nonadaptive_reduction_pct: f64,
    drift_confirmed: usize,
    drift_cleared: usize,
    refits_used: usize,
}

/// Parses the committed scenario matrix (the same file
/// `tests/scenarios.rs` enforces).
fn parse_scenario_matrix(path: &str) -> Result<(usize, Vec<ScenarioSpec>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let v: serde_json::Value = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    if v.get("schema_version").and_then(serde_json::Value::as_u64) != Some(1) {
        return Err("unsupported scenario-matrix schema_version".into());
    }
    let onset = v
        .get("onset_window")
        .and_then(serde_json::Value::as_u64)
        .ok_or("missing `onset_window`")? as usize;
    let scenarios = v
        .get("scenarios")
        .and_then(serde_json::Value::as_array)
        .ok_or("missing array `scenarios`")?;
    let mut specs = Vec::new();
    for s in scenarios {
        let name = s
            .get("name")
            .and_then(serde_json::Value::as_str)
            .ok_or("scenario missing `name`")?;
        let kind = ScenarioKind::from_name(name)
            .ok_or_else(|| format!("unknown scenario name {name:?}"))?;
        specs.push(ScenarioSpec {
            kind,
            seed: s
                .get("seed")
                .and_then(serde_json::Value::as_u64)
                .ok_or_else(|| format!("{name}: missing `seed`"))?,
            days: s
                .get("days")
                .and_then(serde_json::Value::as_u64)
                .ok_or_else(|| format!("{name}: missing `days`"))? as usize,
            band_pp: s
                .get("band_pp")
                .and_then(serde_json::Value::as_f64)
                .ok_or_else(|| format!("{name}: missing `band_pp`"))?,
            no_harm_pp: s
                .get("no_harm_pp")
                .and_then(serde_json::Value::as_f64)
                .ok_or_else(|| format!("{name}: missing `no_harm_pp`"))?,
            nonadaptive_violates: s
                .get("nonadaptive_violates")
                .and_then(serde_json::Value::as_bool)
                .ok_or_else(|| format!("{name}: missing `nonadaptive_violates`"))?,
            daily_growth: s.get("daily_growth").and_then(serde_json::Value::as_f64),
            max_factor: s.get("max_factor").and_then(serde_json::Value::as_f64),
        });
    }
    Ok((onset, specs))
}

/// The trace recipe the committed bands were calibrated for — keep in
/// lockstep with `tests/scenarios.rs` (`fleet_config` there): smooth
/// 8-VM boxes, two hot CPU VMs capped just below the ticket threshold.
fn scenario_fleet(days: usize, seed: u64) -> FleetConfig {
    FleetConfig {
        days,
        seed,
        vm_count_range: (8, 8),
        hot_cpu_vm_probabilities: [0.0, 0.0, 1.0],
        hot_ram_probability: 0.0,
        hot_cpu_max_usage_pct: 55.0,
        ..FleetConfig::smooth(1)
    }
}

/// The committed evaluation config — keep in lockstep with
/// `tests/scenarios.rs` (`scenario_config` there).
fn scenario_atm_config(adaptive: bool) -> AtmConfig {
    let mut cfg = AtmConfig {
        temporal: TemporalModel::SeasonalNaive { period: 96 },
        train_windows: 2 * 96,
        horizon: 96,
        ..AtmConfig::fast_for_tests()
    }
    .with_cluster_method(ClusterMethod::cbc());
    cfg.compute = cfg.compute.with_env_threads();
    if adaptive {
        cfg.adaptation = AdaptationConfig::fast();
    }
    cfg
}

fn scenario_reduction_pct(report: &OnlineReport) -> f64 {
    report.overall_reduction_pct().unwrap_or(100.0)
}

/// Replays one committed scenario (clean baseline, adaptive,
/// non-adaptive) and returns the measured outcome.
fn run_one_scenario(spec: &ScenarioSpec, onset: usize, seed: u64) -> ScenarioResult {
    let clean = generate_box(&scenario_fleet(spec.days, seed), 0);
    let mut drifted = clean.clone();
    let mut plan = ScenarioPlan::new(spec.kind, seed, onset);
    if let Some(g) = spec.daily_growth {
        plan.daily_growth = g;
    }
    if let Some(m) = spec.max_factor {
        plan.max_factor = m;
    }
    plan.apply_box(&mut drifted, 0).unwrap_or_else(|e| {
        eprintln!("{}: invalid committed plan: {e}", spec.kind.name());
        std::process::exit(1);
    });

    let run = |trace, adaptive| {
        run_online(trace, &scenario_atm_config(adaptive)).unwrap_or_else(|e| {
            eprintln!("{}: online run failed: {e}", spec.kind.name());
            std::process::exit(1);
        })
    };
    let baseline = run(&clean, true);
    let adaptive = run(&drifted, true);
    let nonadaptive = run(&drifted, false);
    ScenarioResult {
        name: spec.kind.name(),
        seed,
        days: spec.days,
        baseline_reduction_pct: scenario_reduction_pct(&baseline),
        adaptive_reduction_pct: scenario_reduction_pct(&adaptive),
        nonadaptive_reduction_pct: scenario_reduction_pct(&nonadaptive),
        drift_confirmed: adaptive
            .adaptation
            .events_of(DriftEventKind::Confirmed)
            .len(),
        drift_cleared: adaptive.adaptation.events_of(DriftEventKind::Cleared).len(),
        refits_used: adaptive.adaptation.refits_used,
    }
}

/// Renders the scenario-leg report (hand-rolled like [`render_json`]).
fn render_scenario_json(results: &[ScenarioResult]) -> String {
    let mut rows = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"name\": \"{}\", \"seed\": {}, \"days\": {}, \
             \"baseline_reduction_pct\": {}, \"adaptive_reduction_pct\": {}, \
             \"nonadaptive_reduction_pct\": {}, \"drift_confirmed\": {}, \
             \"drift_cleared\": {}, \"refits_used\": {}}}",
            r.name,
            r.seed,
            r.days,
            r.baseline_reduction_pct,
            r.adaptive_reduction_pct,
            r.nonadaptive_reduction_pct,
            r.drift_confirmed,
            r.drift_cleared,
            r.refits_used,
        ));
    }
    format!(
        "{{\n  \"schema_version\": 1,\n  \"mode\": \"scenario\",\n  \"scenarios\": [\n{rows}\n  ]\n}}\n"
    )
}

/// The `--scenario` entry point: replays the selected committed
/// scenarios, prints (or `--out`-writes) the measured JSON, and — when
/// `compare` names the committed matrix — gates the measurements against
/// its bands, exiting non-zero on any violation.
fn run_scenario_mode(
    selector: &str,
    seed_override: Option<u64>,
    out: Option<&str>,
    compare: Option<&str>,
) {
    let matrix_path = compare.unwrap_or("BENCH_SCENARIOS.json");
    let (onset, specs) = parse_scenario_matrix(matrix_path).unwrap_or_else(|e| {
        eprintln!("cannot read scenario matrix {matrix_path}: {e}");
        std::process::exit(1);
    });
    let selected: Vec<&ScenarioSpec> = if selector == "all" {
        specs.iter().collect()
    } else {
        match specs.iter().find(|s| s.kind.name() == selector) {
            Some(s) => vec![s],
            None => {
                let known: Vec<&str> = ScenarioKind::ALL.iter().map(|k| k.name()).collect();
                eprintln!(
                    "unknown scenario {selector:?}; known: {} or all",
                    known.join(", ")
                );
                std::process::exit(2);
            }
        }
    };

    let results: Vec<ScenarioResult> = selected
        .iter()
        .map(|spec| run_one_scenario(spec, onset, seed_override.unwrap_or(spec.seed)))
        .collect();

    let json = render_scenario_json(&results);
    match out {
        Some(path) => {
            atm_core::fsio::write_atomic(std::path::Path::new(path), json.as_bytes())
                .unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                });
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }

    // Gate against the committed bands only when comparing the committed
    // seeds (a --seed override changes the trace, not the contract).
    if compare.is_some() && seed_override.is_none() {
        let mut violations = Vec::new();
        for (spec, r) in selected.iter().zip(&results) {
            let floor = r.baseline_reduction_pct - spec.band_pp;
            eprintln!(
                "{}: baseline {:.1}% adaptive {:.1}% non-adaptive {:.1}% (band floor {:.1}%)",
                r.name,
                r.baseline_reduction_pct,
                r.adaptive_reduction_pct,
                r.nonadaptive_reduction_pct,
                floor
            );
            if r.adaptive_reduction_pct < floor {
                violations.push(format!(
                    "{}: adaptive reduction {:.1}% below committed floor {:.1}%",
                    r.name, r.adaptive_reduction_pct, floor
                ));
            }
            if r.adaptive_reduction_pct < r.nonadaptive_reduction_pct - spec.no_harm_pp {
                violations.push(format!(
                    "{}: adaptation made things worse ({:.1}% vs {:.1}%)",
                    r.name, r.adaptive_reduction_pct, r.nonadaptive_reduction_pct
                ));
            }
            if spec.nonadaptive_violates && r.nonadaptive_reduction_pct >= floor {
                violations.push(format!(
                    "{}: non-adaptive loop no longer violates the band \
                     ({:.1}% >= {:.1}%) — the scenario stopped stressing anything",
                    r.name, r.nonadaptive_reduction_pct, floor
                ));
            }
        }
        if violations.is_empty() {
            eprintln!("all scenario bands hold vs {matrix_path}");
        } else {
            for v in &violations {
                eprintln!("BAND VIOLATION: {v}");
            }
            std::process::exit(1);
        }
    }
}

/// The committed ticket-intelligence recipe, as read from
/// `BENCH_TICKETS.json`. Geometry (seed, fleet size, storm onset) comes
/// from the committed file so the leg and its gate can never drift
/// apart; the two floors are the relational contract.
struct TicketsSpec {
    seed: u64,
    boxes: usize,
    days: usize,
    onset: usize,
    /// The storm fleet must produce at least this many raw tickets —
    /// below it, the leg stopped stressing anything.
    min_raw_tickets: usize,
    /// Chronic feedback may lose at most this many percentage points of
    /// ticket reduction vs the no-feedback run (the no-harm band).
    harm_band_pp: f64,
}

/// Parses the committed ticket-intelligence baseline.
fn parse_tickets_baseline(path: &str) -> Result<TicketsSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let v: serde_json::Value = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    if v.get("schema_version").and_then(serde_json::Value::as_u64) != Some(1) {
        return Err("unsupported tickets-baseline schema_version".into());
    }
    let leg = v.get("leg").ok_or("missing object `leg`")?;
    let u = |field: &str| -> Result<u64, String> {
        leg.get(field)
            .and_then(serde_json::Value::as_u64)
            .ok_or_else(|| format!("leg missing `{field}`"))
    };
    Ok(TicketsSpec {
        seed: u("seed")?,
        boxes: u("boxes")? as usize,
        days: u("days")? as usize,
        onset: u("onset_window")? as usize,
        min_raw_tickets: u("min_raw_tickets")? as usize,
        harm_band_pp: leg
            .get("harm_band_pp")
            .and_then(serde_json::Value::as_f64)
            .ok_or("leg missing `harm_band_pp`")?,
    })
}

/// Measured outcome of the ticket-intelligence leg.
struct TicketsResult {
    seed: u64,
    boxes: usize,
    days: usize,
    onset: usize,
    raw_tickets: usize,
    incidents: usize,
    multi_vm_storms: usize,
    anomaly_score: Option<f64>,
    total_before: usize,
    no_feedback_total_after: usize,
    feedback_total_after: usize,
    no_feedback_reduction_pct: f64,
    feedback_reduction_pct: f64,
    chronic_declared: usize,
    chronic_cleared: usize,
    chronic_boxes: usize,
    threads_identical: bool,
    backend_identical: bool,
}

/// The committed evaluation config for the tickets leg: the scenario
/// config (non-adaptive, so chronic feedback is the only intervention)
/// with ticket intelligence switched on for the feedback runs.
fn tickets_atm_config(enabled: bool) -> AtmConfig {
    let mut cfg = scenario_atm_config(false);
    if enabled {
        cfg.tickets = TicketsConfig::fast();
    }
    cfg
}

/// Replays the committed churn-storm fleet: per-box pipeline runs for
/// the storm digest, supervised fleet runs with feedback off and on, and
/// the byte-identity matrix (threads 1 vs 8, in-memory vs chunk store).
fn run_tickets_leg(spec: &TicketsSpec, seed: u64) -> TicketsResult {
    use atm_core::actuate::{CapacityActuator, NoopActuator};
    use atm_core::fleet::StreamConfig;
    use atm_core::storage::{ChunkStore, InMemoryStore};
    use atm_core::supervisor::{run_fleet_online_observed, run_fleet_online_streamed, FleetReport};
    use atm_core::tickets::TicketEventKind;
    use atm_tracegen::chunk::ChunkWriter;
    use atm_tracegen::BoxTrace;

    let die = |stage: &str, e: &dyn std::fmt::Display| -> ! {
        eprintln!("tickets leg: {stage}: {e}");
        std::process::exit(1);
    };

    // The storm fleet: the committed scenario recipe (smooth 8-VM boxes,
    // two hot CPU VMs near the threshold) with a VM churn storm applied
    // to every box, each box on its own derived seed.
    let mut boxes: Vec<BoxTrace> = Vec::with_capacity(spec.boxes);
    for i in 0..spec.boxes {
        let box_seed = seed.wrapping_add(i as u64);
        let mut b = generate_box(&scenario_fleet(spec.days, box_seed), 0);
        b.name = format!("storm-{i:04}");
        ScenarioPlan::new(ScenarioKind::ChurnStorm, box_seed, spec.onset)
            .apply_box(&mut b, 0)
            .unwrap_or_else(|e| die("apply churn storm", &e));
        boxes.push(b);
    }

    let enabled_cfg = tickets_atm_config(true);
    let disabled_cfg = tickets_atm_config(false);

    // Storm digest: the pipeline's per-box ticket sections, aggregated
    // over the whole fleet — which boxes the churn storm actually
    // tickets varies with the derived seed, so a single box would gate
    // the committed raw-ticket floor on noise.
    let mut raw_tickets = 0usize;
    let mut incidents = 0usize;
    let mut multi_vm_storms = 0usize;
    let mut anomaly_score: Option<f64> = None;
    for b in &boxes {
        let digest = atm_core::pipeline::run_box(b, &enabled_cfg)
            .unwrap_or_else(|e| die("digest pipeline run", &e))
            .tickets
            .unwrap_or_else(|| die("digest pipeline run", &"missing tickets section"));
        let summary = digest.storm_summary();
        raw_tickets += digest.raw_tickets();
        incidents += digest.incidents();
        multi_vm_storms += summary.multi_vm_storms;
        // Keep the worst (largest) score across the fleet.
        anomaly_score = match (anomaly_score, digest.anomaly_score) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    let noop = |_: usize, _: &BoxTrace| -> Box<dyn CapacityActuator + Send> {
        Box::<NoopActuator>::default()
    };
    let bytes = |r: &FleetReport| -> String {
        serde_json::to_string(r).unwrap_or_else(|e| die("serialize fleet report", &e))
    };
    let totals = |r: &FleetReport| -> (usize, usize) {
        r.boxes
            .iter()
            .filter_map(|b| b.report.as_ref())
            .fold((0, 0), |(before, after), rep| {
                (before + rep.total_before(), after + rep.total_after())
            })
    };

    let disabled =
        run_fleet_online_observed(&boxes, &disabled_cfg, None, 1, noop, &Obs::disabled());
    let seq = run_fleet_online_observed(&boxes, &enabled_cfg, None, 1, noop, &Obs::disabled());
    let par = run_fleet_online_observed(&boxes, &enabled_cfg, None, 8, noop, &Obs::disabled());
    let threads_identical = bytes(&seq) == bytes(&par);

    // Backend identity on the streamed supervisor, like the fleet legs:
    // the same boxes through the in-memory store and the columnar chunk
    // store must reproduce each other byte-for-byte.
    let mut path = std::env::temp_dir();
    path.push(format!("atm-bench-tickets-{}.chunk", std::process::id()));
    let mut w = ChunkWriter::create(&path).unwrap_or_else(|e| die("chunk write", &e));
    for b in &boxes {
        w.append_box(b).unwrap_or_else(|e| die("chunk append", &e));
    }
    w.finish().unwrap_or_else(|e| die("chunk finish", &e));
    let stream = StreamConfig {
        threads: 2,
        memory_budget_bytes: 0,
    };
    let mem = run_fleet_online_streamed(
        &InMemoryStore::new(&boxes),
        &enabled_cfg,
        None,
        &stream,
        noop,
        &Obs::disabled(),
    );
    let store = ChunkStore::open(&path).unwrap_or_else(|e| die("chunk open", &e));
    let chunk =
        run_fleet_online_streamed(&store, &enabled_cfg, None, &stream, noop, &Obs::disabled());
    drop(store);
    std::fs::remove_file(&path).ok();
    let backend_identical = bytes(&mem) == bytes(&chunk);

    let (total_before, no_feedback_total_after) = totals(&disabled);
    let (_, feedback_total_after) = totals(&seq);
    let reduction = |after: usize| -> f64 {
        if total_before == 0 {
            100.0
        } else {
            (total_before as f64 - after as f64) / total_before as f64 * 100.0
        }
    };
    let kind_count = |kind: TicketEventKind| -> usize {
        seq.ticket_events()
            .iter()
            .filter(|(_, e)| e.kind == kind)
            .count()
    };

    TicketsResult {
        seed,
        boxes: spec.boxes,
        days: spec.days,
        onset: spec.onset,
        raw_tickets,
        incidents,
        multi_vm_storms,
        anomaly_score,
        total_before,
        no_feedback_total_after,
        feedback_total_after,
        no_feedback_reduction_pct: reduction(no_feedback_total_after),
        feedback_reduction_pct: reduction(feedback_total_after),
        chronic_declared: kind_count(TicketEventKind::ChronicDeclared),
        chronic_cleared: kind_count(TicketEventKind::ChronicCleared),
        chronic_boxes: seq.chronic_boxes().len(),
        threads_identical,
        backend_identical,
    }
}

/// Renders the tickets-leg report (hand-rolled like [`render_json`]).
fn render_tickets_json(r: &TicketsResult) -> String {
    let score = match r.anomaly_score {
        Some(s) => format!("{s:.4}"),
        None => "null".to_string(),
    };
    format!(
        "{{\n  \"schema_version\": 1,\n  \"mode\": \"tickets\",\n  \"leg\": {{\n    \
         \"name\": \"churn_storm_feedback\", \"seed\": {}, \"boxes\": {}, \
         \"days\": {}, \"onset_window\": {},\n    \
         \"raw_tickets\": {}, \"incidents\": {}, \"multi_vm_storms\": {}, \
         \"anomaly_score\": {score},\n    \
         \"total_before\": {}, \"no_feedback_total_after\": {}, \
         \"feedback_total_after\": {},\n    \
         \"no_feedback_reduction_pct\": {:.2}, \"feedback_reduction_pct\": {:.2},\n    \
         \"chronic_declared\": {}, \"chronic_cleared\": {}, \"chronic_boxes\": {},\n    \
         \"threads_identical\": {}, \"backend_identical\": {}\n  }}\n}}\n",
        r.seed,
        r.boxes,
        r.days,
        r.onset,
        r.raw_tickets,
        r.incidents,
        r.multi_vm_storms,
        r.total_before,
        r.no_feedback_total_after,
        r.feedback_total_after,
        r.no_feedback_reduction_pct,
        r.feedback_reduction_pct,
        r.chronic_declared,
        r.chronic_cleared,
        r.chronic_boxes,
        r.threads_identical,
        r.backend_identical,
    )
}

/// The `--tickets` entry point. Byte-identity and the collapse
/// invariant (incidents never exceed raw tickets) are asserted
/// unconditionally; the relational contract (storm still tickets,
/// feedback within the no-harm band) is gated only when `--compare`
/// names the committed baseline and no `--seed` override is in force.
fn run_tickets_mode(seed_override: Option<u64>, out: Option<&str>, compare: Option<&str>) {
    let baseline_path = compare.unwrap_or("BENCH_TICKETS.json");
    let spec = parse_tickets_baseline(baseline_path).unwrap_or_else(|e| {
        eprintln!("cannot read tickets baseline {baseline_path}: {e}");
        std::process::exit(1);
    });
    let r = run_tickets_leg(&spec, seed_override.unwrap_or(spec.seed));

    eprintln!(
        "tickets: {} raw -> {} incidents ({} multi-VM storms); after-resize \
         tickets {} (no feedback) vs {} (feedback) of {} before; chronic \
         declared {} cleared {} on {} boxes; threads-identical {} \
         backend-identical {}",
        r.raw_tickets,
        r.incidents,
        r.multi_vm_storms,
        r.no_feedback_total_after,
        r.feedback_total_after,
        r.total_before,
        r.chronic_declared,
        r.chronic_cleared,
        r.chronic_boxes,
        r.threads_identical,
        r.backend_identical,
    );

    let json = render_tickets_json(&r);
    match out {
        Some(path) => {
            atm_core::fsio::write_atomic(std::path::Path::new(path), json.as_bytes())
                .unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                });
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }

    let mut broken = false;
    if !r.threads_identical || !r.backend_identical {
        eprintln!(
            "TICKETS VIOLATION: supervised reports are not byte-identical \
             across threads/backends"
        );
        broken = true;
    }
    if r.incidents > r.raw_tickets {
        eprintln!(
            "TICKETS VIOLATION: collapse produced more incidents ({}) than \
             raw tickets ({})",
            r.incidents, r.raw_tickets
        );
        broken = true;
    }
    if broken {
        std::process::exit(1);
    }

    // Gate the relational contract only when replaying the committed
    // seed: a --seed override changes the fleet, not the contract.
    if compare.is_some() && seed_override.is_none() {
        let mut violations = Vec::new();
        if r.raw_tickets < spec.min_raw_tickets {
            violations.push(format!(
                "raw tickets {} below committed floor {} — the storm stopped \
                 ticketing",
                r.raw_tickets, spec.min_raw_tickets
            ));
        }
        if r.feedback_reduction_pct < r.no_feedback_reduction_pct - spec.harm_band_pp {
            violations.push(format!(
                "chronic feedback made things worse ({:.1}% vs {:.1}%, \
                 no-harm band {:.1}pp)",
                r.feedback_reduction_pct, r.no_feedback_reduction_pct, spec.harm_band_pp
            ));
        }
        if violations.is_empty() {
            eprintln!("tickets contract holds vs {baseline_path}");
        } else {
            for v in &violations {
                eprintln!("TICKETS VIOLATION: {v}");
            }
            std::process::exit(1);
        }
    }
}

/// One committed serve leg: a fresh in-process daemon with a fixed
/// admission policy, hammered by the seeded virtual-time load generator.
struct ServeLegSpec {
    name: &'static str,
    /// Offered arrival rate, virtual requests per second.
    rate_per_sec: f64,
    requests: usize,
    admission_rate: f64,
    admission_burst: f64,
}

/// The committed serve matrix: one in-capacity leg and one 4× overload
/// leg (the acceptance scenario: offered rate four times the admission
/// rate). Each leg boots its own daemon so the token bucket and plan
/// cache start from the same state every run.
const SERVE_LEGS: &[ServeLegSpec] = &[
    ServeLegSpec {
        name: "nominal",
        rate_per_sec: 20.0,
        requests: 60,
        admission_rate: 50.0,
        admission_burst: 10.0,
    },
    ServeLegSpec {
        name: "overload_4x",
        rate_per_sec: 40.0,
        requests: 120,
        admission_rate: 10.0,
        admission_burst: 5.0,
    },
];

/// Committed master seed for the serve legs; `--seed` overrides it for
/// ad-hoc replay (which skips the gate, same as scenario mode).
const SERVE_SEED: u64 = 42;

struct ServeLegResult {
    name: &'static str,
    offered_rps: f64,
    report: atm_serve::loadgen::LoadReport,
    served_fresh: u64,
    served_cached: u64,
    served_safe_mode: u64,
}

/// Runs one serve leg end to end: boot daemon, register the committed
/// fleet over the wire like any client, play the seeded schedule,
/// collect both the client-side report and the daemon's own counters.
fn run_one_serve_leg(spec: &ServeLegSpec, seed: u64) -> ServeLegResult {
    use atm_serve::loadgen::{self, LoadConfig, Phase};
    use atm_serve::server::{self, ServerConfig};
    use atm_serve::AdmissionPolicy;

    let die = |stage: &str, e: &dyn std::fmt::Display| -> ! {
        eprintln!("serve leg {}: {stage}: {e}", spec.name);
        std::process::exit(1);
    };

    let handle = server::start(ServerConfig {
        admission: AdmissionPolicy::new(spec.admission_rate, spec.admission_burst),
        deterministic_time: true,
        per_conn_queue: 4096,
        ..ServerConfig::default()
    })
    .unwrap_or_else(|e| die("daemon failed to start", &e));
    let addr = handle.addr().to_string();

    let mut stream = loadgen::connect_with_backoff(
        &addr,
        atm_core::backoff::BackoffPolicy::new(10, 200),
        seed,
        10,
    )
    .unwrap_or_else(|e| die("connect", &e));
    loadgen::query(
        &mut stream,
        r#"{"op":"submit_fleet","id":"bench-fleet","gen":{"boxes":1,"days":3,"seed":7},"now_ms":0}"#,
        "bench-fleet",
    )
    .unwrap_or_else(|e| die("submit_fleet", &e));
    drop(stream);

    let report = loadgen::run(&LoadConfig {
        addr,
        seed,
        phases: vec![Phase {
            rate_per_sec: spec.rate_per_sec,
            requests: spec.requests,
        }],
        box_name: "box0".into(),
        ..LoadConfig::default()
    })
    .unwrap_or_else(|e| die("load run", &e));

    let stats: std::collections::BTreeMap<&str, u64> = handle.stats().into_iter().collect();
    let result = ServeLegResult {
        name: spec.name,
        offered_rps: spec.rate_per_sec,
        served_fresh: stats["served_fresh"],
        served_cached: stats["served_cached"],
        served_safe_mode: stats["served_safe_mode"],
        report,
    };
    handle.shutdown();
    result
}

/// Renders the serve-leg report (hand-rolled like [`render_json`]).
fn render_serve_json(results: &[ServeLegResult]) -> String {
    let mut rows = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        let shed = r.report.rejected_total();
        let shed_pct = if r.report.sent == 0 {
            0.0
        } else {
            shed as f64 / r.report.sent as f64 * 100.0
        };
        rows.push_str(&format!(
            "    {{\"name\": \"{}\", \"offered_rps\": {}, \"sent\": {}, \"ok\": {}, \
             \"shed\": {}, \"shed_pct\": {}, \"served_fresh\": {}, \"served_cached\": {}, \
             \"served_safe_mode\": {}, \"stalled\": {}, \"goodput_pct\": {}, \
             \"p50_ms\": {}, \"p99_ms\": {}}}",
            r.name,
            r.offered_rps,
            r.report.sent,
            r.report.ok,
            shed,
            shed_pct,
            r.served_fresh,
            r.served_cached,
            r.served_safe_mode,
            r.report.stalled,
            r.report.goodput_pct,
            r.report.p50_ms,
            r.report.p99_ms,
        ));
    }
    format!(
        "{{\n  \"schema_version\": 1,\n  \"mode\": \"serve\",\n  \"legs\": [\n{rows}\n  ]\n}}\n"
    )
}

/// The `--serve` entry point: runs the committed serve legs, prints (or
/// `--out`-writes) the measured JSON, and — when `--compare` names the
/// committed `BENCH_SERVE.json` — gates the deterministic counts exactly
/// and the latencies by `--tolerance`, exiting non-zero on any mismatch.
fn run_serve_mode(
    seed_override: Option<u64>,
    out: Option<&str>,
    compare: Option<&str>,
    tolerance_pct: f64,
) {
    let seed = seed_override.unwrap_or(SERVE_SEED);
    let results: Vec<ServeLegResult> = SERVE_LEGS
        .iter()
        .map(|spec| run_one_serve_leg(spec, seed))
        .collect();

    for r in &results {
        eprintln!(
            "{}: sent {} ok {} shed {} (fresh {} cached {} safe {}) stalled {} \
             p50 {:.2}ms p99 {:.2}ms goodput {:.1}%",
            r.name,
            r.report.sent,
            r.report.ok,
            r.report.rejected_total(),
            r.served_fresh,
            r.served_cached,
            r.served_safe_mode,
            r.report.stalled,
            r.report.p50_ms,
            r.report.p99_ms,
            r.report.goodput_pct,
        );
    }

    let json = render_serve_json(&results);
    match out {
        Some(path) => {
            atm_core::fsio::write_atomic(std::path::Path::new(path), json.as_bytes())
                .unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                });
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }

    // Gate only when replaying the committed seed: a --seed override
    // changes the schedule, not the contract.
    if let Some(path) = compare {
        if seed_override.is_some() {
            return;
        }
        match compare_serve(&results, path, tolerance_pct) {
            Ok(violations) if violations.is_empty() => {
                eprintln!("serve legs match {path}");
            }
            Ok(violations) => {
                for v in &violations {
                    eprintln!("SERVE VIOLATION: {v}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("cannot compare against {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Compares measured serve legs against the committed baseline: every
/// deterministic count must match exactly (virtual time makes the
/// accept/shed transcript a pure function of the seed); p50/p99 are wall
/// clock and gated by `tolerance_pct`, skipping sub-5ms baselines where
/// scheduler noise dwarfs the signal.
fn compare_serve(
    results: &[ServeLegResult],
    path: &str,
    tolerance_pct: f64,
) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let v: serde_json::Value = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    let legs = v
        .get("legs")
        .and_then(serde_json::Value::as_array)
        .ok_or("baseline missing array `legs`")?;

    let mut violations = Vec::new();
    for r in results {
        let Some(base) = legs
            .iter()
            .find(|l| l.get("name").and_then(serde_json::Value::as_str) == Some(r.name))
        else {
            violations.push(format!("leg {} missing from baseline", r.name));
            continue;
        };
        let want = |field: &str| -> Result<u64, String> {
            base.get(field)
                .and_then(serde_json::Value::as_u64)
                .ok_or_else(|| format!("baseline leg {} missing `{field}`", r.name))
        };
        for (field, got) in [
            ("sent", r.report.sent),
            ("ok", r.report.ok),
            ("shed", r.report.rejected_total()),
            ("served_fresh", r.served_fresh),
            ("served_cached", r.served_cached),
            ("served_safe_mode", r.served_safe_mode),
            ("stalled", r.report.stalled),
        ] {
            let expected = want(field)?;
            if got != expected {
                violations.push(format!(
                    "{}.{field}: measured {got}, committed {expected} (must match exactly)",
                    r.name
                ));
            }
        }
        for (field, got) in [("p50_ms", r.report.p50_ms), ("p99_ms", r.report.p99_ms)] {
            let baseline_ms = base
                .get(field)
                .and_then(serde_json::Value::as_f64)
                .ok_or_else(|| format!("baseline leg {} missing `{field}`", r.name))?;
            if baseline_ms < 5.0 {
                continue;
            }
            let delta_pct = (got - baseline_ms) / baseline_ms * 100.0;
            eprintln!(
                "{}.{field}: {got:.2} ms vs baseline {baseline_ms:.2} ms ({delta_pct:+.1}%)",
                r.name
            );
            if delta_pct > tolerance_pct {
                violations.push(format!(
                    "{}.{field} regressed {delta_pct:+.1}% (tolerance {tolerance_pct}%)",
                    r.name
                ));
            }
        }
    }
    Ok(violations)
}

// ---------------------------------------------------------------------------
// Fleet mode (`--fleet ci|full`): streamed chunk-store scale legs.
// ---------------------------------------------------------------------------

/// One fleet-scale leg: a seeded synthetic fleet streamed to a columnar
/// chunk file and processed box-by-box under a fixed memory budget.
struct FleetLegSpec {
    name: &'static str,
    boxes: usize,
    /// Trace length in days (96 windows/day at 15-minute sampling).
    days: usize,
    /// Committed peak-RSS ceiling for the streamed run, in MiB.
    budget_mb: usize,
}

/// The committed fleet matrix. Every leg pins `vm_count_range` to
/// exactly 13 VMs per box so the VM total is a pure function of the box
/// count (13 x 6200 = 80,600 — the paper's 6K-box / 80K-VM production
/// trace) and the chunk geometry is gateable byte-for-byte.
const FLEET_CI_LEG: FleetLegSpec = FleetLegSpec {
    name: "fleet_ci",
    boxes: 512,
    days: 3,
    budget_mb: 128,
};

const FLEET_FULL_LEG: FleetLegSpec = FleetLegSpec {
    name: "fleet_full",
    boxes: 6200,
    days: 7,
    budget_mb: 256,
};

/// Committed master seed for the fleet legs; `--seed` overrides it for
/// ad-hoc replay (which skips the gate, same as scenario and serve mode).
const FLEET_SEED: u64 = 0x6B0F_1EE7;

/// VMs per box in every fleet leg (fixed so totals are config-derived).
const FLEET_VMS_PER_BOX: usize = 13;

struct FleetLegResult {
    name: &'static str,
    stats: atm_tracegen::chunk::FleetStreamStats,
    threads: usize,
    budget_mb: usize,
    /// In-memory and chunk-store backends produced byte-identical
    /// reports on the preflight sub-fleet.
    backend_identical: bool,
    /// 1-thread and N-thread streamed runs produced byte-identical
    /// reports on the preflight sub-fleet.
    threads_identical: bool,
    reports: usize,
    failures: usize,
    gen_wall_ms: f64,
    stream_wall_ms: f64,
    /// Peak resident set of the streamed run (`VmHWM`), MiB; `None`
    /// off-Linux where `/proc` is unavailable.
    peak_rss_mb: Option<f64>,
}

fn fleet_config(spec: &FleetLegSpec, seed: u64, boxes: usize) -> atm_tracegen::FleetConfig {
    atm_tracegen::FleetConfig {
        num_boxes: boxes,
        days: spec.days,
        seed,
        vm_count_range: (FLEET_VMS_PER_BOX, FLEET_VMS_PER_BOX),
        ..atm_tracegen::FleetConfig::default()
    }
}

/// Pipeline configuration for fleet legs: the oracle temporal model
/// keeps the leg's cost in the data plane (storage, clustering, MCKP)
/// rather than in MLP training, whose scaling the temporal benches
/// already cover.
fn fleet_pipeline_config(budget_mb: usize) -> AtmConfig {
    let mut config = AtmConfig {
        temporal: TemporalModel::Oracle,
        ..AtmConfig::fast_for_tests()
    };
    config.compute = config.compute.with_env_threads();
    config.compute.memory_budget_mb = budget_mb;
    config
}

/// Peak resident set size (`VmHWM`) of this process in MiB.
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb / 1024.0)
}

/// Resets the kernel's peak-RSS water mark so the streamed run is
/// measured on its own, not inflated by the preflight equality pass.
/// Best-effort: ignored where `/proc/self/clear_refs` is unavailable.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", b"5");
}

fn run_one_fleet_leg(spec: &FleetLegSpec, seed: u64) -> FleetLegResult {
    use atm_core::fleet::{run_fleet_streamed, StreamConfig};
    use atm_core::storage::{ChunkStore, InMemoryStore};
    use atm_tracegen::chunk::{stream_fleet_to_chunks, ChunkWriter};

    let die = |stage: &str, e: &dyn std::fmt::Display| -> ! {
        eprintln!("fleet leg {}: {stage}: {e}", spec.name);
        std::process::exit(1);
    };

    let config = fleet_pipeline_config(spec.budget_mb);
    let threads = config.compute.effective_threads();
    let stream = StreamConfig::from_config(&config);
    let mut path = std::env::temp_dir();
    path.push(format!(
        "atm-bench-{}-{}.chunk",
        spec.name,
        std::process::id()
    ));

    // Preflight: on a small sub-fleet from the same generator family,
    // the chunk backend and the thread matrix must reproduce the
    // in-memory sequential reports byte-for-byte. This runs before the
    // timed leg and its watermark is reset away below.
    let pre = atm_tracegen::generate_fleet(&fleet_config(spec, seed ^ 1, 8)).boxes;
    let mut w = ChunkWriter::create(&path).unwrap_or_else(|e| die("preflight write", &e));
    for b in &pre {
        w.append_box(b)
            .unwrap_or_else(|e| die("preflight append", &e));
    }
    w.finish().unwrap_or_else(|e| die("preflight finish", &e));
    let sequential = StreamConfig {
        threads: 1,
        memory_budget_bytes: 0,
    };
    let mem = run_fleet_streamed(&InMemoryStore::new(&pre), &config, &sequential)
        .unwrap_or_else(|e| die("preflight in-memory run", &e));
    let store = ChunkStore::open(&path).unwrap_or_else(|e| die("preflight open", &e));
    let chunk1 = run_fleet_streamed(&store, &config, &sequential)
        .unwrap_or_else(|e| die("preflight chunk run", &e));
    let chunk_n = run_fleet_streamed(&store, &config, &stream)
        .unwrap_or_else(|e| die("preflight threaded run", &e));
    drop(store);
    let backend_identical = mem == chunk1
        && serde_json::to_string(&mem).unwrap() == serde_json::to_string(&chunk1).unwrap();
    let threads_identical = chunk1 == chunk_n
        && serde_json::to_string(&chunk1).unwrap() == serde_json::to_string(&chunk_n).unwrap();

    // The timed leg: stream-generate the fleet to disk, then process it
    // as a bounded stream, with the RSS watermark isolating this phase.
    reset_peak_rss();
    let t0 = std::time::Instant::now();
    let stats = stream_fleet_to_chunks(&fleet_config(spec, seed, spec.boxes), &path)
        .unwrap_or_else(|e| die("stream generation", &e));
    let gen_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let store = ChunkStore::open(&path).unwrap_or_else(|e| die("open", &e));
    let t1 = std::time::Instant::now();
    let report =
        run_fleet_streamed(&store, &config, &stream).unwrap_or_else(|e| die("streamed run", &e));
    let stream_wall_ms = t1.elapsed().as_secs_f64() * 1e3;
    let peak = peak_rss_mb();
    drop(store);
    std::fs::remove_file(&path).ok();

    FleetLegResult {
        name: spec.name,
        stats,
        threads,
        budget_mb: spec.budget_mb,
        backend_identical,
        threads_identical,
        reports: report.reports.len(),
        failures: report.failures.len(),
        gen_wall_ms,
        stream_wall_ms,
        peak_rss_mb: peak,
    }
}

/// Renders the fleet-leg report (hand-rolled like [`render_json`]).
fn render_fleet_json(results: &[FleetLegResult]) -> String {
    let mut rows = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        let rss = match r.peak_rss_mb {
            Some(mb) => format!("{mb:.1}"),
            None => "null".to_string(),
        };
        rows.push_str(&format!(
            "    {{\"name\": \"{}\", \"boxes\": {}, \"vms\": {}, \"windows\": {}, \
             \"chunk_bytes\": {}, \"threads\": {}, \"budget_mb\": {}, \
             \"backend_identical\": {}, \"threads_identical\": {}, \
             \"reports\": {}, \"failures\": {}, \
             \"gen_wall_ms\": {:.1}, \"stream_wall_ms\": {:.1}, \"peak_rss_mb\": {rss}}}",
            r.name,
            r.stats.boxes,
            r.stats.vms,
            r.stats.windows,
            r.stats.bytes,
            r.threads,
            r.budget_mb,
            r.backend_identical,
            r.threads_identical,
            r.reports,
            r.failures,
            r.gen_wall_ms,
            r.stream_wall_ms,
        ));
    }
    format!(
        "{{\n  \"schema_version\": 1,\n  \"mode\": \"fleet\",\n  \"legs\": [\n{rows}\n  ]\n}}\n"
    )
}

/// The `--fleet` entry point. `ci` runs the scaled-down leg sized for
/// per-PR gating; `full` runs the paper-scale 6200-box / 80,600-VM
/// soak. Equivalence (backend and thread-count byte-identity) is
/// asserted unconditionally; `--compare` against the committed
/// `BENCH_FLEET.json` additionally gates geometry exactly, wall times by
/// `--tolerance`, and peak RSS against the committed budget.
fn run_fleet_mode(
    profile: &str,
    seed_override: Option<u64>,
    out: Option<&str>,
    compare: Option<&str>,
    tolerance_pct: f64,
) {
    let legs: &[&FleetLegSpec] = match profile {
        "ci" => &[&FLEET_CI_LEG],
        "full" => &[&FLEET_CI_LEG, &FLEET_FULL_LEG],
        other => {
            eprintln!("unknown fleet profile `{other}` (expected `ci` or `full`)");
            std::process::exit(2);
        }
    };
    let seed = seed_override.unwrap_or(FLEET_SEED);
    let results: Vec<FleetLegResult> = legs.iter().map(|s| run_one_fleet_leg(s, seed)).collect();

    let mut broken = false;
    for r in &results {
        let rss = match r.peak_rss_mb {
            Some(mb) => format!("{mb:.1} MiB"),
            None => "n/a".to_string(),
        };
        eprintln!(
            "{}: {} boxes x {} VMs x {} windows ({} chunk bytes), {} threads, \
             gen {:.0} ms, stream {:.0} ms, peak RSS {rss} (budget {} MiB), \
             {} reports {} failures, backend-identical {} threads-identical {}",
            r.name,
            r.stats.boxes,
            r.stats.vms,
            r.stats.windows,
            r.stats.bytes,
            r.threads,
            r.gen_wall_ms,
            r.stream_wall_ms,
            r.budget_mb,
            r.reports,
            r.failures,
            r.backend_identical,
            r.threads_identical,
        );
        if !r.backend_identical || !r.threads_identical {
            eprintln!(
                "FLEET VIOLATION: {}: streamed reports are not byte-identical \
                 across backends/threads",
                r.name
            );
            broken = true;
        }
        if let Some(mb) = r.peak_rss_mb {
            if mb > r.budget_mb as f64 {
                eprintln!(
                    "FLEET VIOLATION: {}: peak RSS {mb:.1} MiB exceeds the {} MiB budget",
                    r.name, r.budget_mb
                );
                broken = true;
            }
        }
    }

    let json = render_fleet_json(&results);
    match out {
        Some(path) => {
            atm_core::fsio::write_atomic(std::path::Path::new(path), json.as_bytes())
                .unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                });
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    if broken {
        std::process::exit(1);
    }

    // Gate only when replaying the committed seed: a --seed override
    // changes the fleet, not the contract.
    if let Some(path) = compare {
        if seed_override.is_some() {
            return;
        }
        match compare_fleet(&results, path, tolerance_pct) {
            Ok(violations) if violations.is_empty() => {
                eprintln!("fleet legs match {path}");
            }
            Ok(violations) => {
                for v in &violations {
                    eprintln!("FLEET VIOLATION: {v}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("cannot compare against {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Compares measured fleet legs against the committed baseline. Fleet
/// geometry (boxes, VMs, windows, chunk bytes, report/failure counts)
/// is a pure function of the committed seed and must match exactly, as
/// must the equivalence booleans and the budget itself. Wall times are
/// machine-dependent and gated by `tolerance_pct` — and only when the
/// measured thread count matches the baseline's, since the CI thread
/// matrix runs the same baseline at several `ATM_THREADS` values. Peak
/// RSS is gated against the committed budget, not the measured baseline:
/// the budget is the contract.
fn compare_fleet(
    results: &[FleetLegResult],
    path: &str,
    tolerance_pct: f64,
) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let v: serde_json::Value = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    let legs = v
        .get("legs")
        .and_then(serde_json::Value::as_array)
        .ok_or("baseline missing array `legs`")?;

    let mut violations = Vec::new();
    for r in results {
        let Some(base) = legs
            .iter()
            .find(|l| l.get("name").and_then(serde_json::Value::as_str) == Some(r.name))
        else {
            violations.push(format!("leg {} missing from baseline", r.name));
            continue;
        };
        let want = |field: &str| -> Result<u64, String> {
            base.get(field)
                .and_then(serde_json::Value::as_u64)
                .ok_or_else(|| format!("baseline leg {} missing `{field}`", r.name))
        };
        for (field, got) in [
            ("boxes", r.stats.boxes as u64),
            ("vms", r.stats.vms as u64),
            ("windows", r.stats.windows as u64),
            ("chunk_bytes", r.stats.bytes),
            ("budget_mb", r.budget_mb as u64),
            ("reports", r.reports as u64),
            ("failures", r.failures as u64),
        ] {
            let expected = want(field)?;
            if got != expected {
                violations.push(format!(
                    "{}.{field}: measured {got}, committed {expected} (must match exactly)",
                    r.name
                ));
            }
        }
        for (field, got) in [
            ("backend_identical", r.backend_identical),
            ("threads_identical", r.threads_identical),
        ] {
            let expected = base
                .get(field)
                .and_then(serde_json::Value::as_bool)
                .ok_or_else(|| format!("baseline leg {} missing `{field}`", r.name))?;
            if !(got && expected) {
                violations.push(format!(
                    "{}.{field}: measured {got}, committed {expected} (both must be true)",
                    r.name
                ));
            }
        }
        if let Some(mb) = r.peak_rss_mb {
            let budget = want("budget_mb")? as f64;
            eprintln!(
                "{}.peak_rss_mb: {mb:.1} MiB vs budget {budget:.0} MiB",
                r.name
            );
            if mb > budget {
                violations.push(format!(
                    "{}.peak_rss_mb: {mb:.1} MiB exceeds committed budget {budget:.0} MiB",
                    r.name
                ));
            }
        }
        let base_threads = want("threads")?;
        if base_threads != r.threads as u64 {
            eprintln!(
                "{}: wall-time gate skipped (measured at {} threads, baseline at {})",
                r.name, r.threads, base_threads
            );
            continue;
        }
        for (field, got) in [
            ("gen_wall_ms", r.gen_wall_ms),
            ("stream_wall_ms", r.stream_wall_ms),
        ] {
            let baseline_ms = base
                .get(field)
                .and_then(serde_json::Value::as_f64)
                .ok_or_else(|| format!("baseline leg {} missing `{field}`", r.name))?;
            if baseline_ms < 50.0 {
                continue;
            }
            let delta_pct = (got - baseline_ms) / baseline_ms * 100.0;
            eprintln!(
                "{}.{field}: {got:.0} ms vs baseline {baseline_ms:.0} ms ({delta_pct:+.1}%)",
                r.name
            );
            if delta_pct > tolerance_pct {
                violations.push(format!(
                    "{}.{field} regressed {delta_pct:+.1}% (tolerance {tolerance_pct}%)",
                    r.name
                ));
            }
        }
    }
    Ok(violations)
}
