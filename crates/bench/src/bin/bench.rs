//! DTW kernel and distance-matrix benchmark: times the naive DP against
//! the optimized [`DtwKernel`] and the sequential matrix build against
//! `build_parallel`, plus an observability-overhead leg (the same online
//! run with instrumentation off and on), then writes a machine-readable
//! report (the `BENCH_PIPELINE.json` at the repo root; schema in
//! `BENCHMARKS.md`).
//!
//! ```sh
//! cargo run --release -p atm-bench --bin bench -- --quick --out bench-quick.json
//! cargo run --release -p atm-bench --bin bench -- --full --out BENCH_PIPELINE.json
//! cargo run --release -p atm-bench --bin bench -- --check BENCH_PIPELINE.json
//! cargo run --release -p atm-bench --bin bench -- --quick --metrics \
//!     --compare BENCH_PIPELINE.json --tolerance 25
//! ```
//!
//! `--metrics` additionally writes `OBS_SNAPSHOT.json` (the full metrics
//! snapshot of the instrumented online leg, timings included) and
//! `OBS_EVENTS.jsonl` (its event log). `--compare BASELINE` re-runs the
//! bench and exits non-zero if any kernel or matrix timing regressed
//! beyond `--tolerance` percent after normalizing per DP cell, so a
//! `--quick` run can be gated against the committed `--full` baseline.
//!
//! Every timed leg recomputes the same distances; the binary asserts all
//! legs agree bit-for-bit before reporting, so a report is also a
//! determinism proof for the host it ran on.

use std::time::Instant;

use atm_clustering::dtw::dtw_distance;
use atm_clustering::kernel::DtwKernel;
use atm_clustering::DistanceMatrix;
use atm_core::config::TemporalModel;
use atm_core::online::{run_online, run_online_observed};
use atm_core::AtmConfig;
use atm_obs::Obs;
use atm_tracegen::{generate_box, FleetConfig};

/// Schema version written into the report; bump when fields change.
/// Version 2 added the `obs` overhead group; `--check` still accepts
/// version-1 reports so older committed baselines stay valid.
const SCHEMA_VERSION: u64 = 2;

/// Timed matrix-build leg.
struct MatrixLeg {
    threads: usize,
    kernel: &'static str,
    build_ms: f64,
    speedup_vs_sequential_naive: f64,
}

/// Full report, rendered by [`render_json`].
struct BenchReport {
    scale: &'static str,
    host_cpus: usize,
    series_count: usize,
    series_len: usize,
    reps: usize,
    kernel_naive_ms: f64,
    kernel_optimized_ms: f64,
    nn_naive_ms: f64,
    nn_bounded_ms: f64,
    nn_abandoned_pairs: usize,
    nn_total_pairs: usize,
    matrix: Vec<MatrixLeg>,
    online_disabled_ms: f64,
    online_enabled_ms: f64,
    distance_checksum: f64,
}

impl BenchReport {
    /// Observability overhead of the online leg, in percent (can be
    /// slightly negative from timer noise on a quiet host).
    fn obs_overhead_pct(&self) -> f64 {
        (self.online_enabled_ms - self.online_disabled_ms) / self.online_disabled_ms.max(1e-9)
            * 100.0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut metrics = false;
    let mut compare: Option<String> = None;
    let mut tolerance_pct = 25.0_f64;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--metrics" => metrics = true,
            "--out" => {
                i += 1;
                if i >= args.len() {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
                out = Some(args[i].clone());
            }
            "--check" => {
                i += 1;
                if i >= args.len() {
                    eprintln!("--check requires a path");
                    std::process::exit(2);
                }
                check = Some(args[i].clone());
            }
            "--compare" => {
                i += 1;
                if i >= args.len() {
                    eprintln!("--compare requires a baseline path");
                    std::process::exit(2);
                }
                compare = Some(args[i].clone());
            }
            "--tolerance" => {
                i += 1;
                tolerance_pct = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("--tolerance requires a non-negative percentage");
                        std::process::exit(2);
                    });
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench [--quick|--full] [--metrics] [--out PATH] [--check PATH] \
                     [--compare BASELINE [--tolerance PCT]]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(path) = check {
        match check_file(&path) {
            Ok(()) => {
                println!("{path}: valid bench report");
                return;
            }
            Err(e) => {
                eprintln!("{path}: invalid bench report: {e}");
                std::process::exit(1);
            }
        }
    }

    let (report, obs) = run(quick);
    let json = render_json(&report);
    match out {
        Some(path) => {
            // Atomic so a crash mid-write can't leave a torn report where
            // a previous good one lived.
            atm_core::fsio::write_atomic(std::path::Path::new(&path), json.as_bytes())
                .unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                });
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }

    if metrics {
        let snapshot = obs.metrics_snapshot().full_json();
        atm_core::fsio::write_atomic(
            std::path::Path::new("OBS_SNAPSHOT.json"),
            snapshot.as_bytes(),
        )
        .unwrap_or_else(|e| {
            eprintln!("cannot write OBS_SNAPSHOT.json: {e}");
            std::process::exit(1);
        });
        obs.write_events(std::path::Path::new("OBS_EVENTS.jsonl"))
            .unwrap_or_else(|e| {
                eprintln!("cannot write OBS_EVENTS.jsonl: {e}");
                std::process::exit(1);
            });
        eprintln!("wrote OBS_SNAPSHOT.json and OBS_EVENTS.jsonl");
    }

    if let Some(path) = compare {
        match compare_against(&report, &path, tolerance_pct) {
            Ok(regressions) if regressions.is_empty() => {
                eprintln!("no regressions vs {path} (tolerance {tolerance_pct}%)");
            }
            Ok(regressions) => {
                for r in &regressions {
                    eprintln!("REGRESSION: {r}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("cannot compare against {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Deterministic synthetic demand-like series (sinusoid + hash noise);
/// DTW cost depends only on lengths, so these time the kernels honestly.
fn series(len: usize, seed: u64) -> Vec<f64> {
    (0..len)
        .map(|t| {
            let mut z = (t as u64 + 1).wrapping_mul(seed.wrapping_add(0x9E3779B97F4A7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            let noise = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            50.0 + 20.0 * (t as f64 * 0.13 + seed as f64).sin() + 5.0 * noise
        })
        .collect()
}

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let value = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        last = Some(value);
    }
    (best, last.expect("reps >= 1"))
}

/// Runs every leg; also returns the [`Obs`] handle of the final
/// instrumented online rep so `--metrics` can dump its snapshot and
/// event log.
fn run(quick: bool) -> (BenchReport, Obs) {
    let (series_count, series_len, reps) = if quick { (16, 192, 3) } else { (64, 576, 3) };
    let set: Vec<Vec<f64>> = (0..series_count)
        .map(|i| series(series_len, i as u64 * 131 + 7))
        .collect();
    let n = set.len();

    // Kernel leg: all upper-triangle pairs, single thread.
    let (kernel_naive_ms, naive_matrix) = time_best(reps, || {
        DistanceMatrix::build(n, |i, j| dtw_distance(&set[i], &set[j])).expect("valid series")
    });
    let (kernel_optimized_ms, _) = time_best(reps, || {
        let mut kernel = DtwKernel::new();
        DistanceMatrix::build(n, |i, j| kernel.distance(&set[i], &set[j])).expect("valid series")
    });

    // Nearest-neighbour leg: early abandonment has a best-so-far to beat.
    let (nn_naive_ms, naive_nn) = time_best(reps, || {
        (0..n)
            .map(|i| {
                let mut best = f64::INFINITY;
                for j in 0..n {
                    if i != j {
                        best = best.min(dtw_distance(&set[i], &set[j]).expect("valid series"));
                    }
                }
                best
            })
            .collect::<Vec<f64>>()
    });
    let (nn_bounded_ms, (bounded_nn, nn_abandoned_pairs)) = time_best(reps, || {
        let mut kernel = DtwKernel::new();
        let mut abandoned = 0usize;
        let bests = (0..n)
            .map(|i| {
                let mut best = f64::INFINITY;
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    match kernel
                        .distance_bounded(&set[i], &set[j], best)
                        .expect("valid series")
                    {
                        Some(d) => best = best.min(d),
                        None => abandoned += 1,
                    }
                }
                best
            })
            .collect::<Vec<f64>>();
        (bests, abandoned)
    });
    assert_eq!(
        naive_nn.len(),
        bounded_nn.len(),
        "nearest-neighbour legs diverged"
    );
    for (a, b) in naive_nn.iter().zip(&bounded_nn) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "early abandonment changed a result"
        );
    }

    // Matrix legs: sequential baseline, then the parallel build across
    // thread counts with both kernels. All legs must agree bit-for-bit.
    let mut matrix = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        for kernel_name in ["naive", "optimized"] {
            let (build_ms, built) = if kernel_name == "naive" {
                time_best(reps, || {
                    DistanceMatrix::build_parallel(n, threads, |i, j| {
                        dtw_distance(&set[i], &set[j])
                    })
                    .expect("valid series")
                })
            } else {
                time_best(reps, || {
                    DistanceMatrix::build_parallel_with(n, threads, DtwKernel::new, |k, i, j| {
                        k.distance(&set[i], &set[j])
                    })
                    .expect("valid series")
                })
            };
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(
                        naive_matrix.get(i, j).to_bits(),
                        built.get(i, j).to_bits(),
                        "matrix leg threads={threads} kernel={kernel_name} diverged"
                    );
                }
            }
            matrix.push(MatrixLeg {
                threads,
                kernel: kernel_name,
                build_ms,
                speedup_vs_sequential_naive: kernel_naive_ms / build_ms.max(1e-9),
            });
        }
    }

    // Observability-overhead leg: the same seeded online run with
    // instrumentation off and on. The delta is the cost of the obs layer
    // (spans, counters, events) on a realistic workload; `BENCHMARKS.md`
    // budgets it at under 2%. A fresh `Obs` per rep keeps the snapshot a
    // single-run record.
    let trace = generate_box(
        &FleetConfig {
            num_boxes: 1,
            days: if quick { 3 } else { 6 },
            seed: 42,
            gap_probability: 0.0,
            ..FleetConfig::default()
        },
        0,
    );
    let online_config = AtmConfig {
        temporal: TemporalModel::Oracle,
        train_windows: 96,
        horizon: 96,
        ..AtmConfig::fast_for_tests()
    };
    let (online_disabled_ms, disabled_report) = time_best(reps, || {
        run_online(&trace, &online_config).expect("online leg")
    });
    let (online_enabled_ms, (enabled_report, obs)) = time_best(reps, || {
        let obs = Obs::enabled(true);
        let report = run_online_observed(&trace, &online_config, &obs).expect("online leg");
        (report, obs)
    });
    assert_eq!(
        disabled_report.windows.len(),
        enabled_report.windows.len(),
        "observability changed the online run"
    );

    let mut distance_checksum = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            distance_checksum += naive_matrix.get(i, j);
        }
    }

    let report = BenchReport {
        scale: if quick { "quick" } else { "full" },
        host_cpus: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        series_count,
        series_len,
        reps,
        kernel_naive_ms,
        kernel_optimized_ms,
        nn_naive_ms,
        nn_bounded_ms,
        nn_abandoned_pairs,
        nn_total_pairs: n * (n - 1),
        matrix,
        online_disabled_ms,
        online_enabled_ms,
        distance_checksum,
    };
    (report, obs)
}

/// Renders the report as JSON. Hand-rolled (every value is a finite
/// number or a fixed string, so no escaping is needed); the schema is
/// documented in `BENCHMARKS.md` and validated by `--check`.
fn render_json(r: &BenchReport) -> String {
    let mut legs = String::new();
    for (i, leg) in r.matrix.iter().enumerate() {
        if i > 0 {
            legs.push_str(",\n");
        }
        legs.push_str(&format!(
            "    {{\"threads\": {}, \"kernel\": \"{}\", \"build_ms\": {}, \
             \"speedup_vs_sequential_naive\": {}}}",
            leg.threads, leg.kernel, leg.build_ms, leg.speedup_vs_sequential_naive
        ));
    }
    format!(
        "{{\n\
         \x20 \"schema_version\": {},\n\
         \x20 \"scale\": \"{}\",\n\
         \x20 \"host_cpus\": {},\n\
         \x20 \"series_count\": {},\n\
         \x20 \"series_len\": {},\n\
         \x20 \"reps\": {},\n\
         \x20 \"kernel\": {{\"naive_ms\": {}, \"optimized_ms\": {}, \"speedup\": {}}},\n\
         \x20 \"nn_early_abandon\": {{\"naive_ms\": {}, \"bounded_ms\": {}, \"speedup\": {}, \
         \"abandoned_pairs\": {}, \"total_pairs\": {}}},\n\
         \x20 \"matrix\": [\n{}\n  ],\n\
         \x20 \"obs\": {{\"online_disabled_ms\": {}, \"online_enabled_ms\": {}, \
         \"overhead_pct\": {}}},\n\
         \x20 \"distance_checksum\": {}\n\
         }}\n",
        SCHEMA_VERSION,
        r.scale,
        r.host_cpus,
        r.series_count,
        r.series_len,
        r.reps,
        r.kernel_naive_ms,
        r.kernel_optimized_ms,
        r.kernel_naive_ms / r.kernel_optimized_ms.max(1e-9),
        r.nn_naive_ms,
        r.nn_bounded_ms,
        r.nn_naive_ms / r.nn_bounded_ms.max(1e-9),
        r.nn_abandoned_pairs,
        r.nn_total_pairs,
        legs,
        r.online_disabled_ms,
        r.online_enabled_ms,
        r.obs_overhead_pct(),
        r.distance_checksum,
    )
}

/// Validates that `path` holds a parseable bench report with the
/// documented fields (used by CI after a `--quick` smoke run, and
/// against the committed `BENCH_PIPELINE.json`).
fn check_file(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let v: serde_json::Value = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    let obj = v.as_object().ok_or("top level is not an object")?;
    for key in [
        "schema_version",
        "host_cpus",
        "series_count",
        "series_len",
        "reps",
    ] {
        if !obj.get(key).is_some_and(serde_json::Value::is_u64) {
            return Err(format!("missing or non-integer field `{key}`"));
        }
    }
    let schema_version = obj
        .get("schema_version")
        .and_then(serde_json::Value::as_u64)
        .expect("checked above");
    if !(1..=SCHEMA_VERSION).contains(&schema_version) {
        return Err(format!(
            "unsupported schema_version {schema_version} (this binary reads 1..={SCHEMA_VERSION})"
        ));
    }
    if !obj.get("scale").is_some_and(serde_json::Value::is_string) {
        return Err("missing or non-string field `scale`".into());
    }
    for (group, fields) in [
        ("kernel", &["naive_ms", "optimized_ms", "speedup"][..]),
        (
            "nn_early_abandon",
            &[
                "naive_ms",
                "bounded_ms",
                "speedup",
                "abandoned_pairs",
                "total_pairs",
            ][..],
        ),
    ] {
        let g = obj
            .get(group)
            .and_then(serde_json::Value::as_object)
            .ok_or_else(|| format!("missing object `{group}`"))?;
        for f in fields {
            if !g.get(*f).is_some_and(serde_json::Value::is_number) {
                return Err(format!("missing or non-numeric field `{group}.{f}`"));
            }
        }
    }
    let legs = obj
        .get("matrix")
        .and_then(serde_json::Value::as_array)
        .ok_or("missing array `matrix`")?;
    if legs.is_empty() {
        return Err("`matrix` has no legs".into());
    }
    for (i, leg) in legs.iter().enumerate() {
        let leg = leg
            .as_object()
            .ok_or_else(|| format!("matrix[{i}] is not an object"))?;
        if !leg.get("threads").is_some_and(serde_json::Value::is_u64) {
            return Err(format!("matrix[{i}].threads missing or non-integer"));
        }
        if !leg.get("kernel").is_some_and(serde_json::Value::is_string) {
            return Err(format!("matrix[{i}].kernel missing or non-string"));
        }
        for f in ["build_ms", "speedup_vs_sequential_naive"] {
            if !leg.get(f).is_some_and(serde_json::Value::is_number) {
                return Err(format!("matrix[{i}].{f} missing or non-numeric"));
            }
        }
    }
    // The `obs` overhead group arrived with schema version 2; version-1
    // baselines (committed before the observability layer) stay valid.
    if schema_version >= 2 {
        let g = obj
            .get("obs")
            .and_then(serde_json::Value::as_object)
            .ok_or("missing object `obs`")?;
        for f in ["online_disabled_ms", "online_enabled_ms", "overhead_pct"] {
            if !g.get(f).is_some_and(serde_json::Value::is_number) {
                return Err(format!("missing or non-numeric field `obs.{f}`"));
            }
        }
    }
    if !obj
        .get("distance_checksum")
        .is_some_and(serde_json::Value::is_number)
    {
        return Err("missing or non-numeric field `distance_checksum`".into());
    }
    Ok(())
}

/// Compares the report just produced against the baseline at `path`,
/// normalizing every kernel/matrix wall time per DP cell
/// (`pairs * len^2`) so a `--quick` run is comparable with the committed
/// `--full` baseline. Returns the regressions beyond `tolerance_pct`
/// (empty = gate passes); every comparison is echoed to stderr either
/// way. Legs present in only one report are skipped, so the gate also
/// tolerates baselines from hosts with fewer matrix thread counts.
fn compare_against(
    report: &BenchReport,
    path: &str,
    tolerance_pct: f64,
) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let v: serde_json::Value = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    let obj = v.as_object().ok_or("baseline top level is not an object")?;

    let cells = |count: f64, len: f64| count * (count - 1.0) / 2.0 * len * len;
    let base_count = obj
        .get("series_count")
        .and_then(serde_json::Value::as_u64)
        .ok_or("baseline missing `series_count`")? as f64;
    let base_len = obj
        .get("series_len")
        .and_then(serde_json::Value::as_u64)
        .ok_or("baseline missing `series_len`")? as f64;
    let base_cells = cells(base_count, base_len);
    let cur_cells = cells(report.series_count as f64, report.series_len as f64);
    if base_cells <= 0.0 || cur_cells <= 0.0 {
        return Err("degenerate DP cell count".into());
    }

    let mut regressions = Vec::new();
    let mut check = |name: &str, current_ms: f64, baseline_ms: f64| {
        let cur = current_ms / cur_cells * 1e6; // ns per DP cell
        let base = baseline_ms / base_cells * 1e6;
        let delta_pct = (cur - base) / base.max(1e-12) * 100.0;
        eprintln!("{name}: {cur:.4} ns/cell vs baseline {base:.4} ns/cell ({delta_pct:+.1}%)");
        if delta_pct > tolerance_pct {
            regressions.push(format!(
                "{name} regressed {delta_pct:+.1}% per DP cell (tolerance {tolerance_pct}%)"
            ));
        }
    };

    let kernel = obj
        .get("kernel")
        .and_then(serde_json::Value::as_object)
        .ok_or("baseline missing object `kernel`")?;
    for (field, current_ms) in [
        ("naive_ms", report.kernel_naive_ms),
        ("optimized_ms", report.kernel_optimized_ms),
    ] {
        let baseline_ms = kernel
            .get(field)
            .and_then(serde_json::Value::as_f64)
            .ok_or_else(|| format!("baseline missing `kernel.{field}`"))?;
        check(&format!("kernel.{field}"), current_ms, baseline_ms);
    }

    let legs = obj
        .get("matrix")
        .and_then(serde_json::Value::as_array)
        .ok_or("baseline missing array `matrix`")?;
    for leg in legs {
        let threads = leg.get("threads").and_then(serde_json::Value::as_u64);
        let kernel_name = leg.get("kernel").and_then(serde_json::Value::as_str);
        let build_ms = leg.get("build_ms").and_then(serde_json::Value::as_f64);
        let (Some(threads), Some(kernel_name), Some(build_ms)) = (threads, kernel_name, build_ms)
        else {
            return Err("malformed baseline matrix leg".into());
        };
        if let Some(current) = report
            .matrix
            .iter()
            .find(|l| l.threads as u64 == threads && l.kernel == kernel_name)
        {
            check(
                &format!("matrix[threads={threads},kernel={kernel_name}]"),
                current.build_ms,
                build_ms,
            );
        }
    }

    Ok(regressions)
}
