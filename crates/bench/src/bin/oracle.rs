//! Command-line front end for the differential oracle (DESIGN.md §12).
//!
//! ```sh
//! cargo run --release -p atm-bench --bin oracle                       # 500 cases, default seed
//! cargo run --release -p atm-bench --bin oracle -- --cases 5000 --seed 42
//! cargo run --release -p atm-bench --bin oracle -- --replay tests/oracle_replays/tied_mtrv_determinism.json
//! ```
//!
//! Exits non-zero on any contract violation. On failure, every violating
//! case is also printed as a ready-to-commit replay JSON so it can be
//! dropped into `tests/oracle_replays/` once the bug is fixed.
//! `ATM_ORACLE_CASES` / `ATM_PROPTEST_CASES` rescale the default case
//! count exactly as in the test suite.

use atm_oracle::{check_instance, generate, ReplayCase};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cases: Option<u64> = None;
    let mut seed = atm_oracle::DEFAULT_SEED;
    let mut replay: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--cases" => {
                i += 1;
                cases = args.get(i).and_then(|v| v.parse().ok());
                if cases.is_none() {
                    eprintln!("--cases requires a number");
                    std::process::exit(2);
                }
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(s) => seed = s,
                    None => {
                        eprintln!("--seed requires a number");
                        std::process::exit(2);
                    }
                }
            }
            "--replay" => {
                i += 1;
                replay = args.get(i).cloned();
                if replay.is_none() {
                    eprintln!("--replay requires a file path");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                println!("usage: oracle [--cases N] [--seed S] [--replay FILE]");
                println!("  --cases N     seeded differential cases to run (default 500,");
                println!("                overridable via ATM_ORACLE_CASES / ATM_PROPTEST_CASES)");
                println!("  --seed S      run seed (default {:#x})", seed);
                println!("  --replay FILE re-check one committed replay JSON instead of sweeping");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(path) = replay {
        run_replay(&path);
        return;
    }

    let cases = cases.unwrap_or_else(|| atm_oracle::configured_cases(atm_oracle::DEFAULT_CASES));
    let report = atm_oracle::run(cases, seed);
    println!("{}", report.summary());
    println!("per family:");
    for (family, count) in &report.per_family {
        println!("  {family:<20} {count}");
    }
    if !report.violations.is_empty() {
        for v in &report.violations {
            eprintln!(
                "VIOLATION case {} (family {}, seed {:#x}): {}",
                v.case,
                v.family.name(),
                v.seed,
                v.detail
            );
            let replay = ReplayCase::from_instance(&generate(v.case, v.seed), &v.detail);
            match replay.to_json() {
                Ok(json) => eprintln!("replay JSON:\n{json}"),
                Err(e) => eprintln!("(could not serialize replay: {e})"),
            }
        }
        std::process::exit(1);
    }
}

fn run_replay(path: &str) {
    let json = match std::fs::read_to_string(path) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let case = ReplayCase::from_json(&json).unwrap_or_else(|e| {
        eprintln!("{path}: malformed replay: {e}");
        std::process::exit(2);
    });
    println!("replaying {path}");
    println!("  note: {}", case.note);
    let inst = case.to_instance().unwrap_or_else(|e| {
        eprintln!("{path}: cannot rebuild instance: {e}");
        std::process::exit(2);
    });
    match check_instance(&inst) {
        Ok(outcome) => println!("  PASS: {:?}", outcome.result),
        Err(v) => {
            eprintln!("  FAIL: {}", v.detail);
            std::process::exit(1);
        }
    }
    // Sliding cases additionally replay the window stream through the
    // incremental MCKP differential (bit-identity against from-scratch
    // solves on every window).
    if case.sliding.is_some() {
        match case.check_sliding() {
            Ok(outcome) => println!(
                "  PASS: {} windows incremental==scratch ({} slid, {} rebuilt, {} reused, {} memoized)",
                outcome.windows,
                outcome.stats.vms_slid,
                outcome.stats.vms_rebuilt,
                outcome.stats.vms_reused,
                outcome.stats.memoized
            ),
            Err(e) => {
                eprintln!("  FAIL (sliding): {e}");
                std::process::exit(1);
            }
        }
    }
}
