//! Regenerates the paper's evaluation figures from the synthetic fleet
//! and the simulated MediaWiki testbed.
//!
//! ```sh
//! cargo run --release -p atm-bench --bin figures              # everything
//! cargo run --release -p atm-bench --bin figures -- --fig 8   # one figure
//! cargo run --release -p atm-bench --bin figures -- --quick   # small fleets
//! ```

use atm_bench::{figures, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut fig: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--fig" => {
                i += 1;
                if i >= args.len() {
                    eprintln!("--fig requires an argument (e.g. --fig 8)");
                    std::process::exit(2);
                }
                fig = Some(args[i].clone());
            }
            "--help" | "-h" => {
                println!("usage: figures [--quick|--full] [--fig N]");
                println!("figures: 1 2 3 5 6 7 8 9 10 12 13");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    match fig {
        Some(f) => {
            if !figures::run_one(&f, scale) {
                eprintln!("unknown figure `{f}` (paper has figures 1-3, 5-10, 12-13)");
                std::process::exit(2);
            }
        }
        None => figures::run_all(scale),
    }
}
