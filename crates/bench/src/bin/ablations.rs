//! Runs the ablation sweeps (DESIGN.md §7).
//!
//! ```sh
//! cargo run --release -p atm-bench --bin ablations              # everything
//! cargo run --release -p atm-bench --bin ablations -- --quick
//! cargo run --release -p atm-bench --bin ablations -- --only epsilon
//! ```

use atm_bench::{ablations, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut only: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--only" => {
                i += 1;
                only = args.get(i).cloned();
                if only.is_none() {
                    eprintln!("--only requires a name");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                println!("usage: ablations [--quick|--full] [--only NAME]");
                println!("names: epsilon rho-threshold dtw-band horizon temporal-model");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    match only {
        Some(name) => {
            if !ablations::run_one(&name, scale) {
                eprintln!("unknown ablation `{name}`");
                std::process::exit(2);
            }
        }
        None => ablations::run_all(scale),
    }
}
