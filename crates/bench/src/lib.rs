//! # atm-bench
//!
//! The benchmark and figure-regeneration harness for the ATM (DSN 2016)
//! reproduction.
//!
//! - The [`figures`] module regenerates **every figure of the paper's
//!   evaluation** (Figs. 1–3, 5–10, 12–13) as printed tables/series from
//!   the synthetic fleet and the simulated MediaWiki testbed. Run them
//!   all via the `figures` binary:
//!
//!   ```sh
//!   cargo run --release -p atm-bench --bin figures            # all figures
//!   cargo run --release -p atm-bench --bin figures -- --fig 8 # one figure
//!   cargo run --release -p atm-bench --bin figures -- --quick # smaller fleets
//!   ```
//!
//! - The [`ablations`] module sweeps ATM's design knobs (ε, ρ_Th, DTW
//!   band width, horizon, temporal model) via the `ablations` binary:
//!
//!   ```sh
//!   cargo run --release -p atm-bench --bin ablations -- --quick
//!   ```
//!
//! - The `bench` binary times the optimized DTW kernel against the naive
//!   DP and the parallel distance-matrix build against the sequential
//!   one, writing the machine-readable report committed as
//!   `BENCH_PIPELINE.json` at the repo root (schema and measured numbers
//!   in `BENCHMARKS.md`):
//!
//!   ```sh
//!   cargo run --release -p atm-bench --bin bench -- --full --out BENCH_PIPELINE.json
//!   cargo run --release -p atm-bench --bin bench -- --check BENCH_PIPELINE.json
//!   ```
//!
//! - The Criterion benches (`cargo bench -p atm-bench`) quantify the
//!   paper's "low computational overhead" claims: DTW scaling, clustering
//!   cost per box, CBC vs DTW, greedy resize vs the exact MCKP oracle,
//!   MLP training vs spatial-model prediction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod figures;

use atm_tracegen::{generate_fleet, FleetConfig, FleetTrace};

/// Scale at which figure harnesses run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small fleets for smoke runs and CI (`--quick`).
    Quick,
    /// Paper-like sizes (hundreds of boxes).
    Full,
}

impl Scale {
    /// Number of boxes for fleet-wide characterization figures.
    pub fn characterization_boxes(self) -> usize {
        match self {
            Scale::Quick => 60,
            Scale::Full => 400,
        }
    }

    /// Number of boxes for pipeline (prediction + resizing) figures.
    pub fn pipeline_boxes(self) -> usize {
        match self {
            Scale::Quick => 24,
            Scale::Full => 120,
        }
    }

    /// Simulated MediaWiki duration in seconds.
    pub fn mediawiki_duration(self) -> f64 {
        match self {
            Scale::Quick => 3600.0,
            Scale::Full => 6.0 * 3600.0,
        }
    }
}

/// The standard synthetic fleet used by the characterization figures
/// (1-day traces, gaps enabled as in the production data).
pub fn characterization_fleet(scale: Scale) -> FleetTrace {
    generate_fleet(&FleetConfig {
        num_boxes: scale.characterization_boxes(),
        days: 1,
        ..FleetConfig::default()
    })
}

/// The gap-free multi-day fleet used by the pipeline figures (the paper's
/// "400 boxes which have no gaps", trained 5 days + evaluated 1 day; the
/// quick scale trims the training window).
pub fn pipeline_fleet(scale: Scale) -> FleetTrace {
    generate_fleet(&FleetConfig {
        num_boxes: scale.pipeline_boxes(),
        days: match scale {
            Scale::Quick => 3,
            Scale::Full => 7,
        },
        gap_probability: 0.0,
        ..FleetConfig::default()
    })
}

/// Renders a horizontal ASCII bar for quick visual comparison in figure
/// output.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || max.is_nan() || !value.is_finite() {
        return String::new();
    }
    let n = ((value / max).clamp(0.0, 1.0) * width as f64).round() as usize;
    "#".repeat(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales() {
        assert!(Scale::Full.characterization_boxes() > Scale::Quick.characterization_boxes());
        assert!(Scale::Full.pipeline_boxes() > Scale::Quick.pipeline_boxes());
        assert!(Scale::Full.mediawiki_duration() > Scale::Quick.mediawiki_duration());
    }

    #[test]
    fn fleets_have_expected_shape() {
        let fleet = characterization_fleet(Scale::Quick);
        assert_eq!(fleet.boxes.len(), 60);
        assert_eq!(fleet.boxes[0].window_count(), 96);
        let pf = pipeline_fleet(Scale::Quick);
        assert!(pf.boxes.iter().all(|b| !b.has_gaps()));
    }

    #[test]
    fn bar_rendering() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
        assert_eq!(bar(1.0, 0.0, 10), "");
        assert_eq!(bar(f64::NAN, 10.0, 10), "");
    }
}
