//! DTW distance cost: full dynamic program vs Sakoe–Chiba bands, over
//! series lengths covering the paper's windows (1 day = 96, 5 days = 480).

use atm_clustering::dtw::{dtw_distance, dtw_distance_banded};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn series(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|t| {
            let phase = t as f64 * 0.065 + seed as f64;
            50.0 + 25.0 * phase.sin() + ((t as u64 ^ seed).wrapping_mul(0x9E37) % 97) as f64 * 0.1
        })
        .collect()
}

fn bench_dtw(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtw_distance");
    for n in [96usize, 192, 480] {
        let a = series(n, 1);
        let b = series(n, 2);
        group.bench_with_input(BenchmarkId::new("full", n), &n, |bench, _| {
            bench.iter(|| dtw_distance(black_box(&a), black_box(&b)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("band16", n), &n, |bench, _| {
            bench.iter(|| dtw_distance_banded(black_box(&a), black_box(&b), 16).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("band4", n), &n, |bench, _| {
            bench.iter(|| dtw_distance_banded(black_box(&a), black_box(&b), 4).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dtw);
criterion_main!(benches);
