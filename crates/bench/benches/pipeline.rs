//! End-to-end per-box pipeline cost: the paper's "low computational
//! overhead" claim. Oracle temporal models isolate the ATM machinery
//! (clustering, regression, resizing) from MLP training, which is
//! benchmarked separately in `forecasting.rs`.

use atm_core::config::{AtmConfig, ClusterMethod, TemporalModel};
use atm_core::pipeline::run_box;
use atm_tracegen::{generate_box, FleetConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_run_box(c: &mut Criterion) {
    let mut group = c.benchmark_group("atm_run_box_oracle");
    group.sample_size(10);
    for vms in [6usize, 10, 16] {
        let trace_config = FleetConfig {
            num_boxes: 1,
            days: 3,
            vm_count_range: (vms, vms),
            gap_probability: 0.0,
            ..FleetConfig::default()
        };
        let box_trace = generate_box(&trace_config, 5);
        for method in [ClusterMethod::dtw(), ClusterMethod::cbc()] {
            let config = AtmConfig {
                cluster_method: method,
                temporal: TemporalModel::Oracle,
                train_windows: 2 * 96,
                horizon: 96,
                ..AtmConfig::default()
            };
            group.bench_with_input(BenchmarkId::new(method.name(), vms), &vms, |b, _| {
                b.iter(|| run_box(black_box(&box_trace), black_box(&config)).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_run_box);
criterion_main!(benches);
