//! Regenerates every paper figure at quick scale as part of
//! `cargo bench`, so a single command reproduces the full evaluation.
//! (Run the `figures` binary with `--full` for paper-scale fleets.)

fn main() {
    // Criterion-style benches receive `--bench`/filter arguments from
    // cargo; we accept and ignore them.
    println!("regenerating all paper figures at --quick scale...\n");
    atm_bench::figures::run_all(atm_bench::Scale::Quick);
}
