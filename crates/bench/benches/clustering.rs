//! Per-box signature-search cost: DTW + hierarchical + silhouette vs CBC.
//!
//! Quantifies the paper's claim that CBC yields more signatures (more
//! temporal models to train) while the clustering itself is cheap in both
//! flavours.

use atm_clustering::cbc::{cluster as cbc_cluster, CbcConfig};
use atm_clustering::dtw::dtw_distance;
use atm_clustering::hierarchical::{cluster_with_silhouette, paper_k_range, Linkage};
use atm_clustering::kmedoids::k_medoids_with_silhouette;
use atm_clustering::DistanceMatrix;
use atm_core::config::ClusterMethod;
use atm_core::signature::search;
use atm_stats::stepwise::StepwiseConfig;
use atm_tracegen::{generate_box, FleetConfig, SeriesKey};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn box_columns(vms: usize) -> (Vec<SeriesKey>, Vec<Vec<f64>>) {
    let config = FleetConfig {
        num_boxes: 1,
        days: 1,
        vm_count_range: (vms, vms),
        gap_probability: 0.0,
        ..FleetConfig::default()
    };
    let b = generate_box(&config, 1);
    let keys = b.series_keys();
    let cols = keys.iter().map(|&k| b.demand(k)).collect();
    (keys, cols)
}

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering_per_box");
    group.sample_size(20);
    for vms in [5usize, 10, 16] {
        let (keys, cols) = box_columns(vms);

        group.bench_with_input(BenchmarkId::new("dtw_hierarchical", vms), &vms, |b, _| {
            b.iter(|| {
                let n = cols.len();
                let d = DistanceMatrix::build(n, |i, j| dtw_distance(&cols[i], &cols[j])).unwrap();
                let (k_min, k_max) = paper_k_range(n);
                cluster_with_silhouette(black_box(&d), Linkage::Average, k_min, k_max).unwrap()
            });
        });

        group.bench_with_input(BenchmarkId::new("cbc", vms), &vms, |b, _| {
            b.iter(|| cbc_cluster(black_box(&cols), &CbcConfig::default()).unwrap());
        });

        group.bench_with_input(BenchmarkId::new("kmedoids_dtw", vms), &vms, |b, _| {
            b.iter(|| {
                let n = cols.len();
                let d = DistanceMatrix::build(n, |i, j| dtw_distance(&cols[i], &cols[j])).unwrap();
                let (k_min, k_max) = paper_k_range(n);
                k_medoids_with_silhouette(black_box(&d), k_min, k_max, 50).unwrap()
            });
        });

        group.bench_with_input(BenchmarkId::new("full_search_dtw", vms), &vms, |b, _| {
            b.iter(|| {
                search(
                    black_box(&keys),
                    black_box(&cols),
                    &ClusterMethod::dtw(),
                    &StepwiseConfig::default(),
                    true,
                )
                .unwrap()
            });
        });

        group.bench_with_input(BenchmarkId::new("full_search_cbc", vms), &vms, |b, _| {
            b.iter(|| {
                search(
                    black_box(&keys),
                    black_box(&cols),
                    &ClusterMethod::cbc(),
                    &StepwiseConfig::default(),
                    true,
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
