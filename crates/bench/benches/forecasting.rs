//! Temporal-model training cost vs spatial-model prediction cost —
//! the asymmetry motivating the whole signature-set design: neural
//! training is expensive, a linear combination is practically free.

use atm_core::spatial::SpatialModel;
use atm_forecast::ar::ArForecaster;
use atm_forecast::holt_winters::HoltWinters;
use atm_forecast::mlp::{MlpConfig, MlpForecaster};
use atm_forecast::naive::SeasonalNaive;
use atm_forecast::Forecaster;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn diurnal(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|t| {
            let phase = 2.0 * std::f64::consts::PI * (t % 96) as f64 / 96.0;
            50.0 + 25.0 * phase.sin() + ((t as u64).wrapping_mul(seed | 1) % 89) as f64 * 0.05
        })
        .collect()
}

fn bench_temporal_models(c: &mut Criterion) {
    let history = diurnal(480, 7); // 5 days of 15-minute windows
    let mut group = c.benchmark_group("temporal_fit_forecast_96");
    group.sample_size(10);

    group.bench_function("mlp", |b| {
        b.iter(|| {
            let mut m = MlpForecaster::new(MlpConfig {
                epochs: 100,
                ..MlpConfig::default()
            });
            m.fit(black_box(&history)).unwrap();
            m.forecast(96).unwrap()
        });
    });
    group.bench_function("ar8", |b| {
        b.iter(|| {
            let mut m = ArForecaster::new(8);
            m.fit(black_box(&history)).unwrap();
            m.forecast(96).unwrap()
        });
    });
    group.bench_function("holt_winters", |b| {
        b.iter(|| {
            let mut m = HoltWinters::with_period(96);
            m.fit(black_box(&history)).unwrap();
            m.forecast(96).unwrap()
        });
    });
    group.bench_function("seasonal_naive", |b| {
        b.iter(|| {
            let mut m = SeasonalNaive::new(96);
            m.fit(black_box(&history)).unwrap();
            m.forecast(96).unwrap()
        });
    });
    group.finish();
}

fn bench_spatial_prediction(c: &mut Criterion) {
    // 3 signatures, 17 dependents — a typical box after DTW reduction.
    let signatures: Vec<Vec<f64>> = (0..3).map(|s| diurnal(480, s as u64 + 1)).collect();
    let dependents: Vec<Vec<f64>> = (0..17)
        .map(|d| {
            (0..480)
                .map(|t| 5.0 + 0.5 * signatures[d % 3][t] + 0.2 * signatures[(d + 1) % 3][t])
                .collect()
        })
        .collect();
    let mut columns = signatures.clone();
    columns.extend(dependents);
    let sig_idx: Vec<usize> = vec![0, 1, 2];
    let dep_idx: Vec<usize> = (3..20).collect();
    let model = SpatialModel::fit(&columns, &sig_idx, &dep_idx).unwrap();
    let futures: Vec<Vec<f64>> = (0..3).map(|s| diurnal(96, s as u64 + 9)).collect();

    let mut group = c.benchmark_group("spatial_model");
    group.bench_function("fit_17_dependents", |b| {
        b.iter(|| SpatialModel::fit(black_box(&columns), &sig_idx, &dep_idx).unwrap());
    });
    group.bench_function("predict_17x96", |b| {
        b.iter(|| model.predict(black_box(&futures)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_temporal_models, bench_spatial_prediction);
criterion_main!(benches);
