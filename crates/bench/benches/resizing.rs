//! Resizing cost: MCKP candidate construction, the greedy MTRV walk, the
//! exact oracle on small instances, and the baselines.

use atm_resize::mckp::build_groups;
use atm_resize::{baselines, exact, greedy, ResizeProblem, VmDemand};
use atm_ticketing::ThresholdPolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn problem(vms: usize, windows: usize, tight: bool) -> ResizeProblem {
    let demands: Vec<VmDemand> = (0..vms)
        .map(|v| {
            let series: Vec<f64> = (0..windows)
                .map(|t| {
                    let x = ((t * 31 + v * 17) % 97) as f64 / 97.0;
                    1.0 + 5.0 * x
                })
                .collect();
            VmDemand::new(format!("vm{v}"), series, 0.0, 1e9)
        })
        .collect();
    let budget = if tight {
        vms as f64 * 4.0
    } else {
        vms as f64 * 12.0
    };
    ResizeProblem::new(demands, budget, ThresholdPolicy::new(60.0).unwrap())
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("resize_greedy");
    for vms in [5usize, 10, 20, 50] {
        let p = problem(vms, 96, true);
        group.bench_with_input(BenchmarkId::new("build_groups", vms), &vms, |b, _| {
            b.iter(|| build_groups(black_box(&p)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("solve", vms), &vms, |b, _| {
            b.iter(|| greedy::solve(black_box(&p)).unwrap());
        });
    }
    group.finish();
}

fn bench_exact_vs_greedy(c: &mut Criterion) {
    // Small instance where exhaustive search is tractable.
    let p = problem(4, 8, true);
    let mut group = c.benchmark_group("resize_exact_oracle");
    group.bench_function("greedy_4vm", |b| {
        b.iter(|| greedy::solve(black_box(&p)).unwrap());
    });
    group.bench_function("exact_4vm", |b| {
        b.iter(|| exact::solve(black_box(&p), exact::DEFAULT_COMBINATION_LIMIT).unwrap());
    });
    group.bench_function("dp_4vm_grid10k", |b| {
        b.iter(|| exact::solve_dp(black_box(&p), 10_000).unwrap());
    });
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let p = problem(10, 96, false);
    let mut group = c.benchmark_group("resize_baselines");
    group.bench_function("stingy", |b| {
        b.iter(|| baselines::stingy(black_box(&p)).unwrap());
    });
    group.bench_function("max_min_fairness", |b| {
        b.iter(|| baselines::max_min_fairness(black_box(&p)).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_greedy,
    bench_exact_vs_greedy,
    bench_baselines
);
criterion_main!(benches);
