//! Gap imputation — the pipeline front-end that turns gappy boxes into
//! manageable ones.
//!
//! The paper sidesteps trace gaps by evaluating only the 400 gap-free
//! boxes of its 6K-box fleet; roughly a third of the boxes are simply
//! dropped. A production ticket manager cannot drop a box because its
//! monitoring blinked, so [`run_box`](crate::pipeline::run_box()) imputes
//! gaps before training instead of rejecting the trace:
//!
//! - **short interior gaps** (at most [`ImputationConfig::max_linear_gap`]
//!   windows with finite values on both sides) are filled by linear
//!   interpolation between their neighbours;
//! - **long or edge gaps** are filled seasonal-naive: the value one (or
//!   more) seasonal periods away, the nearest finite neighbour when no
//!   seasonal donor exists;
//! - every fill is clamped to the physically plausible utilization range.
//!
//! Imputation is deterministic (no RNG) and a strict no-op on gap-free
//! series, so enabling it never perturbs the paper-faithful evaluation
//! path. Per-series statistics are recorded in the
//! [`BoxReport`](crate::pipeline::BoxReport) so degradation is measurable.

use atm_tracegen::{BoxTrace, SeriesKey};
use serde::{Deserialize, Serialize};

/// Gap-imputation settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImputationConfig {
    /// Whether the pipeline imputes gaps at all. When `false`, gappy
    /// traces are rejected with
    /// [`AtmError::GappyTrace`](crate::AtmError::GappyTrace) — the
    /// paper's original drop-the-box behaviour.
    pub enabled: bool,
    /// Longest interior gap (in windows) filled by linear interpolation;
    /// longer gaps fall back to seasonal-naive donors.
    pub max_linear_gap: usize,
    /// Seasonal period in windows used for long-gap donors (one day at
    /// the paper's 15-minute sampling = 96).
    pub seasonal_period: usize,
}

impl Default for ImputationConfig {
    fn default() -> Self {
        ImputationConfig {
            enabled: true,
            max_linear_gap: 4,
            seasonal_period: 96,
        }
    }
}

impl ImputationConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::InvalidConfig`](crate::AtmError::InvalidConfig)
    /// on out-of-range values.
    pub fn validate(&self) -> crate::AtmResult<()> {
        if self.seasonal_period == 0 {
            return Err(crate::AtmError::InvalidConfig(
                "imputation seasonal period must be positive",
            ));
        }
        Ok(())
    }
}

/// How one series was imputed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesImputation {
    /// Which series.
    pub key: SeriesKey,
    /// Gap runs found.
    pub gap_runs: usize,
    /// Longest gap run, in windows.
    pub longest_gap: usize,
    /// Samples filled by linear interpolation.
    pub linear_samples: usize,
    /// Samples filled from a seasonal donor.
    pub seasonal_samples: usize,
    /// Samples filled from the nearest finite neighbour (edge gaps with
    /// no seasonal donor) or with zero (fully-gapped series).
    pub nearest_samples: usize,
}

impl SeriesImputation {
    /// Total samples imputed in this series.
    pub fn imputed_samples(&self) -> usize {
        self.linear_samples + self.seasonal_samples + self.nearest_samples
    }
}

/// Imputation statistics for a whole box; empty when the trace was
/// gap-free.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ImputationReport {
    /// Per-series statistics, only for series that actually had gaps.
    pub per_series: Vec<SeriesImputation>,
}

impl ImputationReport {
    /// Total samples imputed across all series.
    pub fn total_imputed(&self) -> usize {
        self.per_series
            .iter()
            .map(SeriesImputation::imputed_samples)
            .sum()
    }

    /// Whether any imputation happened.
    pub fn is_empty(&self) -> bool {
        self.per_series.is_empty()
    }

    /// The longest gap run seen in any series.
    pub fn longest_gap(&self) -> usize {
        self.per_series
            .iter()
            .map(|s| s.longest_gap)
            .max()
            .unwrap_or(0)
    }
}

/// Raw per-series fill counters (no key attached).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FillStats {
    /// Gap runs found.
    pub gap_runs: usize,
    /// Longest gap run.
    pub longest_gap: usize,
    /// Linear-interpolation fills.
    pub linear_samples: usize,
    /// Seasonal-donor fills.
    pub seasonal_samples: usize,
    /// Nearest-neighbour / constant fills.
    pub nearest_samples: usize,
}

impl FillStats {
    /// Total fills.
    pub fn total(&self) -> usize {
        self.linear_samples + self.seasonal_samples + self.nearest_samples
    }
}

/// Imputes every `NaN` run of `series` in place.
///
/// Interior runs no longer than `config.max_linear_gap` are linearly
/// interpolated; everything else looks for a seasonal donor at
/// `t ± k·period`, then the nearest finite neighbour. Fills read only the
/// *original* samples (never other fills) and are clamped to
/// `[0, max(100, observed max)]`, so imputed utilization stays within the
/// physically observed range. A series with no finite samples at all is
/// filled with zeros.
pub fn impute_series(series: &mut [f64], config: &ImputationConfig) -> FillStats {
    let mut stats = FillStats::default();
    let n = series.len();
    if n == 0 {
        return stats;
    }
    let original = series.to_vec();
    if original.iter().all(|v| v.is_nan()) {
        // An entirely unobserved series (e.g. a VM that never reported):
        // nothing to interpolate from; fill flat zero.
        series.fill(0.0);
        stats.gap_runs = 1;
        stats.longest_gap = n;
        stats.nearest_samples = n;
        return stats;
    }
    let clamp_hi = original
        .iter()
        .filter(|v| v.is_finite())
        .fold(100.0_f64, |a, &b| a.max(b));

    let mut t = 0;
    while t < n {
        if !original[t].is_nan() {
            t += 1;
            continue;
        }
        let start = t;
        while t < n && original[t].is_nan() {
            t += 1;
        }
        let end = t; // run is [start, end)
        let len = end - start;
        stats.gap_runs += 1;
        stats.longest_gap = stats.longest_gap.max(len);

        let interior = start > 0 && end < n;
        if interior && len <= config.max_linear_gap {
            let left = original[start - 1];
            let right = original[end];
            for (offset, slot) in series[start..end].iter_mut().enumerate() {
                let frac = (offset + 1) as f64 / (len + 1) as f64;
                *slot = (left + (right - left) * frac).clamp(0.0, clamp_hi);
                stats.linear_samples += 1;
            }
        } else {
            for idx in start..end {
                let fill = match seasonal_donor(&original, idx, config.seasonal_period) {
                    Some(v) => {
                        stats.seasonal_samples += 1;
                        v
                    }
                    None => {
                        stats.nearest_samples += 1;
                        nearest_finite(&original, idx)
                    }
                };
                series[idx] = fill.clamp(0.0, clamp_hi);
            }
        }
    }
    stats
}

/// The finite value one or more seasonal periods away from `idx`,
/// preferring the most recent past donor, then the nearest future one.
fn seasonal_donor(original: &[f64], idx: usize, period: usize) -> Option<f64> {
    let mut back = idx;
    while back >= period {
        back -= period;
        if original[back].is_finite() {
            return Some(original[back]);
        }
    }
    let mut fwd = idx;
    while fwd + period < original.len() {
        fwd += period;
        if original[fwd].is_finite() {
            return Some(original[fwd]);
        }
    }
    None
}

/// The closest finite value to `idx` (ties resolve to the past).
///
/// Callers guarantee at least one finite sample exists.
fn nearest_finite(original: &[f64], idx: usize) -> f64 {
    for d in 1..original.len() {
        if idx >= d && original[idx - d].is_finite() {
            return original[idx - d];
        }
        if idx + d < original.len() && original[idx + d].is_finite() {
            return original[idx + d];
        }
    }
    unreachable!("caller guarantees a finite sample exists")
}

/// Imputes every gapped series of a box, returning the filled copy and the
/// per-series report. Gap-free boxes are returned unchanged with an empty
/// report.
pub fn impute_box(box_trace: &BoxTrace, config: &ImputationConfig) -> (BoxTrace, ImputationReport) {
    let mut filled = box_trace.clone();
    let mut per_series = Vec::new();
    for key in box_trace.series_keys() {
        let vm = &mut filled.vms[key.vm];
        let series = match key.resource {
            atm_tracegen::Resource::Cpu => &mut vm.cpu_usage,
            atm_tracegen::Resource::Ram => &mut vm.ram_usage,
        };
        if !series.iter().any(|v| v.is_nan()) {
            continue;
        }
        let stats = impute_series(series, config);
        per_series.push(SeriesImputation {
            key,
            gap_runs: stats.gap_runs,
            longest_gap: stats.longest_gap,
            linear_samples: stats.linear_samples,
            seasonal_samples: stats.seasonal_samples,
            nearest_samples: stats.nearest_samples,
        });
    }
    (filled, ImputationReport { per_series })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_tracegen::{generate_box, inject::FaultPlan, FleetConfig};

    fn cfg() -> ImputationConfig {
        ImputationConfig {
            enabled: true,
            max_linear_gap: 3,
            seasonal_period: 8,
        }
    }

    #[test]
    fn short_interior_gap_is_linear() {
        let mut s = vec![10.0, f64::NAN, f64::NAN, 40.0];
        let stats = impute_series(&mut s, &cfg());
        assert_eq!(s, vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(stats.linear_samples, 2);
        assert_eq!(stats.gap_runs, 1);
        assert_eq!(stats.longest_gap, 2);
        assert_eq!(stats.seasonal_samples + stats.nearest_samples, 0);
    }

    #[test]
    fn long_gap_uses_seasonal_donor() {
        // Period 8; a 5-window gap (> max_linear_gap = 3) in the second
        // cycle must copy the first cycle's values.
        let mut s: Vec<f64> = (0..24).map(|t| (t % 8) as f64 * 10.0).collect();
        for slot in &mut s[10..15] {
            *slot = f64::NAN;
        }
        let stats = impute_series(&mut s, &cfg());
        for t in 10..15 {
            assert_eq!(s[t], (t % 8) as f64 * 10.0, "window {t}");
        }
        assert_eq!(stats.seasonal_samples, 5);
        assert_eq!(stats.linear_samples, 0);
    }

    #[test]
    fn leading_gap_without_donor_backfills() {
        let mut s = vec![f64::NAN, f64::NAN, 30.0, 40.0];
        let stats = impute_series(&mut s, &cfg());
        assert_eq!(s, vec![30.0, 30.0, 30.0, 40.0]);
        assert_eq!(stats.nearest_samples, 2);
    }

    #[test]
    fn trailing_gap_with_donor_is_seasonal() {
        let mut s: Vec<f64> = (0..16).map(|t| (t % 8) as f64).collect();
        s[15] = f64::NAN;
        let stats = impute_series(&mut s, &cfg());
        // The donor one period back (index 7) carries the value.
        assert_eq!(s[15], 7.0);
        assert_eq!(stats.seasonal_samples, 1);
    }

    #[test]
    fn fully_gapped_series_fills_zero() {
        let mut s = vec![f64::NAN; 6];
        let stats = impute_series(&mut s, &cfg());
        assert!(s.iter().all(|&v| v == 0.0));
        assert_eq!(stats.nearest_samples, 6);
        assert_eq!(stats.longest_gap, 6);
    }

    #[test]
    fn fills_clamped_to_observed_range() {
        // Neighbours at 120 (a hot VM bursting above 100%): the fill may
        // reach the observed max but never exceed it, and never go
        // negative.
        let mut s = vec![120.0, f64::NAN, 120.0];
        impute_series(&mut s, &cfg());
        assert_eq!(s[1], 120.0);
        let mut neg = vec![5.0, f64::NAN, 0.0];
        impute_series(&mut neg, &cfg());
        assert!(neg[1] >= 0.0);
    }

    #[test]
    fn gap_free_series_untouched() {
        let mut s: Vec<f64> = (0..10).map(|t| t as f64).collect();
        let before = s.clone();
        let stats = impute_series(&mut s, &cfg());
        assert_eq!(s, before);
        assert_eq!(stats.total(), 0);
        assert_eq!(stats.gap_runs, 0);
    }

    #[test]
    fn fills_read_originals_not_other_fills() {
        // Two adjacent long gaps: the second must not interpolate against
        // the first's fills. With period 4, index 6's donor is index 2.
        let mut s = vec![0.0, 1.0, 2.0, 3.0, 0.0, f64::NAN, f64::NAN, 3.0];
        let config = ImputationConfig {
            enabled: true,
            max_linear_gap: 0,
            seasonal_period: 4,
        };
        impute_series(&mut s, &config);
        assert_eq!(s[5], 1.0);
        assert_eq!(s[6], 2.0);
    }

    #[test]
    fn box_imputation_reports_only_gapped_series() {
        let mut b = generate_box(
            &FleetConfig {
                num_boxes: 1,
                days: 2,
                gap_probability: 0.0,
                ..FleetConfig::default()
            },
            3,
        );
        let plan = FaultPlan::gaps_only(9);
        let summary = plan.inject_box(&mut b, 0).expect("valid plan");
        assert!(summary.gap_samples > 0);

        let (filled, report) = impute_box(&b, &ImputationConfig::default());
        assert!(!report.is_empty());
        assert_eq!(report.total_imputed(), summary.gap_samples);
        assert!(report.longest_gap() > 0);
        assert!(!filled.has_gaps(), "imputation left gaps behind");
        // Untouched windows are bit-identical.
        for (vm_f, vm_o) in filled.vms.iter().zip(&b.vms) {
            for (f, o) in vm_f.cpu_usage.iter().zip(&vm_o.cpu_usage) {
                if !o.is_nan() {
                    assert_eq!(f, o);
                }
            }
        }
    }

    #[test]
    fn gap_free_box_returned_unchanged() {
        let b = generate_box(
            &FleetConfig {
                num_boxes: 1,
                days: 1,
                gap_probability: 0.0,
                ..FleetConfig::default()
            },
            4,
        );
        let (filled, report) = impute_box(&b, &ImputationConfig::default());
        assert_eq!(filled, b);
        assert!(report.is_empty());
        assert_eq!(report.total_imputed(), 0);
    }

    #[test]
    fn config_validation() {
        let mut c = ImputationConfig::default();
        assert!(c.validate().is_ok());
        c.seasonal_period = 0;
        assert!(c.validate().is_err());
    }
}
