//! Crash-safe filesystem primitives shared by every writer of JSON (and
//! other) artifacts in this workspace: checkpoints, bench reports, and
//! anything else that must never be observed half-written.
//!
//! The only primitive is [`write_atomic`]: write to a temporary file in
//! the destination directory, `fsync` it, then `rename` over the target.
//! On POSIX filesystems the rename is atomic, so a reader (or a process
//! restarted after a crash) sees either the old complete file or the new
//! complete file — never a torn mixture. The directory itself is synced
//! after the rename so the new directory entry is durable too.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// Atomically replaces the file at `path` with `bytes`.
///
/// The data is staged in a sibling temporary file (same directory, so the
/// rename cannot cross filesystems), flushed and synced to disk, and then
/// renamed over `path`. A crash at any point leaves either the previous
/// file or the new one — never a partial write. The parent directory is
/// fsynced afterwards on a best-effort basis (some filesystems reject
/// directory syncs; the rename itself is still atomic there).
///
/// # Errors
///
/// Any underlying [`io::Error`] from create/write/sync/rename.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(".{}.tmp.{}", file_name, std::process::id()));

    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        // Make the rename itself durable. Opening a directory read-only
        // and syncing it works on Linux; elsewhere this is best-effort.
        if let Ok(d) = File::open(&dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        // Never leave the staging file behind on failure.
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Appends `bytes` to the file at `path` (creating it if absent) and
/// syncs the write to disk before returning.
///
/// Appends are *not* atomic: a crash mid-append can leave a torn tail.
/// Callers (the checkpoint journal) must therefore frame and checksum
/// each record so a torn tail is detected and dropped on recovery.
///
/// # Errors
///
/// Any underlying [`io::Error`] from open/write/sync.
pub fn append_durable(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(bytes)?;
    f.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "atm-fsio-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = temp_dir("replace");
        let path = dir.join("out.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        // No staging files left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "staging files left: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_accumulates() {
        let dir = temp_dir("append");
        let path = dir.join("journal");
        append_durable(&path, b"a\n").unwrap();
        append_durable(&path, b"b\n").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"a\nb\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_name_rejected() {
        assert!(write_atomic(Path::new("/"), b"x").is_err());
    }
}
