//! Online rolling management — the paper's stated future work ("use
//! ATM's prediction abilities to drive online dynamic workload
//! management").
//!
//! Instead of the single post-hoc train/evaluate split of Section V,
//! [`run_online`] slides ATM along the trace day by day: each resizing
//! window is predicted and resized using only the history available at
//! that point, then evaluated against what actually happened — the loop a
//! production deployment would run.

use atm_tracegen::{BoxTrace, VmTrace};
use serde::{Deserialize, Serialize};

use crate::config::AtmConfig;
use crate::error::{AtmError, AtmResult};
use crate::pipeline::{run_box, BoxReport};

/// Outcome of one resizing window (one day in the paper's setup).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowOutcome {
    /// Index of the resizing window (0 = first evaluable day).
    pub window: usize,
    /// The full per-box report for this window.
    pub report: BoxReport,
}

/// Aggregated online-management results for one box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineReport {
    /// Per-window outcomes, in time order.
    pub windows: Vec<WindowOutcome>,
}

impl OnlineReport {
    /// Total tickets before resizing, summed over every window and
    /// resource.
    pub fn total_before(&self) -> usize {
        self.windows
            .iter()
            .flat_map(|w| w.report.resizing.iter())
            .map(|r| r.atm.before)
            .sum()
    }

    /// Total tickets after ATM resizing.
    pub fn total_after(&self) -> usize {
        self.windows
            .iter()
            .flat_map(|w| w.report.resizing.iter())
            .map(|r| r.atm.after)
            .sum()
    }

    /// Overall percent reduction; `None` when no window had tickets.
    pub fn overall_reduction_pct(&self) -> Option<f64> {
        let before = self.total_before();
        if before == 0 {
            None
        } else {
            Some((before as f64 - self.total_after() as f64) / before as f64 * 100.0)
        }
    }

    /// Mean prediction APE across windows (fraction).
    pub fn mean_mape(&self) -> f64 {
        if self.windows.is_empty() {
            return 0.0;
        }
        self.windows
            .iter()
            .map(|w| w.report.prediction.mape_all)
            .sum::<f64>()
            / self.windows.len() as f64
    }
}

/// A copy of `box_trace` truncated to its first `windows` ticketing
/// windows.
fn truncate_box(box_trace: &BoxTrace, windows: usize) -> BoxTrace {
    BoxTrace {
        name: box_trace.name.clone(),
        cpu_capacity_ghz: box_trace.cpu_capacity_ghz,
        ram_capacity_gb: box_trace.ram_capacity_gb,
        interval_minutes: box_trace.interval_minutes,
        vms: box_trace
            .vms
            .iter()
            .map(|vm| VmTrace {
                name: vm.name.clone(),
                cpu_capacity_ghz: vm.cpu_capacity_ghz,
                ram_capacity_gb: vm.ram_capacity_gb,
                cpu_usage: vm.cpu_usage[..windows].to_vec(),
                ram_usage: vm.ram_usage[..windows].to_vec(),
            })
            .collect(),
    }
}

/// Rolls ATM along the trace: for every consecutive resizing horizon
/// after the first `config.train_windows` windows, retrain on the
/// trailing history and resize, evaluating against the realized demand.
///
/// With a 7-day trace and the paper's defaults (5-day training, 1-day
/// horizon) this yields 2 evaluable windows; longer traces yield more.
///
/// # Errors
///
/// - [`AtmError::TraceTooShort`] if not even one window fits.
/// - Propagates per-window pipeline errors.
pub fn run_online(box_trace: &BoxTrace, config: &AtmConfig) -> AtmResult<OnlineReport> {
    config.validate()?;
    let total = box_trace.window_count();
    let needed = config.train_windows + config.horizon;
    if total < needed {
        return Err(AtmError::TraceTooShort {
            required: needed,
            actual: total,
        });
    }
    let evaluable = (total - config.train_windows) / config.horizon;
    let mut windows = Vec::with_capacity(evaluable);
    for w in 0..evaluable {
        let end = config.train_windows + (w + 1) * config.horizon;
        let truncated = truncate_box(box_trace, end);
        let report = run_box(&truncated, config)?;
        windows.push(WindowOutcome { window: w, report });
    }
    Ok(OnlineReport { windows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TemporalModel;
    use atm_tracegen::{generate_box, FleetConfig};

    fn trace(days: usize) -> BoxTrace {
        generate_box(
            &FleetConfig {
                num_boxes: 1,
                days,
                gap_probability: 0.0,
                ..FleetConfig::default()
            },
            3,
        )
    }

    fn oracle_config() -> AtmConfig {
        AtmConfig {
            temporal: TemporalModel::Oracle,
            train_windows: 2 * 96,
            horizon: 96,
            ..AtmConfig::fast_for_tests()
        }
    }

    #[test]
    fn rolls_over_every_available_window() {
        // 5 days, 2-day training, 1-day horizon -> 3 windows.
        let report = run_online(&trace(5), &oracle_config()).unwrap();
        assert_eq!(report.windows.len(), 3);
        for (i, w) in report.windows.iter().enumerate() {
            assert_eq!(w.window, i);
            assert_eq!(w.report.resizing.len(), 2);
        }
    }

    #[test]
    fn online_reduces_tickets_cumulatively() {
        let report = run_online(&trace(5), &oracle_config()).unwrap();
        let before = report.total_before();
        let after = report.total_after();
        assert!(before > 0, "trace produced no tickets");
        assert!(after < before, "online ATM did not reduce tickets");
        let reduction = report.overall_reduction_pct().unwrap();
        assert!(reduction > 40.0, "reduction only {reduction:.0}%");
        assert!(report.mean_mape().is_finite());
    }

    #[test]
    fn too_short_trace_rejected() {
        let cfg = oracle_config();
        assert!(matches!(
            run_online(&trace(2), &cfg),
            Err(AtmError::TraceTooShort { .. })
        ));
    }

    #[test]
    fn each_window_trains_only_on_past() {
        // The first window's report must be identical to running the
        // pipeline on the truncated prefix — no future leakage.
        let b = trace(5);
        let cfg = oracle_config();
        let online = run_online(&b, &cfg).unwrap();
        let prefix = truncate_box(&b, cfg.train_windows + cfg.horizon);
        let direct = run_box(&prefix, &cfg).unwrap();
        assert_eq!(online.windows[0].report, direct);
    }
}
