//! Online rolling management — the paper's stated future work ("use
//! ATM's prediction abilities to drive online dynamic workload
//! management") — hardened to degrade rather than abort.
//!
//! Instead of the single post-hoc train/evaluate split of Section V,
//! [`run_online`] slides ATM along the trace day by day: each resizing
//! window is predicted and resized using only the history available at
//! that point, then evaluated against what actually happened — the loop a
//! production deployment would run.
//!
//! # Degrade, don't abort
//!
//! A production loop cannot stop managing a box because one window's
//! model failed to fit or the enforcement daemon timed out. Every window
//! therefore completes with a [`WindowStatus`], falling through a chain:
//!
//! 1. the full signature pipeline ([`run_box`]);
//! 2. the clustering-free per-VM seasonal-naive fallback
//!    ([`fallback_box_report`]) when the full pipeline errors;
//! 3. carrying the previous window's capacities forward when both fail —
//!    the box keeps its last known-good configuration.
//!
//! Capacity changes are pushed through a [`CapacityActuator`] (CPU caps,
//! mirroring the paper's per-hypervisor cgroups daemon) with bounded
//! retries; after [`OnlineConfig::safe_mode_after`](crate::config::OnlineConfig)
//! consecutive actuation failures the loop enters *safe mode*, reverting
//! caps to the VMs' allocated capacities until an apply succeeds again.
//! Ticket accounting for every window — including degraded and skipped
//! ones — is aggregated in [`DegradationSummary`].
//!
//! The simulation evaluates tickets under the *intended* capacities;
//! actuation failures are tracked for accounting and safe mode rather
//! than forking the evaluation state.
//!
//! # Drift-aware adaptation
//!
//! With [`AdaptationConfig::enabled`](crate::config::AdaptationConfig)
//! the driver watches each window's residual (the report's overall
//! prediction MAPE) for sustained shifts against a frozen baseline.
//! A confirmed shift emits a structured [`DriftEvent`], spends one unit
//! of the bounded re-fit budget, and switches subsequent windows to an
//! *adapted* configuration: training shortened to
//! [`refit_train_windows`](crate::config::AdaptationConfig) (which also
//! re-clusters on the fresh history) and
//! [`demand_headroom`](crate::config::AtmConfig) raised in proportion to
//! the observed residual. Hysteresis clears the episode once residuals
//! settle, a cooldown suppresses immediate re-triggering, and an
//! exhausted budget emits one [`DriftEventKind::BudgetExhausted`] event
//! and falls back to the ordinary degradation chain — the loop degrades,
//! it never aborts. All adaptation state lives in [`OnlineState`], so
//! crash-resumed runs replay decisions byte-identically.
//!
//! # Chronic-offender feedback
//!
//! With [`TicketsConfig::enabled`](crate::config::TicketsConfig) the
//! driver additionally feeds each completed window's ticketed-window
//! indices (under the caps in effect) through a robust anomaly scorer
//! over the box's inter-ticket delays (see [`crate::tickets`]). A box
//! that stays anomalous for
//! [`chronic_after`](crate::config::TicketsConfig) consecutive
//! evaluations becomes a *chronic offender*: subsequent windows resize
//! it under the
//! [`offender_headroom`](crate::config::TicketsConfig) floor (composed
//! with adaptive headroom via `max`, bounded by the resizer's
//! feasibility cap) until an equal calm streak clears it. Transitions
//! are structured [`TicketEvent`](crate::tickets::TicketEvent)s, the
//! per-run accounting lands in
//! [`OnlineReport::tickets`], and all of it lives in [`OnlineState`] —
//! crash-resumed runs replay decisions byte-identically.
//!
//! # Crash safety
//!
//! The loop is factored into an [`OnlineDriver`] advancing a serializable
//! [`OnlineState`] one window at a time. [`run_online_checkpointed`]
//! persists that state through a [`CheckpointStore`] after every window,
//! so a process killed at any point resumes from its checkpoint and
//! finishes with a byte-identical [`OnlineReport`];
//! [`run_online_until`] adds a scripted kill point for the chaos
//! harness, and [`crate::supervisor`] runs whole fleets this way with
//! panic isolation and circuit breaking.

use atm_obs::Obs;
use atm_resize::evaluate::box_outcome;
use atm_ticketing::ThresholdPolicy;
use atm_tracegen::{BoxTrace, Resource, VmTrace};
use serde::{Deserialize, Serialize};

use crate::actuate::{apply_with_retry, CapacityActuator, NoopActuator};
use crate::checkpoint::{CheckpointStore, Recovery};
use crate::config::{AdaptationConfig, AtmConfig};
use crate::error::{AtmError, AtmResult};
use crate::pipeline::{
    fallback_box_report_observed_with, run_box_observed_with, scoped_resources, ticket_policy,
    validate_rectangular, BoxReport, ResizeSolvers,
};
use crate::tickets::{TicketEventKind, TicketFeedbackReport, TicketState};

/// How one online window completed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowStatus {
    /// The full pipeline ran on clean data and actuation succeeded first
    /// try.
    Ok,
    /// The window completed with reduced fidelity: gaps were imputed, the
    /// fallback pipeline was used, or actuation needed retries / failed.
    Degraded {
        /// Human-readable degradation causes, semicolon-separated.
        reason: String,
    },
    /// No new capacities were computed this window: the previous caps
    /// were carried forward (or safe mode held the box at its allocated
    /// capacities).
    Skipped {
        /// Why the window was skipped.
        reason: String,
    },
}

impl WindowStatus {
    /// Whether the window completed at full fidelity.
    pub fn is_ok(&self) -> bool {
        matches!(self, WindowStatus::Ok)
    }

    /// Whether the window completed degraded.
    pub fn is_degraded(&self) -> bool {
        matches!(self, WindowStatus::Degraded { .. })
    }

    /// Whether resizing was skipped for the window.
    pub fn is_skipped(&self) -> bool {
        matches!(self, WindowStatus::Skipped { .. })
    }
}

/// Outcome of one resizing window (one day in the paper's setup).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowOutcome {
    /// Index of the resizing window (0 = first evaluable day).
    pub window: usize,
    /// How the window completed.
    pub status: WindowStatus,
    /// The per-box report for this window; `None` when caps were carried
    /// forward (no model ran).
    pub report: Option<BoxReport>,
    /// Tickets in this window under the original capacities, summed over
    /// the scoped resources.
    pub tickets_before: usize,
    /// Tickets under the capacities in effect after this window's
    /// management decision.
    pub tickets_after: usize,
    /// Actuator attempts used this window (0 = nothing was actuated,
    /// e.g. a RAM-only scope).
    pub actuation_attempts: usize,
}

/// Degradation accounting across an online run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradationSummary {
    /// Windows evaluated in total.
    pub windows_total: usize,
    /// Windows that completed at full fidelity.
    pub windows_ok: usize,
    /// Windows that completed degraded.
    pub windows_degraded: usize,
    /// Windows where resizing was skipped (carry-forward or safe mode).
    pub windows_skipped: usize,
    /// Windows resized by the fallback pipeline.
    pub fallback_windows: usize,
    /// Windows whose trace needed gap imputation.
    pub imputed_windows: usize,
    /// Gap samples imputed, summed over windows (a sample gapped in
    /// several windows' truncated traces is counted once per window).
    pub imputed_samples: usize,
    /// Extra actuator attempts beyond the first, summed over windows.
    pub actuation_retries: usize,
    /// Windows whose actuation still failed after all retries.
    pub actuation_failures: usize,
    /// Times the loop entered safe mode.
    pub safe_mode_entries: usize,
    /// Tickets before resizing in non-`Ok` windows.
    pub degraded_tickets_before: usize,
    /// Tickets after resizing in non-`Ok` windows — the ticket cost
    /// attributable to degraded operation.
    pub degraded_tickets_after: usize,
}

impl DegradationSummary {
    /// Accumulates another box's accounting into this one — the
    /// fleet-level aggregation used by
    /// [`FleetReport`](crate::supervisor::FleetReport). Saturates
    /// instead of overflowing, so pathological inputs cannot panic the
    /// aggregation in debug builds.
    pub fn merge(&mut self, other: &DegradationSummary) {
        self.windows_total = self.windows_total.saturating_add(other.windows_total);
        self.windows_ok = self.windows_ok.saturating_add(other.windows_ok);
        self.windows_degraded = self.windows_degraded.saturating_add(other.windows_degraded);
        self.windows_skipped = self.windows_skipped.saturating_add(other.windows_skipped);
        self.fallback_windows = self.fallback_windows.saturating_add(other.fallback_windows);
        self.imputed_windows = self.imputed_windows.saturating_add(other.imputed_windows);
        self.imputed_samples = self.imputed_samples.saturating_add(other.imputed_samples);
        self.actuation_retries = self
            .actuation_retries
            .saturating_add(other.actuation_retries);
        self.actuation_failures = self
            .actuation_failures
            .saturating_add(other.actuation_failures);
        self.safe_mode_entries = self
            .safe_mode_entries
            .saturating_add(other.safe_mode_entries);
        self.degraded_tickets_before = self
            .degraded_tickets_before
            .saturating_add(other.degraded_tickets_before);
        self.degraded_tickets_after = self
            .degraded_tickets_after
            .saturating_add(other.degraded_tickets_after);
    }
}

/// What a [`DriftEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum DriftEventKind {
    /// Residual shift confirmed; an adaptation episode began and one
    /// unit of the re-fit budget was spent.
    Confirmed,
    /// Residuals settled back under the hysteresis threshold; the
    /// episode ended and the adapted configuration was dropped.
    Cleared,
    /// A shift was confirmed but the re-fit budget was already spent;
    /// the loop keeps running un-adapted (degradation chain only).
    /// Emitted at most once per run.
    BudgetExhausted,
}

/// One structured, deterministic drift-detector transition. Events are
/// part of [`OnlineState`], so a crash-resumed run carries byte-identical
/// history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftEvent {
    /// Window index (0 = first evaluable window) the transition fired on.
    pub window: usize,
    /// Transition kind.
    pub kind: DriftEventKind,
    /// The short-window residual median that triggered the transition.
    pub residual: f64,
    /// The effective baseline it was compared against (frozen baseline
    /// median, floored by the configured residual floor).
    pub baseline: f64,
    /// Demand headroom in effect immediately after the transition.
    pub headroom: f64,
}

/// Aggregated adaptation accounting surfaced in an [`OnlineReport`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AdaptationReport {
    /// Every drift-detector transition, in window order.
    pub events: Vec<DriftEvent>,
    /// Re-fit budget units spent.
    pub refits_used: usize,
    /// Whether a confirmed shift found the budget already exhausted.
    pub budget_exhausted: bool,
}

impl AdaptationReport {
    /// True when adaptation never fired (or was disabled) — the report
    /// then serializes without an `adaptation` key, keeping the
    /// pre-adaptation byte layout.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.refits_used == 0 && !self.budget_exhausted
    }

    /// Events of one kind, in window order.
    pub fn events_of(&self, kind: DriftEventKind) -> Vec<&DriftEvent> {
        self.events.iter().filter(|e| e.kind == kind).collect()
    }
}

/// Median of a non-empty slice (NaN-safe total order). 0 for empty input.
fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Serializable residual-drift detector + adaptation controller state.
///
/// Lives inside [`OnlineState`] so every decision it makes is replayed
/// byte-identically after a crash-resume. The state machine:
///
/// 1. **Warm-up**: the first
///    [`baseline_windows`](crate::config::AdaptationConfig) residuals
///    freeze the baseline median.
/// 2. **Watch**: the median of the last `short_windows` residuals is
///    compared against `trigger_ratio ×` the baseline (floored by
///    `residual_floor`); `confirm_windows` consecutive elevated windows
///    confirm drift.
/// 3. **Adapt**: a confirmed shift spends one re-fit unit, emits
///    [`DriftEventKind::Confirmed`], and raises demand headroom
///    proportionally to the residual (ratcheting up within the episode,
///    never down, so alternating surge/calm days stay covered).
/// 4. **Clear**: residuals at or under `clear_ratio ×` baseline end the
///    episode ([`DriftEventKind::Cleared`]), reset headroom, and start a
///    cooldown during which no new episode can begin.
///
/// With the budget spent, step 3 instead emits one
/// [`DriftEventKind::BudgetExhausted`] and stays un-adapted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptationState {
    /// Residuals collected while freezing the baseline.
    pub(crate) warmup: Vec<f64>,
    /// Frozen baseline residual median; `None` during warm-up.
    pub(crate) baseline: Option<f64>,
    /// Ring of the last `short_windows` residuals.
    pub(crate) recent: Vec<f64>,
    /// Consecutive elevated windows seen so far.
    pub(crate) elevated_streak: usize,
    /// Whether an adaptation episode is in progress.
    pub(crate) active: bool,
    /// Windows left before a new episode may begin.
    pub(crate) cooldown: usize,
    /// Re-fit budget units spent.
    pub(crate) refits_used: usize,
    /// Demand headroom currently in force (1 = none).
    pub(crate) headroom: f64,
    /// Whether the one-shot budget-exhausted event already fired.
    pub(crate) budget_exhausted_reported: bool,
    /// Every transition so far, in window order.
    pub(crate) events: Vec<DriftEvent>,
}

impl Default for AdaptationState {
    fn default() -> Self {
        AdaptationState {
            warmup: Vec::new(),
            baseline: None,
            recent: Vec::new(),
            elevated_streak: 0,
            active: false,
            cooldown: 0,
            refits_used: 0,
            headroom: 1.0,
            budget_exhausted_reported: false,
            events: Vec::new(),
        }
    }
}

impl AdaptationState {
    /// Feeds one completed window's residual through the state machine.
    /// Non-finite or negative residuals are ignored (a carried-forward
    /// window produces none at all).
    pub(crate) fn observe(&mut self, cfg: &AdaptationConfig, window: usize, residual: f64) {
        if !residual.is_finite() || residual < 0.0 {
            return;
        }
        let baseline = match self.baseline {
            None => {
                self.warmup.push(residual);
                if self.warmup.len() >= cfg.baseline_windows {
                    self.baseline = Some(median(&self.warmup));
                    self.warmup.clear();
                }
                return;
            }
            Some(b) => b,
        };
        self.recent.push(residual);
        if self.recent.len() > cfg.short_windows {
            self.recent.remove(0);
        }
        if self.recent.len() < cfg.short_windows {
            return;
        }
        let recent = median(&self.recent);
        let floor = baseline.max(cfg.residual_floor);

        if self.cooldown > 0 {
            self.cooldown -= 1;
            self.elevated_streak = 0;
            return;
        }

        if self.active {
            // Ratchet headroom up with the residual; never down within
            // an episode, so alternating surge/calm days stay covered.
            let candidate = (1.0 + cfg.headroom_gain * recent).clamp(1.0, cfg.max_headroom);
            if candidate > self.headroom {
                self.headroom = candidate;
            }
            if recent <= cfg.clear_ratio * floor {
                self.active = false;
                self.headroom = 1.0;
                self.cooldown = cfg.cooldown_windows;
                self.events.push(DriftEvent {
                    window,
                    kind: DriftEventKind::Cleared,
                    residual: recent,
                    baseline: floor,
                    headroom: 1.0,
                });
            }
            return;
        }

        if recent > cfg.trigger_ratio * floor {
            self.elevated_streak += 1;
            if self.elevated_streak >= cfg.confirm_windows {
                self.elevated_streak = 0;
                if self.refits_used < cfg.max_refits {
                    self.refits_used += 1;
                    self.active = true;
                    self.headroom = (1.0 + cfg.headroom_gain * recent).clamp(1.0, cfg.max_headroom);
                    self.events.push(DriftEvent {
                        window,
                        kind: DriftEventKind::Confirmed,
                        residual: recent,
                        baseline: floor,
                        headroom: self.headroom,
                    });
                } else if !self.budget_exhausted_reported {
                    self.budget_exhausted_reported = true;
                    self.events.push(DriftEvent {
                        window,
                        kind: DriftEventKind::BudgetExhausted,
                        residual: recent,
                        baseline: floor,
                        headroom: self.headroom,
                    });
                }
            }
        } else {
            self.elevated_streak = 0;
        }
    }

    /// The adaptation accounting for a finished run.
    fn into_report(self) -> AdaptationReport {
        AdaptationReport {
            events: self.events,
            refits_used: self.refits_used,
            budget_exhausted: self.budget_exhausted_reported,
        }
    }
}

/// Aggregated online-management results for one box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineReport {
    /// Per-window outcomes, in time order.
    pub windows: Vec<WindowOutcome>,
    /// Degradation accounting across the run.
    pub degradation: DegradationSummary,
    /// Drift-adaptation accounting; omitted from serialization while
    /// empty so pre-adaptation reports keep their byte layout.
    #[serde(default, skip_serializing_if = "AdaptationReport::is_empty")]
    pub adaptation: AdaptationReport,
    /// Chronic-offender ticket feedback accounting; omitted from
    /// serialization while empty so pre-tickets reports keep their
    /// byte layout.
    #[serde(default, skip_serializing_if = "TicketFeedbackReport::is_empty")]
    pub tickets: TicketFeedbackReport,
}

impl OnlineReport {
    /// Total tickets before resizing, summed over every window and
    /// resource.
    pub fn total_before(&self) -> usize {
        self.windows.iter().map(|w| w.tickets_before).sum()
    }

    /// Total tickets after ATM resizing.
    pub fn total_after(&self) -> usize {
        self.windows.iter().map(|w| w.tickets_after).sum()
    }

    /// Overall percent reduction; `None` when no window had tickets.
    pub fn overall_reduction_pct(&self) -> Option<f64> {
        let before = self.total_before();
        if before == 0 {
            None
        } else {
            Some((before as f64 - self.total_after() as f64) / before as f64 * 100.0)
        }
    }

    /// Mean prediction APE across windows that produced a report
    /// (fraction).
    pub fn mean_mape(&self) -> f64 {
        let mapes: Vec<f64> = self
            .windows
            .iter()
            .filter_map(|w| w.report.as_ref().map(|r| r.prediction.mape_all))
            .collect();
        if mapes.is_empty() {
            return 0.0;
        }
        mapes.iter().sum::<f64>() / mapes.len() as f64
    }
}

/// A copy of `box_trace` truncated to its first `windows` ticketing
/// windows.
///
/// # Errors
///
/// Returns [`AtmError::RaggedTrace`] when any series is shorter than
/// `windows` — truncation would otherwise panic on the malformed VM.
pub fn truncate_box(box_trace: &BoxTrace, windows: usize) -> AtmResult<BoxTrace> {
    for vm in &box_trace.vms {
        for actual in [vm.cpu_usage.len(), vm.ram_usage.len()] {
            if actual < windows {
                return Err(AtmError::RaggedTrace {
                    vm: vm.name.clone(),
                    expected: windows,
                    actual,
                });
            }
        }
    }
    Ok(BoxTrace {
        name: box_trace.name.clone(),
        cpu_capacity_ghz: box_trace.cpu_capacity_ghz,
        ram_capacity_gb: box_trace.ram_capacity_gb,
        interval_minutes: box_trace.interval_minutes,
        vms: box_trace
            .vms
            .iter()
            .map(|vm| VmTrace {
                name: vm.name.clone(),
                cpu_capacity_ghz: vm.cpu_capacity_ghz,
                ram_capacity_gb: vm.ram_capacity_gb,
                cpu_usage: vm.cpu_usage[..windows].to_vec(),
                ram_usage: vm.ram_usage[..windows].to_vec(),
            })
            .collect(),
    })
}

/// Ticket counts for one evaluation window under explicit capacities.
/// `new_caps[i] = None` means "unchanged" for that resource. Gap samples
/// in the raw demands never generate tickets, so this works on gappy
/// windows too.
fn evaluate_caps(
    box_trace: &BoxTrace,
    resources: &[Resource],
    eval_start: usize,
    eval_end: usize,
    new_caps: &[Option<Vec<f64>>],
    policy: &ThresholdPolicy,
) -> AtmResult<(usize, usize)> {
    let mut before = 0;
    let mut after = 0;
    for (ri, &resource) in resources.iter().enumerate() {
        let actual: Vec<Vec<f64>> = box_trace
            .vms
            .iter()
            .map(|vm| vm.demand(resource)[eval_start..eval_end].to_vec())
            .collect();
        let original: Vec<f64> = box_trace
            .vms
            .iter()
            .map(|vm| vm.capacity(resource))
            .collect();
        let caps = new_caps[ri].clone().unwrap_or_else(|| original.clone());
        let outcome = box_outcome(&actual, &original, &caps, policy)?;
        before += outcome.before;
        after += outcome.after;
    }
    Ok((before, after))
}

/// Rolls ATM along the trace with the default (no-op) actuator — online
/// management without live enforcement, the paper's evaluation mode.
///
/// See [`run_online_with_actuator`] for semantics and errors.
///
/// # Errors
///
/// As [`run_online_with_actuator`].
pub fn run_online(box_trace: &BoxTrace, config: &AtmConfig) -> AtmResult<OnlineReport> {
    let mut actuator = NoopActuator::new();
    run_online_with_actuator(box_trace, config, &mut actuator)
}

/// [`run_online`] with an observability handle: per-window `online.*`
/// counters, ticket histograms, and one `window` event per window are
/// recorded on `obs` (scoped by the box name), and every window's
/// [`BoxReport`] embeds its per-run metrics.
///
/// # Errors
///
/// As [`run_online`].
pub fn run_online_observed(
    box_trace: &BoxTrace,
    config: &AtmConfig,
    obs: &Obs,
) -> AtmResult<OnlineReport> {
    let mut actuator = NoopActuator::new();
    run_online_with_actuator_observed(box_trace, config, &mut actuator, obs)
}

/// Records one completed window's *logical progress* on `obs`: the
/// `online.*` counters (as deltas of the running [`DegradationSummary`]
/// against `before`, so restart-recomputed work is never double-counted
/// when this is called only after the window is accepted/persisted), the
/// ticket histograms, a `window` event scoped by the box name, one
/// `drift` event per drift-detector transition past `events_before`, and
/// one `chronic` event per ticket-feedback transition past
/// `ticket_events_before`.
fn record_window_obs(
    obs: &Obs,
    box_name: &str,
    before: &DegradationSummary,
    events_before: usize,
    ticket_events_before: usize,
    state: &OnlineState,
) {
    let outcome = match state.windows.last() {
        Some(o) => o,
        None => return,
    };
    let after = &state.summary;
    obs.add("online.windows_total", 1);
    let status = match &outcome.status {
        WindowStatus::Ok => {
            obs.add("online.windows_ok", 1);
            "ok"
        }
        WindowStatus::Degraded { .. } => {
            obs.add("online.windows_degraded", 1);
            "degraded"
        }
        WindowStatus::Skipped { .. } => {
            obs.add("online.windows_skipped", 1);
            "skipped"
        }
    };
    let deltas = [
        (
            "online.fallback_windows",
            after.fallback_windows,
            before.fallback_windows,
        ),
        (
            "online.imputed_windows",
            after.imputed_windows,
            before.imputed_windows,
        ),
        (
            "online.imputed_samples",
            after.imputed_samples,
            before.imputed_samples,
        ),
        (
            "online.actuation_retries",
            after.actuation_retries,
            before.actuation_retries,
        ),
        (
            "online.actuation_failures",
            after.actuation_failures,
            before.actuation_failures,
        ),
        (
            "online.safe_mode_entries",
            after.safe_mode_entries,
            before.safe_mode_entries,
        ),
    ];
    for (name, now, prev) in deltas {
        obs.add(name, now.saturating_sub(prev) as u64);
    }
    obs.observe("online.tickets_before", outcome.tickets_before as u64);
    obs.observe("online.tickets_after", outcome.tickets_after as u64);
    let reason = match &outcome.status {
        WindowStatus::Ok => String::new(),
        WindowStatus::Degraded { reason } | WindowStatus::Skipped { reason } => reason.clone(),
    };
    let mut fields = vec![
        ("window", atm_obs::FieldValue::from(outcome.window)),
        ("status", atm_obs::FieldValue::from(status)),
        (
            "tickets_before",
            atm_obs::FieldValue::from(outcome.tickets_before),
        ),
        (
            "tickets_after",
            atm_obs::FieldValue::from(outcome.tickets_after),
        ),
        (
            "attempts",
            atm_obs::FieldValue::from(outcome.actuation_attempts),
        ),
    ];
    if !reason.is_empty() {
        fields.push(("reason", atm_obs::FieldValue::from(reason)));
    }
    obs.event(box_name, "window", fields);
    if after.safe_mode_entries > before.safe_mode_entries {
        obs.event(
            box_name,
            "safe_mode_enter",
            vec![("window", atm_obs::FieldValue::from(outcome.window))],
        );
    }
    for ev in state.adaptation.events.iter().skip(events_before) {
        let kind = match ev.kind {
            DriftEventKind::Confirmed => "confirmed",
            DriftEventKind::Cleared => "cleared",
            DriftEventKind::BudgetExhausted => "budget_exhausted",
        };
        obs.add("online.drift_events", 1);
        obs.add(&format!("online.drift_{kind}"), 1);
        obs.event(
            box_name,
            "drift",
            vec![
                ("window", atm_obs::FieldValue::from(ev.window)),
                ("kind", atm_obs::FieldValue::from(kind)),
                // FieldValue has no float variant; fixed-precision
                // strings keep the log deterministic.
                (
                    "residual",
                    atm_obs::FieldValue::from(format!("{:.6}", ev.residual)),
                ),
                (
                    "baseline",
                    atm_obs::FieldValue::from(format!("{:.6}", ev.baseline)),
                ),
                (
                    "headroom",
                    atm_obs::FieldValue::from(format!("{:.6}", ev.headroom)),
                ),
            ],
        );
    }
    for ev in state.tickets.events.iter().skip(ticket_events_before) {
        let kind = match ev.kind {
            TicketEventKind::ChronicDeclared => {
                obs.add("online.chronic_declared", 1);
                "declared"
            }
            TicketEventKind::ChronicCleared => {
                obs.add("online.chronic_cleared", 1);
                "cleared"
            }
        };
        obs.add("online.ticket_events", 1);
        obs.event(
            box_name,
            "chronic",
            vec![
                ("window", atm_obs::FieldValue::from(ev.window)),
                ("kind", atm_obs::FieldValue::from(kind)),
                // FieldValue has no float variant; see the drift event.
                (
                    "score",
                    atm_obs::FieldValue::from(format!("{:.6}", ev.score)),
                ),
            ],
        );
    }
}

/// Rolls ATM along the trace: for every consecutive resizing horizon
/// after the first `config.train_windows` windows, retrain on the
/// trailing history, resize, push the new CPU caps through `actuator`,
/// and evaluate against the realized demand.
///
/// With a 7-day trace and the paper's defaults (5-day training, 1-day
/// horizon) this yields 2 evaluable windows; longer traces yield more.
///
/// When [`OnlineConfig::fallback`](crate::config::OnlineConfig) is on
/// (the default), per-window model failures degrade instead of aborting:
/// see the [module docs](self). With it off, the first pipeline error is
/// propagated — the pre-robustness strict behaviour.
///
/// # Errors
///
/// - [`AtmError::InvalidConfig`] for a bad configuration.
/// - [`AtmError::RaggedTrace`] for a malformed trace.
/// - [`AtmError::TraceTooShort`] if not even one window fits.
/// - Per-window pipeline errors, only when `config.online.fallback` is
///   `false`.
pub fn run_online_with_actuator(
    box_trace: &BoxTrace,
    config: &AtmConfig,
    actuator: &mut dyn CapacityActuator,
) -> AtmResult<OnlineReport> {
    run_online_with_actuator_observed(box_trace, config, actuator, &Obs::disabled())
}

/// [`run_online_with_actuator`] with an observability handle; see
/// [`run_online_observed`].
///
/// # Errors
///
/// As [`run_online_with_actuator`].
pub fn run_online_with_actuator_observed(
    box_trace: &BoxTrace,
    config: &AtmConfig,
    actuator: &mut dyn CapacityActuator,
    obs: &Obs,
) -> AtmResult<OnlineReport> {
    let mut driver = OnlineDriver::new_observed(box_trace, config, obs)?;
    let mut state = driver.fresh_state();
    while !driver.is_done(&state) {
        let before = obs.is_enabled().then(|| {
            (
                state.summary.clone(),
                state.adaptation.events.len(),
                state.tickets.events.len(),
            )
        });
        driver.step(&mut state, actuator)?;
        if let Some((before, events_before, ticket_events_before)) = before {
            record_window_obs(
                obs,
                &box_trace.name,
                &before,
                events_before,
                ticket_events_before,
                &state,
            );
        }
    }
    Ok(driver.finish(state))
}

/// Serializable per-box state of an in-progress online run: the window
/// cursor, every completed [`WindowOutcome`], the carried-forward caps,
/// and the safe-mode/degradation counters.
///
/// This is exactly what [`crate::checkpoint`] persists after every
/// window; a run resumed from it continues as if it had never stopped,
/// producing a byte-identical [`OnlineReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineState {
    /// Binds the state to one (trace, config) pair; see
    /// [`OnlineDriver::fingerprint`].
    pub(crate) fingerprint: u64,
    /// The next window to compute (== windows completed so far).
    pub(crate) next_window: usize,
    /// Completed window outcomes, in time order.
    pub(crate) windows: Vec<WindowOutcome>,
    /// Running degradation accounting.
    pub(crate) summary: DegradationSummary,
    /// Last successfully computed caps per scoped resource, carried
    /// forward when a window cannot compute new ones.
    pub(crate) last_caps: Vec<Option<Vec<f64>>>,
    /// Consecutive windows whose actuation failed even with retries.
    pub(crate) consecutive_actuation_failures: usize,
    /// Whether the loop is currently in safe mode.
    pub(crate) safe_mode: bool,
    /// Drift detector + adaptation controller state. Defaults keep
    /// checkpoints written before adaptation existed loadable.
    #[serde(default)]
    pub(crate) adaptation: AdaptationState,
    /// Chronic-offender ticket tracker. Defaults keep checkpoints
    /// written before ticket feedback existed loadable.
    #[serde(default)]
    pub(crate) tickets: TicketState,
}

impl OnlineState {
    /// The next window this state will compute.
    pub fn next_window(&self) -> usize {
        self.next_window
    }

    /// Windows completed so far.
    pub fn completed_windows(&self) -> usize {
        self.windows.len()
    }

    /// Completed window outcomes, in time order. The serve layer streams
    /// these one response line per [`OnlineDriver::step`].
    pub fn outcomes(&self) -> &[WindowOutcome] {
        &self.windows
    }
}

/// FNV-1a fingerprint binding checkpointed state to its (trace, config)
/// pair, so stale state from a different run is detected and ignored
/// instead of silently mixed in. Public because the serve layer keys its
/// plan cache on the same value: a cached plan is only ever replayed for
/// the exact (trace, config) pair that produced it.
pub fn run_fingerprint(box_trace: &BoxTrace, config: &AtmConfig) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut feed = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    feed(&serde_json::to_vec(config).unwrap_or_default());
    feed(&serde_json::to_vec(box_trace).unwrap_or_default());
    hash
}

/// Step-at-a-time driver for the online loop.
///
/// [`run_online_with_actuator`] drives this to completion in one go; the
/// checkpointed runner ([`run_online_checkpointed`]) and the fleet
/// supervisor ([`crate::supervisor`]) interleave [`step`](Self::step)
/// with persistence so a kill between any two windows is recoverable.
pub struct OnlineDriver<'a> {
    box_trace: &'a BoxTrace,
    config: &'a AtmConfig,
    policy: ThresholdPolicy,
    resources: Vec<Resource>,
    actuate_cpu: bool,
    original_cpu_caps: Vec<f64>,
    evaluable: usize,
    fingerprint: u64,
    obs: Obs,
    /// Incremental MCKP state carried across windows — a pure cache:
    /// results are byte-identical whether it is warm (mid-run) or cold
    /// (fresh driver after a checkpoint resume), so it is deliberately
    /// NOT part of [`OnlineState`]. One set per fallback tier: the
    /// seasonal-naive fallback feeds different demand vectors and would
    /// otherwise evict the main pipeline's groups.
    solvers: ResizeSolvers,
    fallback_solvers: ResizeSolvers,
}

impl<'a> OnlineDriver<'a> {
    /// Validates the run and precomputes its derived parameters.
    ///
    /// # Errors
    ///
    /// - [`AtmError::InvalidConfig`] for a bad configuration.
    /// - [`AtmError::RaggedTrace`] for a malformed trace.
    /// - [`AtmError::TraceTooShort`] if not even one window fits.
    pub fn new(box_trace: &'a BoxTrace, config: &'a AtmConfig) -> AtmResult<Self> {
        Self::new_observed(box_trace, config, &Obs::disabled())
    }

    /// [`OnlineDriver::new`] with an observability handle. The driver
    /// instruments *work performed* (pipeline spans and kernel counters,
    /// via [`run_box_observed`]); *logical progress* (`online.*`
    /// per-window counters and events) is recorded by the loop wrappers
    /// after the window is accepted — and, in the durable loops, only
    /// after it is persisted — so a restarted box never double-counts a
    /// window.
    ///
    /// # Errors
    ///
    /// As [`OnlineDriver::new`].
    pub fn new_observed(
        box_trace: &'a BoxTrace,
        config: &'a AtmConfig,
        obs: &Obs,
    ) -> AtmResult<Self> {
        config.validate()?;
        validate_rectangular(box_trace)?;
        let total = box_trace.window_count();
        let needed = config.train_windows + config.horizon;
        if total < needed {
            return Err(AtmError::TraceTooShort {
                required: needed,
                actual: total,
            });
        }
        let policy = ticket_policy(config)?;
        let resources = scoped_resources(config.scope);
        let actuate_cpu = resources.contains(&Resource::Cpu);
        let original_cpu_caps = box_trace.vms.iter().map(|vm| vm.cpu_capacity_ghz).collect();
        let evaluable = (total - config.train_windows) / config.horizon;
        let fingerprint = run_fingerprint(box_trace, config);
        Ok(OnlineDriver {
            box_trace,
            config,
            policy,
            resources,
            actuate_cpu,
            original_cpu_caps,
            evaluable,
            fingerprint,
            obs: obs.clone(),
            solvers: ResizeSolvers::new(),
            fallback_solvers: ResizeSolvers::new(),
        })
    }

    /// Total windows this run will evaluate.
    pub fn windows_total(&self) -> usize {
        self.evaluable
    }

    /// The run's (trace, config) fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// A clean starting state for this run.
    pub fn fresh_state(&self) -> OnlineState {
        OnlineState {
            fingerprint: self.fingerprint,
            next_window: 0,
            windows: Vec::with_capacity(self.evaluable),
            summary: DegradationSummary::default(),
            last_caps: vec![None; self.resources.len()],
            consecutive_actuation_failures: 0,
            safe_mode: false,
            adaptation: AdaptationState::default(),
            tickets: TicketState::default(),
        }
    }

    /// Whether every window has been computed.
    pub fn is_done(&self, state: &OnlineState) -> bool {
        state.next_window >= self.evaluable
    }

    /// Computes, actuates, and records the next window, advancing the
    /// cursor by one. The degrade-don't-abort semantics are unchanged
    /// from the pre-checkpoint loop: see the [module docs](self).
    ///
    /// # Errors
    ///
    /// Evaluation errors on the carry-forward path, and per-window
    /// pipeline errors when `config.online.fallback` is `false`.
    pub fn step(
        &mut self,
        state: &mut OnlineState,
        actuator: &mut dyn CapacityActuator,
    ) -> AtmResult<()> {
        let _window_span = self.obs.span("online.window");
        let w = state.next_window;
        let config = self.config;
        let end = config.train_windows + (w + 1) * config.horizon;
        let eval_start = end - config.horizon;

        if state.safe_mode {
            // Hold the box at its allocated capacities; retry the revert
            // each window and leave safe mode once an apply sticks.
            let mut attempts = 0;
            if self.actuate_cpu {
                match apply_with_retry(actuator, &self.original_cpu_caps, &config.online.retry) {
                    Ok(outcome) => {
                        attempts = outcome.attempts;
                        state.summary.actuation_retries += outcome.attempts - 1;
                        state.consecutive_actuation_failures = 0;
                        state.safe_mode = false;
                    }
                    Err(_) => {
                        attempts = config.online.retry.max_attempts;
                        state.summary.actuation_retries += attempts.saturating_sub(1);
                        state.summary.actuation_failures += 1;
                    }
                }
            } else {
                state.safe_mode = false;
            }
            let no_change: Vec<Option<Vec<f64>>> = vec![None; self.resources.len()];
            let (before, after) = evaluate_caps(
                self.box_trace,
                &self.resources,
                eval_start,
                end,
                &no_change,
                &self.policy,
            )?;
            state.summary.windows_skipped += 1;
            state.summary.degraded_tickets_before += before;
            state.summary.degraded_tickets_after += after;
            state.windows.push(WindowOutcome {
                window: w,
                status: WindowStatus::Skipped {
                    reason: "safe mode: caps reverted to allocated capacities".into(),
                },
                report: None,
                tickets_before: before,
                tickets_after: after,
                actuation_attempts: attempts,
            });
            state.next_window = w + 1;
            return Ok(());
        }

        let truncated = truncate_box(self.box_trace, end)?;
        let mut reasons: Vec<String> = Vec::new();

        // Under an active adaptation episode the pipeline runs with the
        // adapted configuration: training shortened to the re-fit span
        // (which also re-clusters on the fresh history) and demand
        // headroom raised to the episode's level. A chronic ticket
        // offender additionally gets its headroom floored at the
        // configured offender level — the feasibility cap downstream
        // still bounds the realized headroom. Window geometry above
        // stays on the original `train_windows`, so the evaluated span
        // is identical either way.
        let adapt_active = config.adaptation.enabled && state.adaptation.active;
        let chronic = config.tickets.enabled && state.tickets.is_chronic();
        let adapted = (adapt_active || chronic).then(|| {
            let mut c = config.clone();
            if adapt_active {
                let refit = config.adaptation.refit_train_windows;
                if refit != 0 && refit < c.train_windows {
                    c.train_windows = refit;
                }
                c.demand_headroom = c.demand_headroom.max(state.adaptation.headroom);
            }
            if chronic {
                c.demand_headroom = c.demand_headroom.max(config.tickets.offender_headroom);
            }
            c
        });
        let run_config = adapted.as_ref().unwrap_or(config);
        if chronic {
            state.tickets.chronic_windows += 1;
        }

        // Fallback chain: full pipeline -> per-VM seasonal naive ->
        // carry previous caps forward.
        let report =
            match run_box_observed_with(&truncated, run_config, &self.obs, &mut self.solvers) {
                Ok(r) => Some(r),
                Err(e) if config.online.fallback => {
                    match fallback_box_report_observed_with(
                        &truncated,
                        run_config,
                        &self.obs,
                        &mut self.fallback_solvers,
                    ) {
                        Ok(r) => {
                            reasons.push(format!("pipeline failed ({e}); used per-VM fallback"));
                            state.summary.fallback_windows += 1;
                            Some(r)
                        }
                        Err(e2) => {
                            reasons.push(format!(
                            "pipeline failed ({e}); fallback failed ({e2}); carried caps forward"
                        ));
                            None
                        }
                    }
                }
                Err(e) => return Err(e),
            };

        let (tickets_before, tickets_after) = match &report {
            Some(r) => {
                if !r.imputation.is_empty() {
                    reasons.push(format!(
                        "imputed {} gap samples",
                        r.imputation.total_imputed()
                    ));
                    state.summary.imputed_windows += 1;
                    state.summary.imputed_samples += r.imputation.total_imputed();
                }
                for (ri, &resource) in self.resources.iter().enumerate() {
                    if let Some(res) = r.resizing.iter().find(|res| res.resource == resource) {
                        state.last_caps[ri] = Some(res.capacities.clone());
                    }
                }
                let before = r.resizing.iter().map(|res| res.atm.before).sum();
                let after = r.resizing.iter().map(|res| res.atm.after).sum();
                (before, after)
            }
            None => evaluate_caps(
                self.box_trace,
                &self.resources,
                eval_start,
                end,
                &state.last_caps,
                &self.policy,
            )?,
        };

        // Actuate the CPU caps in effect for this window.
        let mut attempts = 0;
        if self.actuate_cpu {
            let cpu_index = self
                .resources
                .iter()
                .position(|&r| r == Resource::Cpu)
                .expect("actuate_cpu implies a CPU entry");
            let caps = state.last_caps[cpu_index]
                .clone()
                .unwrap_or_else(|| self.original_cpu_caps.clone());
            match apply_with_retry(actuator, &caps, &config.online.retry) {
                Ok(outcome) => {
                    attempts = outcome.attempts;
                    if outcome.attempts > 1 {
                        reasons.push(format!("actuation needed {} attempts", outcome.attempts));
                        state.summary.actuation_retries += outcome.attempts - 1;
                    }
                    state.consecutive_actuation_failures = 0;
                }
                Err(e) => {
                    attempts = config.online.retry.max_attempts;
                    state.summary.actuation_retries += attempts.saturating_sub(1);
                    state.summary.actuation_failures += 1;
                    state.consecutive_actuation_failures += 1;
                    reasons.push(format!("actuation failed after {attempts} attempts: {e}"));
                    if config.online.safe_mode_after > 0
                        && state.consecutive_actuation_failures >= config.online.safe_mode_after
                    {
                        state.safe_mode = true;
                        state.summary.safe_mode_entries += 1;
                        reasons.push("entering safe mode".into());
                        // Best-effort immediate revert; the next window
                        // retries it either way.
                        let _ = apply_with_retry(
                            actuator,
                            &self.original_cpu_caps,
                            &config.online.retry,
                        );
                    }
                }
            }
        }

        let status = if report.is_none() {
            WindowStatus::Skipped {
                reason: reasons.join("; "),
            }
        } else if reasons.is_empty() {
            WindowStatus::Ok
        } else {
            WindowStatus::Degraded {
                reason: reasons.join("; "),
            }
        };
        match &status {
            WindowStatus::Ok => state.summary.windows_ok += 1,
            WindowStatus::Degraded { .. } => state.summary.windows_degraded += 1,
            WindowStatus::Skipped { .. } => state.summary.windows_skipped += 1,
        }
        if !status.is_ok() {
            state.summary.degraded_tickets_before += tickets_before;
            state.summary.degraded_tickets_after += tickets_after;
        }
        // Feed the completed window's residual into the drift detector;
        // decisions take effect from the next window on.
        if config.adaptation.enabled {
            if let Some(r) = &report {
                state
                    .adaptation
                    .observe(&config.adaptation, w, r.prediction.mape_all);
            }
        }
        // Feed this window's realized tickets (against the caps actually
        // in force) into the chronic-offender tracker; like adaptation,
        // its decisions take effect from the next window on.
        if config.tickets.enabled {
            let new_windows = crate::tickets::ticketed_windows(
                self.box_trace,
                &self.resources,
                eval_start,
                end,
                &state.last_caps,
                &self.policy,
            );
            state.tickets.observe(&config.tickets, w, &new_windows);
        }

        state.windows.push(WindowOutcome {
            window: w,
            status,
            report,
            tickets_before,
            tickets_after,
            actuation_attempts: attempts,
        });
        state.next_window = w + 1;
        Ok(())
    }

    /// Finalizes a completed state into the aggregated report.
    pub fn finish(&self, mut state: OnlineState) -> OnlineReport {
        state.summary.windows_total = state.windows.len();
        OnlineReport {
            windows: state.windows,
            degradation: state.summary,
            adaptation: state.adaptation.into_report(),
            tickets: state.tickets.into_report(),
        }
    }
}

/// Result of a checkpointed online run: the aggregated report plus what
/// recovery found on startup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineRun {
    /// The aggregated report — byte-identical to an uninterrupted run's.
    pub report: OnlineReport,
    /// What recovery found: the resume point and any corruption events.
    pub recovery: Recovery,
}

/// [`run_online_with_actuator`] with durability: state is recovered from
/// `store` on startup and persisted after every window, so the process
/// can be killed at any point and rerun to a byte-identical
/// [`OnlineReport`].
///
/// # Errors
///
/// As [`run_online_with_actuator`], plus [`AtmError::Checkpoint`] when
/// persistence fails and [`AtmError::DeadlineExceeded`] when a window
/// blows [`DurabilityConfig::window_deadline_ms`](crate::config::DurabilityConfig)
/// (checked *after* the window's state is durable, so no work is lost).
pub fn run_online_checkpointed(
    box_trace: &BoxTrace,
    config: &AtmConfig,
    actuator: &mut dyn CapacityActuator,
    store: &CheckpointStore,
) -> AtmResult<OnlineRun> {
    run_online_until(box_trace, config, actuator, store, None)
}

/// [`run_online_checkpointed`] with an observability handle. Window
/// metrics and events are recorded **after** the window's state is
/// durable, so a run resumed from a checkpoint records each window's
/// `online.*` progress exactly once — windows replayed from the store
/// are never recomputed, hence never re-counted.
///
/// # Errors
///
/// As [`run_online_checkpointed`].
pub fn run_online_checkpointed_observed(
    box_trace: &BoxTrace,
    config: &AtmConfig,
    actuator: &mut dyn CapacityActuator,
    store: &CheckpointStore,
    obs: &Obs,
) -> AtmResult<OnlineRun> {
    run_online_until_observed(box_trace, config, actuator, store, None, obs)
}

/// [`run_online_checkpointed`] with a scripted kill point for the chaos
/// harness: with `kill_after = Some(k)`, the run returns
/// [`AtmError::SimulatedCrash`] just before computing window `k` —
/// exactly `k` windows are durable at that point. Rerunning (with
/// `kill_after` past the end, or `None`) resumes from the checkpoint.
///
/// # Errors
///
/// As [`run_online_checkpointed`], plus the scripted
/// [`AtmError::SimulatedCrash`].
pub fn run_online_until(
    box_trace: &BoxTrace,
    config: &AtmConfig,
    actuator: &mut dyn CapacityActuator,
    store: &CheckpointStore,
    kill_after: Option<usize>,
) -> AtmResult<OnlineRun> {
    run_online_until_observed(
        box_trace,
        config,
        actuator,
        store,
        kill_after,
        &Obs::disabled(),
    )
}

/// [`run_online_until`] with an observability handle; see
/// [`run_online_checkpointed_observed`] for the exactly-once contract.
///
/// # Errors
///
/// As [`run_online_until`].
pub fn run_online_until_observed(
    box_trace: &BoxTrace,
    config: &AtmConfig,
    actuator: &mut dyn CapacityActuator,
    store: &CheckpointStore,
    kill_after: Option<usize>,
    obs: &Obs,
) -> AtmResult<OnlineRun> {
    let mut driver = OnlineDriver::new_observed(box_trace, config, obs)?;
    let recovery = store.recover(&box_trace.name, driver.fresh_state());
    let mut state = recovery.state.clone();
    let interval = config.durability.checkpoint_interval;
    let deadline_ms = config.durability.window_deadline_ms;
    while !driver.is_done(&state) {
        if kill_after == Some(state.next_window) {
            return Err(AtmError::SimulatedCrash {
                window: state.next_window,
            });
        }
        let started = std::time::Instant::now();
        let before = obs.is_enabled().then(|| {
            (
                state.summary.clone(),
                state.adaptation.events.len(),
                state.tickets.events.len(),
            )
        });
        driver.step(&mut state, actuator)?;
        store.record_window(&box_trace.name, &state, interval)?;
        // Progress metrics only after the window is durable: a crash
        // between step and persistence recomputes the window on restart,
        // and counting it here would then double-count it.
        if let Some((before, events_before, ticket_events_before)) = before {
            record_window_obs(
                obs,
                &box_trace.name,
                &before,
                events_before,
                ticket_events_before,
                &state,
            );
        }
        if deadline_ms > 0 {
            let elapsed_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
            if elapsed_ms > deadline_ms {
                return Err(AtmError::DeadlineExceeded {
                    window: state.next_window - 1,
                    elapsed_ms,
                    deadline_ms,
                });
            }
        }
    }
    Ok(OnlineRun {
        report: driver.finish(state),
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuate::test_support::ScriptedActuator;
    use crate::config::TemporalModel;
    use crate::pipeline::run_box;
    use atm_tracegen::{generate_box, FleetConfig};

    fn trace(days: usize) -> BoxTrace {
        generate_box(
            &FleetConfig {
                num_boxes: 1,
                days,
                gap_probability: 0.0,
                ..FleetConfig::default()
            },
            3,
        )
    }

    fn oracle_config() -> AtmConfig {
        AtmConfig {
            temporal: TemporalModel::Oracle,
            train_windows: 2 * 96,
            horizon: 96,
            ..AtmConfig::fast_for_tests()
        }
    }

    #[test]
    fn rolls_over_every_available_window() {
        // 5 days, 2-day training, 1-day horizon -> 3 windows.
        let report = run_online(&trace(5), &oracle_config()).unwrap();
        assert_eq!(report.windows.len(), 3);
        assert_eq!(report.degradation.windows_total, 3);
        assert_eq!(report.degradation.windows_ok, 3);
        for (i, w) in report.windows.iter().enumerate() {
            assert_eq!(w.window, i);
            assert!(w.status.is_ok(), "window {i}: {:?}", w.status);
            assert_eq!(w.actuation_attempts, 1);
            assert_eq!(w.report.as_ref().unwrap().resizing.len(), 2);
        }
    }

    #[test]
    fn online_reduces_tickets_cumulatively() {
        let report = run_online(&trace(5), &oracle_config()).unwrap();
        let before = report.total_before();
        let after = report.total_after();
        assert!(before > 0, "trace produced no tickets");
        assert!(after < before, "online ATM did not reduce tickets");
        let reduction = report.overall_reduction_pct().unwrap();
        assert!(reduction > 40.0, "reduction only {reduction:.0}%");
        assert!(report.mean_mape().is_finite());
        assert_eq!(report.degradation.degraded_tickets_after, 0);
    }

    #[test]
    fn too_short_trace_rejected() {
        let cfg = oracle_config();
        assert!(matches!(
            run_online(&trace(2), &cfg),
            Err(AtmError::TraceTooShort { .. })
        ));
    }

    #[test]
    fn each_window_trains_only_on_past() {
        // The first window's report must be identical to running the
        // pipeline on the truncated prefix — no future leakage.
        let b = trace(5);
        let cfg = oracle_config();
        let online = run_online(&b, &cfg).unwrap();
        let prefix = truncate_box(&b, cfg.train_windows + cfg.horizon).unwrap();
        let direct = run_box(&prefix, &cfg).unwrap();
        assert_eq!(online.windows[0].report.as_ref().unwrap(), &direct);
    }

    #[test]
    fn truncate_rejects_ragged_series() {
        let mut b = trace(5);
        b.vms[2].cpu_usage.truncate(100);
        match truncate_box(&b, 200) {
            Err(AtmError::RaggedTrace {
                vm,
                expected,
                actual,
            }) => {
                assert_eq!(vm, b.vms[2].name);
                assert_eq!(expected, 200);
                assert_eq!(actual, 100);
            }
            other => panic!("expected RaggedTrace, got {other:?}"),
        }
        assert!(truncate_box(&b, 50).is_ok());
    }

    #[test]
    fn online_run_is_deterministic() {
        let b = trace(5);
        let cfg = oracle_config();
        let a = run_online(&b, &cfg).unwrap();
        let c = run_online(&b, &cfg).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn gap_bursts_degrade_but_never_abort() {
        let mut b = trace(5);
        // Gap bursts in training and evaluation regions of several windows.
        for t in 150..170 {
            b.vms[0].cpu_usage[t] = f64::NAN;
        }
        for t in 300..310 {
            b.vms[1].ram_usage[t] = f64::NAN;
        }
        let report = run_online(&b, &oracle_config()).unwrap();
        assert_eq!(report.windows.len(), 3);
        assert_eq!(report.degradation.windows_skipped, 0);
        assert!(report.degradation.imputed_windows > 0);
        assert!(report.degradation.imputed_samples > 0);
        assert!(report
            .windows
            .iter()
            .any(|w| w.status.is_degraded() && w.report.is_some()));
    }

    #[test]
    fn carries_caps_forward_when_pipeline_and_fallback_fail() {
        let mut b = trace(5);
        // With imputation disabled, gaps inside window 1's training or
        // evaluation region defeat both the pipeline and the fallback.
        for t in 300..320 {
            b.vms[0].cpu_usage[t] = f64::NAN;
        }
        let mut cfg = oracle_config();
        cfg.imputation.enabled = false;
        let report = run_online(&b, &cfg).unwrap();
        assert_eq!(report.windows.len(), 3);
        assert!(report.windows[0].status.is_ok());
        // Window 1 sees the gaps in its evaluation day; window 2 sees
        // them in its training span. Both carry caps forward.
        for w in [1, 2] {
            assert!(
                report.windows[w].status.is_skipped(),
                "window {w}: {:?}",
                report.windows[w].status
            );
            assert!(report.windows[w].report.is_none());
        }
        assert_eq!(report.degradation.windows_skipped, 2);
        // Carried-forward windows still count tickets (NaN-safe).
        let skipped_before: usize = report.windows[1..].iter().map(|w| w.tickets_before).sum();
        assert!(skipped_before > 0, "skipped windows counted no tickets");
    }

    #[test]
    fn strict_mode_propagates_window_errors() {
        let mut b = trace(5);
        for t in 300..320 {
            b.vms[0].cpu_usage[t] = f64::NAN;
        }
        let mut cfg = oracle_config();
        cfg.imputation.enabled = false;
        cfg.online.fallback = false;
        assert_eq!(run_online(&b, &cfg), Err(AtmError::GappyTrace));
    }

    #[test]
    fn flaky_actuator_degrades_but_completes() {
        // Every apply fails once, then succeeds on retry.
        let mut actuator = ScriptedActuator::new(vec![true, false]);
        let report = run_online_with_actuator(&trace(5), &oracle_config(), &mut actuator).unwrap();
        assert_eq!(report.windows.len(), 3);
        for w in &report.windows {
            assert!(w.status.is_degraded(), "{:?}", w.status);
            assert_eq!(w.actuation_attempts, 2);
        }
        assert_eq!(report.degradation.actuation_retries, 3);
        assert_eq!(report.degradation.actuation_failures, 0);
        assert_eq!(report.degradation.safe_mode_entries, 0);
        // The model-side results are unaffected by actuation flakiness.
        let clean = run_online(&trace(5), &oracle_config()).unwrap();
        assert_eq!(report.total_after(), clean.total_after());
    }

    #[test]
    fn repeated_actuation_failures_enter_safe_mode() {
        let mut actuator = ScriptedActuator::new(vec![true]);
        let mut cfg = oracle_config();
        cfg.online.retry.max_attempts = 2;
        cfg.online.safe_mode_after = 2;
        let report = run_online_with_actuator(&trace(5), &cfg, &mut actuator).unwrap();
        assert_eq!(report.windows.len(), 3);
        assert!(report.windows[0].status.is_degraded());
        assert!(report.windows[1].status.is_degraded());
        assert_eq!(report.degradation.safe_mode_entries, 1);
        // Window 2 runs in safe mode: resizing skipped, caps at the
        // allocated capacities, so tickets after == before.
        let w2 = &report.windows[2];
        assert!(w2.status.is_skipped(), "{:?}", w2.status);
        assert_eq!(w2.tickets_after, w2.tickets_before);
        assert_eq!(report.degradation.actuation_failures, 3);
        assert_eq!(actuator.applied().len(), 0, "no apply ever succeeded");
    }

    fn temp_store(tag: &str) -> crate::checkpoint::CheckpointStore {
        let dir = std::env::temp_dir().join(format!(
            "atm-online-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        crate::checkpoint::CheckpointStore::open(dir).unwrap()
    }

    #[test]
    fn driver_matches_monolithic_loop() {
        let b = trace(5);
        let cfg = oracle_config();
        let baseline = run_online(&b, &cfg).unwrap();
        let mut driver = OnlineDriver::new(&b, &cfg).unwrap();
        assert_eq!(driver.windows_total(), 3);
        let mut state = driver.fresh_state();
        let mut actuator = NoopActuator::new();
        let mut steps = 0;
        while !driver.is_done(&state) {
            driver.step(&mut state, &mut actuator).unwrap();
            steps += 1;
            assert_eq!(state.next_window(), steps);
            assert_eq!(state.completed_windows(), steps);
        }
        assert_eq!(driver.finish(state), baseline);
    }

    #[test]
    fn checkpointed_run_matches_uninterrupted() {
        let b = trace(5);
        let cfg = oracle_config();
        let baseline = run_online(&b, &cfg).unwrap();
        let store = temp_store("clean");
        let run = run_online_checkpointed(&b, &cfg, &mut NoopActuator::new(), &store).unwrap();
        assert_eq!(run.report, baseline);
        assert_eq!(run.recovery.resumed_from, None);
        // A second full run resumes at the end and recomputes nothing.
        let rerun = run_online_checkpointed(&b, &cfg, &mut NoopActuator::new(), &store).unwrap();
        assert_eq!(rerun.report, baseline);
        assert_eq!(rerun.recovery.resumed_from, Some(3));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn kill_at_any_window_and_resume_is_equivalent() {
        let b = trace(5);
        let cfg = oracle_config();
        let baseline = run_online(&b, &cfg).unwrap();
        for k in 0..3 {
            let store = temp_store(&format!("kill{k}"));
            let err =
                run_online_until(&b, &cfg, &mut NoopActuator::new(), &store, Some(k)).unwrap_err();
            assert_eq!(err, AtmError::SimulatedCrash { window: k });
            let resumed =
                run_online_checkpointed(&b, &cfg, &mut NoopActuator::new(), &store).unwrap();
            assert_eq!(resumed.report, baseline, "kill after {k} windows");
            assert_eq!(
                resumed.recovery.resumed_from,
                if k == 0 { None } else { Some(k) }
            );
            let _ = std::fs::remove_dir_all(store.dir());
        }
    }

    #[test]
    fn fingerprint_separates_runs() {
        let b = trace(5);
        let cfg = oracle_config();
        // Checkpoints from one config are ignored by a different one.
        let store = temp_store("fp");
        let err =
            run_online_until(&b, &cfg, &mut NoopActuator::new(), &store, Some(2)).unwrap_err();
        assert_eq!(err, AtmError::SimulatedCrash { window: 2 });
        let mut other = cfg.clone();
        other.ticket_threshold_pct = 70.0;
        let run = run_online_checkpointed(&b, &other, &mut NoopActuator::new(), &store).unwrap();
        assert_eq!(run.recovery.resumed_from, None, "stale checkpoint reused");
        assert_eq!(run.report, run_online(&b, &other).unwrap());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn summary_merge_accumulates_every_field() {
        let mut a = DegradationSummary::default();
        let b = DegradationSummary {
            windows_total: 1,
            windows_ok: 2,
            windows_degraded: 3,
            windows_skipped: 4,
            fallback_windows: 5,
            imputed_windows: 6,
            imputed_samples: 7,
            actuation_retries: 8,
            actuation_failures: 9,
            safe_mode_entries: 10,
            degraded_tickets_before: 11,
            degraded_tickets_after: 12,
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.windows_total, 2);
        assert_eq!(a.degraded_tickets_after, 24);
        assert_eq!(a.safe_mode_entries, 20);
    }

    #[test]
    fn summary_merge_saturates_and_empty_merge_is_identity() {
        let mut a = DegradationSummary::default();
        a.merge(&DegradationSummary::default());
        assert_eq!(a, DegradationSummary::default());

        let mut near_max = DegradationSummary {
            windows_total: usize::MAX,
            imputed_samples: usize::MAX - 1,
            ..DegradationSummary::default()
        };
        near_max.merge(&DegradationSummary {
            windows_total: 5,
            imputed_samples: 7,
            degraded_tickets_after: 3,
            ..DegradationSummary::default()
        });
        assert_eq!(near_max.windows_total, usize::MAX);
        assert_eq!(near_max.imputed_samples, usize::MAX);
        assert_eq!(near_max.degraded_tickets_after, 3);
    }

    #[test]
    fn drift_detector_confirms_ratchets_clears_and_exhausts_budget() {
        let cfg = crate::config::AdaptationConfig::fast();
        // fast(): baseline 2, short 1, confirm 1, cooldown 1,
        // trigger 2.0, clear 1.2, floor 0.05, gain 2.0, max 2.5, refits 2.
        let mut st = AdaptationState::default();
        st.observe(&cfg, 0, 0.02);
        st.observe(&cfg, 1, 0.04);
        assert!((st.baseline.unwrap() - 0.03).abs() < 1e-12);
        // Floor (0.05) dominates the tiny baseline; 0.5 > 2 * 0.05.
        st.observe(&cfg, 2, 0.5);
        assert!(st.active);
        assert_eq!(st.refits_used, 1);
        assert!((st.headroom - 2.0).abs() < 1e-12);
        // Ratchet up (clamped to max_headroom), never down mid-episode.
        st.observe(&cfg, 3, 0.8);
        assert!((st.headroom - 2.5).abs() < 1e-12);
        st.observe(&cfg, 4, 0.3);
        assert!((st.headroom - 2.5).abs() < 1e-12, "ratchet slipped");
        // Settle under clear_ratio * floor (0.06): episode clears.
        st.observe(&cfg, 5, 0.04);
        assert!(!st.active);
        assert!((st.headroom - 1.0).abs() < 1e-12);
        assert_eq!(st.cooldown, 1);
        // Cooldown absorbs one elevated window; the next re-confirms.
        st.observe(&cfg, 6, 0.9);
        assert!(!st.active);
        st.observe(&cfg, 7, 0.9);
        assert!(st.active);
        assert_eq!(st.refits_used, 2);
        // Clear again, then exhaust the budget: exactly one
        // BudgetExhausted event no matter how long drift persists.
        st.observe(&cfg, 8, 0.01);
        st.observe(&cfg, 9, 0.9); // cooldown
        st.observe(&cfg, 10, 0.9);
        st.observe(&cfg, 11, 0.9);
        assert!(!st.active);
        assert!(st.budget_exhausted_reported);

        let kinds: Vec<(usize, DriftEventKind)> =
            st.events.iter().map(|e| (e.window, e.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                (2, DriftEventKind::Confirmed),
                (5, DriftEventKind::Cleared),
                (7, DriftEventKind::Confirmed),
                (8, DriftEventKind::Cleared),
                (10, DriftEventKind::BudgetExhausted),
            ]
        );
        // Junk residuals are ignored entirely.
        let snapshot = st.clone();
        st.observe(&cfg, 12, f64::NAN);
        st.observe(&cfg, 13, -1.0);
        assert_eq!(st, snapshot);
    }

    #[test]
    fn adaptation_state_serde_round_trips_byte_identically() {
        let cfg = crate::config::AdaptationConfig::fast();
        let mut st = AdaptationState::default();
        for (w, r) in [0.02, 0.04, 0.5, 0.8, 0.04, 0.9, 0.9].iter().enumerate() {
            st.observe(&cfg, w, *r);
        }
        let json = serde_json::to_string(&st).unwrap();
        let back: AdaptationState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, st);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
        // Old checkpoints (written before the adaptation field existed)
        // deserialize with the default state.
        let b = trace(5);
        let cfg = oracle_config();
        let driver = OnlineDriver::new(&b, &cfg).unwrap();
        let mut v = serde_json::to_value(driver.fresh_state()).unwrap();
        v.as_object_mut().unwrap().remove("adaptation");
        let legacy: OnlineState = serde_json::from_value(v).unwrap();
        assert_eq!(legacy.adaptation, AdaptationState::default());
    }

    #[test]
    fn adaptation_off_keeps_report_semantics_and_byte_layout() {
        let report = run_online(&trace(5), &oracle_config()).unwrap();
        assert!(report.adaptation.is_empty());
        assert_eq!(report.adaptation.refits_used, 0);
        let json = serde_json::to_string(&report).unwrap();
        assert!(
            !json.contains("\"adaptation\""),
            "empty adaptation must not change the serialized layout"
        );
    }

    #[test]
    fn adaptation_state_survives_checkpoint_resume() {
        let b = trace(5);
        let mut cfg = oracle_config();
        cfg.adaptation = crate::config::AdaptationConfig::fast();
        let baseline = run_online(&b, &cfg).unwrap();
        let store = temp_store("adapt-resume");
        let err =
            run_online_until(&b, &cfg, &mut NoopActuator::new(), &store, Some(2)).unwrap_err();
        assert_eq!(err, AtmError::SimulatedCrash { window: 2 });
        let resumed = run_online_checkpointed(&b, &cfg, &mut NoopActuator::new(), &store).unwrap();
        assert_eq!(resumed.report, baseline);
        assert_eq!(
            serde_json::to_string(&resumed.report).unwrap(),
            serde_json::to_string(&baseline).unwrap()
        );
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn tickets_off_keeps_report_semantics_and_byte_layout() {
        let report = run_online(&trace(5), &oracle_config()).unwrap();
        assert!(report.tickets.is_empty());
        let json = serde_json::to_string(&report).unwrap();
        assert!(
            !json.contains("\"tickets\":"),
            "empty ticket feedback must not change the serialized layout"
        );
    }

    #[test]
    fn ticket_scoring_is_deterministic_and_window_zero_is_unbiased() {
        let b = trace(5);
        let mut cfg = oracle_config();
        cfg.tickets.enabled = true;
        let fed = run_online(&b, &cfg).unwrap();
        assert_eq!(fed, run_online(&b, &cfg).unwrap());
        // Chronic decisions only ever take effect from the *next*
        // window, so window 0's model outputs match the no-feedback
        // run exactly.
        let plain = run_online(&b, &oracle_config()).unwrap();
        let fed0 = fed.windows[0].report.as_ref().unwrap();
        let plain0 = plain.windows[0].report.as_ref().unwrap();
        assert_eq!(fed0.prediction, plain0.prediction);
        assert_eq!(fed0.resizing, plain0.resizing);
        assert_eq!(fed.windows.len(), plain.windows.len());
        assert!(fed.tickets.windows_scored <= fed.windows.len());
        assert!(fed.tickets.windows_anomalous <= fed.tickets.windows_scored);
    }

    #[test]
    fn chronic_state_floors_headroom_without_touching_prediction() {
        let b = trace(5);
        let mut cfg = oracle_config();
        cfg.tickets.enabled = true;
        cfg.tickets.offender_headroom = 1.5;
        let plain = run_online(&b, &oracle_config()).unwrap();
        let mut driver = OnlineDriver::new(&b, &cfg).unwrap();
        let mut state = driver.fresh_state();
        state.tickets.chronic = true;
        driver.step(&mut state, &mut NoopActuator::new()).unwrap();
        // The biased window counts toward the chronic accounting and
        // runs with demand headroom floored at the offender level —
        // which only ever biases the sizing leg, never the prediction
        // (drift) signal or the signature search.
        assert_eq!(state.tickets.chronic_windows, 1);
        assert!(state.windows[0].status.is_ok());
        let biased = state.windows[0].report.as_ref().unwrap();
        let base = plain.windows[0].report.as_ref().unwrap();
        assert_eq!(biased.prediction, base.prediction);
        assert_eq!(biased.signature, base.signature);
    }

    #[test]
    fn ticket_state_survives_checkpoint_resume() {
        let b = trace(5);
        let mut cfg = oracle_config();
        cfg.tickets = crate::config::TicketsConfig::fast();
        let baseline = run_online(&b, &cfg).unwrap();
        let store = temp_store("tickets-resume");
        let err =
            run_online_until(&b, &cfg, &mut NoopActuator::new(), &store, Some(2)).unwrap_err();
        assert_eq!(err, AtmError::SimulatedCrash { window: 2 });
        let resumed = run_online_checkpointed(&b, &cfg, &mut NoopActuator::new(), &store).unwrap();
        assert_eq!(resumed.report, baseline);
        assert_eq!(
            serde_json::to_string(&resumed.report).unwrap(),
            serde_json::to_string(&baseline).unwrap()
        );
        let _ = std::fs::remove_dir_all(store.dir());
        // Checkpoints written before ticket feedback existed load with
        // the default tracker state.
        let driver = OnlineDriver::new(&b, &cfg).unwrap();
        let mut v = serde_json::to_value(driver.fresh_state()).unwrap();
        v.as_object_mut().unwrap().remove("tickets");
        let legacy: OnlineState = serde_json::from_value(v).unwrap();
        assert_eq!(legacy.tickets, crate::tickets::TicketState::default());
    }

    #[test]
    fn observed_run_counts_windows_and_disabled_path_is_unchanged() {
        let b = trace(5);
        let cfg = oracle_config();
        let plain = run_online(&b, &cfg).unwrap();
        let obs = Obs::enabled(false);
        let observed = run_online_observed(&b, &cfg, &obs).unwrap();
        // Summaries agree; observed window reports additionally embed
        // their per-run metrics.
        assert_eq!(observed.degradation, plain.degradation);
        assert!(observed
            .windows
            .iter()
            .all(|w| w.report.as_ref().is_none_or(|r| r.metrics.is_some())));

        let snap = obs.metrics_snapshot();
        let n = plain.windows.len() as u64;
        assert_eq!(snap.counter("online.windows_total"), Some(n));
        assert_eq!(
            snap.counter("online.windows_ok"),
            Some(plain.degradation.windows_ok as u64)
        );
        assert_eq!(snap.counter("pipeline.runs"), Some(n));
        // One `window` event per window, in order, under the box scope.
        let windows: Vec<_> = obs
            .events()
            .into_iter()
            .filter(|e| e.scope == b.name && e.kind == "window")
            .collect();
        assert_eq!(windows.len(), plain.windows.len());
        for (i, e) in windows.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn observed_flaky_run_counts_retries_and_safe_mode() {
        let mut actuator = ScriptedActuator::new(vec![true]);
        let mut cfg = oracle_config();
        cfg.online.retry.max_attempts = 2;
        cfg.online.safe_mode_after = 2;
        let obs = Obs::enabled(false);
        let report =
            run_online_with_actuator_observed(&trace(5), &cfg, &mut actuator, &obs).unwrap();
        let snap = obs.metrics_snapshot();
        assert_eq!(
            snap.counter("online.actuation_failures"),
            Some(report.degradation.actuation_failures as u64)
        );
        assert_eq!(
            snap.counter("online.actuation_retries"),
            Some(report.degradation.actuation_retries as u64)
        );
        assert_eq!(snap.counter("online.safe_mode_entries"), Some(1));
        assert!(obs.events().iter().any(|e| e.kind == "safe_mode_enter"));
    }

    #[test]
    fn safe_mode_exits_when_actuation_recovers() {
        // Fails the first 8 applies, then recovers. With 2 attempts per
        // window plus the safe-mode entry revert, window 2's revert
        // succeeds and the loop leaves safe mode.
        let mut pattern = vec![true; 8];
        pattern.push(false);
        let mut actuator = ScriptedActuator::new(pattern);
        let mut cfg = AtmConfig {
            temporal: TemporalModel::Oracle,
            train_windows: 96,
            horizon: 96,
            ..AtmConfig::fast_for_tests()
        };
        cfg.online.retry.max_attempts = 2;
        cfg.online.safe_mode_after = 2;
        let report = run_online_with_actuator(&trace(6), &cfg, &mut actuator).unwrap();
        // 6 days, 1-day train, 1-day horizon -> 5 windows.
        assert_eq!(report.windows.len(), 5);
        assert_eq!(report.degradation.safe_mode_entries, 1);
        assert!(report.windows.iter().any(|w| w.status.is_skipped()));
        let last = report.windows.last().unwrap();
        assert!(
            last.status.is_ok() || last.status.is_degraded(),
            "loop never recovered: {:?}",
            last.status
        );
        assert!(!actuator.applied().is_empty(), "recovery never applied");
    }
}
