//! ATM configuration: clustering method, resource scope, temporal model,
//! and resizing parameters.

use atm_clustering::cbc::DEFAULT_RHO_THRESHOLD;
use atm_clustering::hierarchical::Linkage;
use atm_forecast::holt_winters::HoltWintersConfig;
use atm_forecast::mlp::MlpConfig;
use atm_stats::stepwise::StepwiseConfig;
use serde::{Deserialize, Serialize};

use crate::actuate::RetryPolicy;
use crate::impute::ImputationConfig;

/// Robustness knobs for the online rolling loop ([`crate::online`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// When the full signature pipeline fails on a window, fall back to
    /// per-VM seasonal-naive forecasts (and, failing that, carry the
    /// previous window's caps forward) instead of aborting the run.
    pub fallback: bool,
    /// Retry policy for capacity actuation.
    pub retry: RetryPolicy,
    /// After this many *consecutive* windows whose actuation failed even
    /// with retries, enter safe mode: revert every cap to the VM's upper
    /// bound (its full entitlement) and stop resizing until an apply
    /// succeeds again. Zero disables safe mode.
    pub safe_mode_after: usize,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            fallback: true,
            retry: RetryPolicy::default(),
            safe_mode_after: 3,
        }
    }
}

impl OnlineConfig {
    /// Validates the online-loop settings.
    ///
    /// # Errors
    ///
    /// Returns [`crate::AtmError::InvalidConfig`] on out-of-range values.
    pub fn validate(&self) -> crate::AtmResult<()> {
        self.retry.validate()
    }
}

/// Durability and supervision knobs for the crash-safe online loop
/// ([`crate::checkpoint`] and [`crate::supervisor`]).
///
/// Every field is serde-defaulted, so configurations serialized before
/// this struct existed keep loading (durability off, supervision at its
/// defaults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DurabilityConfig {
    /// Directory for per-box snapshots and journals. Empty (the default)
    /// disables checkpointing entirely: `run_online_checkpointed`
    /// requires a store, and the supervisor runs without durability.
    #[serde(default)]
    pub checkpoint_dir: String,
    /// Cut a full snapshot every this many windows; in between, windows
    /// are journaled. `1` (or `0`) snapshots every window.
    #[serde(default = "default_checkpoint_interval")]
    pub checkpoint_interval: usize,
    /// Per-window wall-clock deadline in milliseconds, checked
    /// cooperatively after each window (state is persisted first, so a
    /// blown deadline loses no work). `0` (the default) disables it.
    #[serde(default)]
    pub window_deadline_ms: u64,
    /// Circuit breaker: consecutive failed run attempts before a box's
    /// breaker opens. `0` disables the breaker (every failure retries
    /// immediately up to `max_restarts`).
    #[serde(default = "default_breaker_threshold")]
    pub breaker_threshold: usize,
    /// Base backoff for an open breaker, in milliseconds. Actual waits
    /// use decorrelated jitter from the supervisor's seeded RNG.
    #[serde(default = "default_breaker_base_ms")]
    pub breaker_base_ms: u64,
    /// Upper bound on a single backoff wait, in milliseconds.
    #[serde(default = "default_breaker_cap_ms")]
    pub breaker_cap_ms: u64,
    /// Maximum restart attempts per box (after the first) before the
    /// supervisor quarantines it.
    #[serde(default = "default_max_restarts")]
    pub max_restarts: usize,
    /// Seed for the supervisor's backoff jitter RNG; per-box streams are
    /// derived deterministically from it.
    #[serde(default = "default_supervisor_seed")]
    pub supervisor_seed: u64,
}

fn default_checkpoint_interval() -> usize {
    8
}

fn default_breaker_threshold() -> usize {
    3
}

fn default_breaker_base_ms() -> u64 {
    10
}

fn default_breaker_cap_ms() -> u64 {
    1_000
}

fn default_max_restarts() -> usize {
    2
}

fn default_supervisor_seed() -> u64 {
    0xA7_0117
}

fn default_demand_headroom() -> f64 {
    1.0
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            checkpoint_dir: String::new(),
            checkpoint_interval: default_checkpoint_interval(),
            window_deadline_ms: 0,
            breaker_threshold: default_breaker_threshold(),
            breaker_base_ms: default_breaker_base_ms(),
            breaker_cap_ms: default_breaker_cap_ms(),
            max_restarts: default_max_restarts(),
            supervisor_seed: default_supervisor_seed(),
        }
    }
}

impl DurabilityConfig {
    /// Whether a checkpoint directory is configured.
    pub fn checkpointing_enabled(&self) -> bool {
        !self.checkpoint_dir.is_empty()
    }

    /// Validates the durability settings.
    ///
    /// # Errors
    ///
    /// Returns [`crate::AtmError::InvalidConfig`] on out-of-range values.
    pub fn validate(&self) -> crate::AtmResult<()> {
        if self.breaker_cap_ms < self.breaker_base_ms {
            return Err(crate::AtmError::InvalidConfig(
                "breaker_cap_ms must be >= breaker_base_ms",
            ));
        }
        Ok(())
    }
}

/// Compute knobs for the per-box clustering stage: intra-box parallelism
/// and DTW kernel selection.
///
/// Every setting here is *result-preserving*: the optimized kernel is
/// bit-identical to the naive DP, and the parallel distance-matrix /
/// silhouette sweeps place results deterministically, so pipeline reports
/// serialize byte-identically for any `threads` value and either kernel.
/// The only knob that changes distances is [`dtw_band`](Self::dtw_band)
/// (a banded DTW is a different — but still deterministic — metric).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComputeConfig {
    /// Worker threads for intra-box clustering (distance matrix build and
    /// silhouette model selection). `0` means one thread per available
    /// CPU; `1` (the default) is fully sequential.
    #[serde(default = "default_compute_threads")]
    pub threads: usize,
    /// Sakoe–Chiba band half-width for DTW, in samples. `0` (the default)
    /// runs the exact full DP; a positive band constrains warping and
    /// speeds up long series at the cost of exactness.
    #[serde(default)]
    pub dtw_band: usize,
    /// Use the workspace-reusing, lower-bounded DTW kernel
    /// ([`atm_clustering::kernel::DtwKernel`]) instead of the naive
    /// allocate-per-call DP. Bit-identical results, so enabled by
    /// default; disable only for A/B benchmarking.
    #[serde(default = "default_true")]
    pub optimized_kernel: bool,
    /// Memory budget in MiB for the streaming fleet runner
    /// ([`crate::fleet::run_fleet_streamed`]): caps how many box working
    /// sets may be resident at once by clamping worker parallelism. `0`
    /// (the default) means unlimited. Result-preserving like every other
    /// knob here — the budget changes scheduling, never report bytes.
    #[serde(default)]
    pub memory_budget_mb: usize,
}

fn default_compute_threads() -> usize {
    1
}

fn default_true() -> bool {
    true
}

impl Default for ComputeConfig {
    fn default() -> Self {
        ComputeConfig {
            threads: 1,
            dtw_band: 0,
            optimized_kernel: true,
            memory_budget_mb: 0,
        }
    }
}

impl ComputeConfig {
    /// Resolves [`threads`](Self::threads) to a concrete worker count:
    /// `0` becomes the number of available CPUs (at least 1).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// Returns a copy with [`threads`](Self::threads) overridden by the
    /// `ATM_THREADS` environment variable when it is set to a valid
    /// `usize` (the CI thread-count matrix hook). Unset or unparsable
    /// values leave the configured count unchanged.
    pub fn with_env_threads(mut self) -> Self {
        if let Some(t) = std::env::var("ATM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            self.threads = t;
        }
        self
    }
}

/// Observability knobs: whether the pipeline, online loop, and supervisor
/// record spans/metrics/events (see [`atm_obs`] and [`crate::metrics`]).
///
/// Disabled by default — the instrumented code paths then go through
/// [`atm_obs::Obs::disabled`], whose every call is a branch on a `None`.
/// Every field is serde-defaulted, so configurations serialized before
/// this struct existed keep loading (observability off).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservabilityConfig {
    /// Record counters, gauges, histograms, and events.
    #[serde(default)]
    pub enabled: bool,
    /// Also record wall-clock span timings (monotonic clock). Timings are
    /// excluded from deterministic snapshots either way; leave this off
    /// when clock reads must be avoided entirely.
    #[serde(default)]
    pub record_timings: bool,
    /// Path for the JSONL event log written when a fleet run finishes
    /// (sorted, atomic write). Empty (the default) keeps events in memory
    /// only.
    #[serde(default)]
    pub event_log: String,
}

impl Default for ObservabilityConfig {
    fn default() -> Self {
        ObservabilityConfig {
            enabled: false,
            record_timings: false,
            event_log: String::new(),
        }
    }
}

impl ObservabilityConfig {
    /// An enabled configuration (without timings — fully deterministic).
    pub fn enabled() -> Self {
        ObservabilityConfig {
            enabled: true,
            ..ObservabilityConfig::default()
        }
    }

    /// Build the matching [`atm_obs::Obs`] handle.
    pub fn build_obs(&self) -> atm_obs::Obs {
        if self.enabled {
            atm_obs::Obs::enabled(self.record_timings)
        } else {
            atm_obs::Obs::disabled()
        }
    }
}

/// Drift-aware adaptation knobs for the online rolling loop: a residual
/// (MAPE) drift detector with hysteresis, plus a budget-capped controller
/// that re-fits on recent history and hedges the resizer while drift is
/// active (see `DESIGN.md` §13).
///
/// Disabled by default, and every field is serde-defaulted, so
/// configurations serialized before this struct existed keep loading with
/// the online loop byte-identical to its non-adaptive behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptationConfig {
    /// Master switch. Off (the default) leaves the online loop exactly as
    /// it was: no detector state advances, no events, no re-fits.
    #[serde(default)]
    pub enabled: bool,
    /// Windows of residuals that freeze the drift-free baseline level; no
    /// detection happens during this warmup.
    #[serde(default = "default_baseline_windows")]
    pub baseline_windows: usize,
    /// Windows in the rolling "recent residual" median the detector
    /// compares against the baseline.
    #[serde(default = "default_short_windows")]
    pub short_windows: usize,
    /// Drift trigger: the recent median must exceed `trigger_ratio` times
    /// the baseline (floored at [`residual_floor`](Self::residual_floor)).
    /// Must be greater than [`clear_ratio`](Self::clear_ratio).
    #[serde(default = "default_trigger_ratio")]
    pub trigger_ratio: f64,
    /// Hysteresis: active drift clears only once the recent median falls
    /// back below `clear_ratio` times the baseline. Must be >= 1.
    #[serde(default = "default_clear_ratio")]
    pub clear_ratio: f64,
    /// Absolute MAPE floor for the baseline, so near-perfect models (e.g.
    /// oracle runs) do not hair-trigger on noise.
    #[serde(default = "default_residual_floor")]
    pub residual_floor: f64,
    /// Consecutive elevated windows required to confirm drift.
    #[serde(default = "default_confirm_windows")]
    pub confirm_windows: usize,
    /// Windows after a drift episode clears during which no new episode
    /// may confirm (lets the re-trained model prove itself).
    #[serde(default = "default_cooldown_windows")]
    pub cooldown_windows: usize,
    /// Re-fit budget: confirmed drift episodes that may trigger
    /// adaptation per run. Once spent, further confirmations degrade to a
    /// `budget_exhausted` event — detection keeps running, adaptation
    /// stops, the loop never aborts.
    #[serde(default = "default_max_refits")]
    pub max_refits: usize,
    /// Training-span override while drift is active: the pipeline
    /// re-fits (clustering, spatial regression, forecasts) on only the
    /// most recent `refit_train_windows` windows, shedding stale
    /// pre-drift history. `0` keeps the full span. Nonzero values must be
    /// >= 8 (the pipeline's minimum) and below `train_windows` to have
    /// any effect.
    #[serde(default = "default_refit_train_windows")]
    pub refit_train_windows: usize,
    /// Headroom hedge gain: while drift is active the resizer sees
    /// predicted demands inflated by `1 + headroom_gain * recent_mape`
    /// (capped at [`max_headroom`](Self::max_headroom)) — the "hedge
    /// against prediction error" move from the online-allocation
    /// literature. `0` disables the hedge, leaving re-fit only.
    #[serde(default = "default_headroom_gain")]
    pub headroom_gain: f64,
    /// Upper bound on the adaptive headroom multiplier; must be >= 1.
    #[serde(default = "default_max_headroom")]
    pub max_headroom: f64,
}

fn default_baseline_windows() -> usize {
    3
}

fn default_short_windows() -> usize {
    2
}

fn default_trigger_ratio() -> f64 {
    2.0
}

fn default_clear_ratio() -> f64 {
    1.2
}

fn default_residual_floor() -> f64 {
    0.05
}

fn default_confirm_windows() -> usize {
    2
}

fn default_cooldown_windows() -> usize {
    2
}

fn default_max_refits() -> usize {
    2
}

fn default_refit_train_windows() -> usize {
    96
}

fn default_headroom_gain() -> f64 {
    2.0
}

fn default_max_headroom() -> f64 {
    2.5
}

impl Default for AdaptationConfig {
    fn default() -> Self {
        AdaptationConfig {
            enabled: false,
            baseline_windows: default_baseline_windows(),
            short_windows: default_short_windows(),
            trigger_ratio: default_trigger_ratio(),
            clear_ratio: default_clear_ratio(),
            residual_floor: default_residual_floor(),
            confirm_windows: default_confirm_windows(),
            cooldown_windows: default_cooldown_windows(),
            max_refits: default_max_refits(),
            refit_train_windows: default_refit_train_windows(),
            headroom_gain: default_headroom_gain(),
            max_headroom: default_max_headroom(),
        }
    }
}

impl AdaptationConfig {
    /// An enabled configuration tuned for short traces (tests, demos):
    /// two clean windows freeze the baseline, one elevated window
    /// confirms drift.
    pub fn fast() -> Self {
        AdaptationConfig {
            enabled: true,
            baseline_windows: 2,
            short_windows: 1,
            confirm_windows: 1,
            cooldown_windows: 1,
            ..AdaptationConfig::default()
        }
    }

    /// Validates the adaptation settings.
    ///
    /// # Errors
    ///
    /// Returns [`crate::AtmError::InvalidConfig`] on out-of-range values.
    pub fn validate(&self) -> crate::AtmResult<()> {
        if self.baseline_windows == 0 || self.short_windows == 0 || self.confirm_windows == 0 {
            return Err(crate::AtmError::InvalidConfig(
                "adaptation window counts must be positive",
            ));
        }
        if !(self.clear_ratio >= 1.0 && self.clear_ratio.is_finite()) {
            return Err(crate::AtmError::InvalidConfig(
                "adaptation clear_ratio must be >= 1",
            ));
        }
        if !(self.trigger_ratio > self.clear_ratio && self.trigger_ratio.is_finite()) {
            return Err(crate::AtmError::InvalidConfig(
                "adaptation trigger_ratio must exceed clear_ratio",
            ));
        }
        if !(self.residual_floor >= 0.0 && self.residual_floor.is_finite()) {
            return Err(crate::AtmError::InvalidConfig(
                "adaptation residual_floor must be >= 0",
            ));
        }
        if self.refit_train_windows != 0 && self.refit_train_windows < 8 {
            return Err(crate::AtmError::InvalidConfig(
                "adaptation refit_train_windows must be 0 or >= 8",
            ));
        }
        if !(self.headroom_gain >= 0.0 && self.headroom_gain.is_finite()) {
            return Err(crate::AtmError::InvalidConfig(
                "adaptation headroom_gain must be >= 0",
            ));
        }
        if !(self.max_headroom >= 1.0 && self.max_headroom.is_finite()) {
            return Err(crate::AtmError::InvalidConfig(
                "adaptation max_headroom must be >= 1",
            ));
        }
        Ok(())
    }
}

/// Ticket-intelligence knobs: storm collapse, inter-ticket-delay anomaly
/// scoring, and the chronic-offender feedback that biases the resizer
/// toward boxes that keep ticketing anomalously fast (see `DESIGN.md`
/// §17).
///
/// Disabled by default, and every field is serde-defaulted, so
/// configurations serialized before this struct existed keep loading
/// with pipeline and online reports byte-identical to their pre-tickets
/// form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TicketsConfig {
    /// Master switch. Off (the default) skips scoring entirely: no
    /// `tickets` report sections, no events, no resizer feedback.
    #[serde(default)]
    pub enabled: bool,
    /// Jaccard similarity of two VMs' ticket-window sets at or above
    /// which their tickets are treated as one correlated incident
    /// ([`atm_ticketing::storm`] collapse). Must be in `[0, 1]`.
    #[serde(default = "default_storm_jaccard")]
    pub storm_jaccard: f64,
    /// Quiet ticketing windows tolerated inside one storm before it
    /// splits in two.
    #[serde(default = "default_storm_max_gap")]
    pub storm_max_gap: usize,
    /// Robust Z-score at or above which a box's recent inter-ticket
    /// delays count as anomalous (the Iglewicz–Hoaglin 3.5 cutoff by
    /// default). Must be positive and finite.
    #[serde(default = "default_anomaly_z")]
    pub anomaly_z_threshold: f64,
    /// Minimum inter-ticket delays before anomaly scoring; below this a
    /// box has no usable history and is never flagged.
    #[serde(default = "default_min_delays")]
    pub min_delays: usize,
    /// How many of the most recent delays form the "now" that is scored
    /// against the box's own history. Must be >= 1.
    #[serde(default = "default_recent_delays")]
    pub recent_delays: usize,
    /// Consecutive anomalous evaluations before a box is declared a
    /// chronic offender (and an equal calm streak clears it again).
    /// Must be >= 1.
    #[serde(default = "default_chronic_after")]
    pub chronic_after: usize,
    /// Demand-headroom floor applied while a box is a chronic offender.
    /// Composed with (never replacing) the configured and adaptive
    /// headroom via `max`, and bounded downstream by the resizer's
    /// feasibility cap, so the bias can never make the sizing problem
    /// infeasible. Must be >= 1.
    #[serde(default = "default_offender_headroom")]
    pub offender_headroom: f64,
}

fn default_storm_jaccard() -> f64 {
    0.5
}

fn default_storm_max_gap() -> usize {
    1
}

fn default_anomaly_z() -> f64 {
    3.5
}

fn default_min_delays() -> usize {
    6
}

fn default_recent_delays() -> usize {
    3
}

fn default_chronic_after() -> usize {
    2
}

fn default_offender_headroom() -> f64 {
    1.25
}

impl Default for TicketsConfig {
    fn default() -> Self {
        TicketsConfig {
            enabled: false,
            storm_jaccard: default_storm_jaccard(),
            storm_max_gap: default_storm_max_gap(),
            anomaly_z_threshold: default_anomaly_z(),
            min_delays: default_min_delays(),
            recent_delays: default_recent_delays(),
            chronic_after: default_chronic_after(),
            offender_headroom: default_offender_headroom(),
        }
    }
}

impl TicketsConfig {
    /// An enabled configuration tuned for short traces (tests, demos):
    /// scoring starts after three delays and one anomalous evaluation is
    /// enough to declare a chronic offender.
    pub fn fast() -> Self {
        TicketsConfig {
            enabled: true,
            min_delays: 3,
            recent_delays: 2,
            chronic_after: 1,
            ..TicketsConfig::default()
        }
    }

    /// The storm-collapse settings as the ticketing crate consumes them.
    pub fn storm_config(&self) -> atm_ticketing::StormConfig {
        atm_ticketing::StormConfig {
            jaccard_threshold: self.storm_jaccard,
            max_gap_windows: self.storm_max_gap,
        }
    }

    /// The anomaly-scoring settings as the ticketing crate consumes them.
    pub fn anomaly_config(&self) -> atm_ticketing::AnomalyConfig {
        atm_ticketing::AnomalyConfig {
            z_threshold: self.anomaly_z_threshold,
            min_delays: self.min_delays,
            recent_delays: self.recent_delays,
        }
    }

    /// Validates the ticket-intelligence settings.
    ///
    /// # Errors
    ///
    /// Returns [`crate::AtmError::InvalidConfig`] on out-of-range values.
    pub fn validate(&self) -> crate::AtmResult<()> {
        if self.storm_config().validate().is_err() {
            return Err(crate::AtmError::InvalidConfig(
                "tickets storm_jaccard must be in [0, 1]",
            ));
        }
        if self.anomaly_config().validate().is_err() {
            return Err(crate::AtmError::InvalidConfig(
                "tickets anomaly_z_threshold must be positive and finite, recent_delays >= 1",
            ));
        }
        if self.chronic_after == 0 {
            return Err(crate::AtmError::InvalidConfig(
                "tickets chronic_after must be >= 1",
            ));
        }
        if !(self.offender_headroom >= 1.0 && self.offender_headroom.is_finite()) {
            return Err(crate::AtmError::InvalidConfig(
                "tickets offender_headroom must be >= 1",
            ));
        }
        Ok(())
    }
}

/// Step-1 clustering method for the signature search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ClusterMethod {
    /// Dynamic time warping dissimilarity + hierarchical clustering with
    /// silhouette model selection (paper Section III-A).
    Dtw {
        /// Linkage rule for the agglomeration.
        linkage: Linkage,
    },
    /// The paper's correlation-based clustering.
    Cbc {
        /// Correlation threshold ρ_Th (paper default 0.7).
        rho_threshold: f64,
    },
    /// Feature-based clustering (moments/autocorrelation features) — the
    /// related-work alternative, provided for ablations.
    Features {
        /// Linkage rule for the agglomeration.
        linkage: Linkage,
    },
}

impl ClusterMethod {
    /// DTW with average linkage — the reproduction's DTW default.
    pub fn dtw() -> Self {
        ClusterMethod::Dtw {
            linkage: Linkage::Average,
        }
    }

    /// CBC with the paper's ρ_Th = 0.7.
    pub fn cbc() -> Self {
        ClusterMethod::Cbc {
            rho_threshold: DEFAULT_RHO_THRESHOLD,
        }
    }

    /// Feature-based clustering with average linkage.
    pub fn features() -> Self {
        ClusterMethod::Features {
            linkage: Linkage::Average,
        }
    }

    /// Short name for reports ("dtw" / "cbc").
    pub fn name(&self) -> &'static str {
        match self {
            ClusterMethod::Dtw { .. } => "dtw",
            ClusterMethod::Cbc { .. } => "cbc",
            ClusterMethod::Features { .. } => "features",
        }
    }
}

/// Which resources participate in one spatial model (paper Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceScope {
    /// CPU and RAM series mixed in a single model (the paper's winner).
    Inter,
    /// CPU series only.
    IntraCpu,
    /// RAM series only.
    IntraRam,
}

/// Temporal model used for signature series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TemporalModel {
    /// From-scratch MLP (the paper's neural-network choice).
    Mlp(MlpConfig),
    /// Autoregressive AR(p).
    Ar {
        /// Model order.
        order: usize,
    },
    /// Additive Holt–Winters triple exponential smoothing.
    HoltWinters(HoltWintersConfig),
    /// Unweighted-validation ensemble of member models (members that fail
    /// to fit a given series are dropped for that series).
    Ensemble {
        /// The member model configurations.
        members: Vec<TemporalModel>,
    },
    /// Seasonal-naive with the given period.
    SeasonalNaive {
        /// Seasonal period in windows.
        period: usize,
    },
    /// Oracle: use the *actual* future series (isolates the spatial models
    /// and resizing from temporal-prediction error — how the paper
    /// evaluates Sections III-C and IV-B before the full ATM of Section V).
    Oracle,
}

/// Full ATM configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtmConfig {
    /// Step-1 clustering method.
    pub cluster_method: ClusterMethod,
    /// Resource scope of the spatial model.
    pub scope: ResourceScope,
    /// Step-2 stepwise-regression settings (VIF > 4 etc.).
    pub stepwise: StepwiseConfig,
    /// Whether to z-normalize series before DTW (recommended: cluster by
    /// shape, not level).
    pub znorm_for_dtw: bool,
    /// Temporal model for signature series.
    pub temporal: TemporalModel,
    /// Ticket threshold percent (paper evaluation: 60).
    pub ticket_threshold_pct: f64,
    /// Resizing discretization factor ε for CPU demands, in GHz. The
    /// paper uses ε = 5 in its trace's capacity units; our synthetic VMs
    /// allocate 1–8 GHz, so the equivalent granularity is sub-GHz.
    pub epsilon_cpu: f64,
    /// Resizing discretization factor ε for RAM demands, in GB.
    pub epsilon_ram: f64,
    /// L2 regularization strength for the dependent-series regressions
    /// (0 = the paper's plain OLS; positive values harden the spatial
    /// models against collinear signature sets).
    pub spatial_ridge_lambda: f64,
    /// Training window length in ticketing windows (paper: 5 days = 480).
    pub train_windows: usize,
    /// Prediction/resizing horizon in windows (paper: 1 day = 96).
    pub horizon: usize,
    /// Gap-imputation front end. Enabled by default; disable to restore
    /// the strict behaviour where any gap in the evaluation window is
    /// rejected with [`crate::AtmError::GappyTrace`].
    pub imputation: ImputationConfig,
    /// Robustness settings for the online rolling loop.
    pub online: OnlineConfig,
    /// Multiplier applied to predicted demands *for resizing only* (the
    /// reported prediction accuracy always reflects the raw model).
    /// `1.0` (the default) is a no-op; the adaptation controller raises
    /// the effective value while drift is active. Defaulted when absent
    /// from serialized configs, so older configs keep loading.
    #[serde(default = "default_demand_headroom")]
    pub demand_headroom: f64,
    /// Drift detection and adaptation settings for the online loop.
    /// Defaulted (disabled) when absent from serialized configs, so older
    /// configs keep loading.
    #[serde(default)]
    pub adaptation: AdaptationConfig,
    /// Ticket intelligence: storm collapse, anomaly scoring, and
    /// chronic-offender feedback. Defaulted (disabled) when absent from
    /// serialized configs, so older configs keep loading.
    #[serde(default)]
    pub tickets: TicketsConfig,
    /// Intra-box parallelism and DTW kernel selection. Defaulted when
    /// absent from serialized configs, so older configs keep loading.
    #[serde(default)]
    pub compute: ComputeConfig,
    /// Checkpointing and fleet-supervision settings. Defaulted when
    /// absent from serialized configs, so older configs keep loading.
    #[serde(default)]
    pub durability: DurabilityConfig,
    /// Observability settings (metrics, spans, event log). Defaulted when
    /// absent from serialized configs, so older configs keep loading.
    #[serde(default)]
    pub observability: ObservabilityConfig,
}

impl Default for AtmConfig {
    fn default() -> Self {
        AtmConfig {
            cluster_method: ClusterMethod::dtw(),
            scope: ResourceScope::Inter,
            stepwise: StepwiseConfig::default(),
            znorm_for_dtw: true,
            temporal: TemporalModel::Mlp(MlpConfig::default()),
            ticket_threshold_pct: 60.0,
            epsilon_cpu: 0.25,
            epsilon_ram: 1.0,
            spatial_ridge_lambda: 0.0,
            train_windows: 5 * 96,
            horizon: 96,
            imputation: ImputationConfig::default(),
            online: OnlineConfig::default(),
            demand_headroom: default_demand_headroom(),
            adaptation: AdaptationConfig::default(),
            tickets: TicketsConfig::default(),
            compute: ComputeConfig::default(),
            durability: DurabilityConfig::default(),
            observability: ObservabilityConfig::default(),
        }
    }
}

impl AtmConfig {
    /// A configuration sized for unit tests: short windows, a tiny MLP.
    pub fn fast_for_tests() -> Self {
        AtmConfig {
            temporal: TemporalModel::Mlp(MlpConfig {
                lags: 4,
                seasonal_period: 96,
                hidden: vec![6],
                epochs: 30,
                batch_size: 32,
                learning_rate: 0.02,
                momentum: 0.9,
                validation_fraction: 0.2,
                patience: 8,
                seed: 11,
            }),
            train_windows: 2 * 96,
            horizon: 96,
            ..AtmConfig::default()
        }
    }

    /// Builder-style override of the clustering method.
    pub fn with_cluster_method(mut self, method: ClusterMethod) -> Self {
        self.cluster_method = method;
        self
    }

    /// Builder-style override of the resource scope.
    pub fn with_scope(mut self, scope: ResourceScope) -> Self {
        self.scope = scope;
        self
    }

    /// Builder-style override of the temporal model.
    pub fn with_temporal(mut self, temporal: TemporalModel) -> Self {
        self.temporal = temporal;
        self
    }

    /// Builder-style override of the compute settings.
    pub fn with_compute(mut self, compute: ComputeConfig) -> Self {
        self.compute = compute;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::AtmError::InvalidConfig`] on out-of-range values.
    pub fn validate(&self) -> crate::AtmResult<()> {
        if self.train_windows < 8 {
            return Err(crate::AtmError::InvalidConfig("train_windows too small"));
        }
        if self.horizon == 0 {
            return Err(crate::AtmError::InvalidConfig("horizon must be positive"));
        }
        if !(self.ticket_threshold_pct > 0.0 && self.ticket_threshold_pct < 100.0) {
            return Err(crate::AtmError::InvalidConfig(
                "ticket threshold must be in (0, 100)",
            ));
        }
        if !(self.spatial_ridge_lambda >= 0.0 && self.spatial_ridge_lambda.is_finite()) {
            return Err(crate::AtmError::InvalidConfig("ridge lambda must be >= 0"));
        }
        let epsilon_ok = |e: f64| e >= 0.0 && e.is_finite();
        if !epsilon_ok(self.epsilon_cpu) || !epsilon_ok(self.epsilon_ram) {
            return Err(crate::AtmError::InvalidConfig("epsilon must be >= 0"));
        }
        if let ClusterMethod::Cbc { rho_threshold } = self.cluster_method {
            if !(rho_threshold > 0.0 && rho_threshold < 1.0) {
                return Err(crate::AtmError::InvalidConfig(
                    "CBC rho threshold must be in (0, 1)",
                ));
            }
        }
        if !(self.demand_headroom >= 1.0 && self.demand_headroom.is_finite()) {
            return Err(crate::AtmError::InvalidConfig(
                "demand_headroom must be >= 1",
            ));
        }
        self.imputation.validate()?;
        self.online.validate()?;
        self.adaptation.validate()?;
        self.tickets.validate()?;
        self.durability.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AtmConfig::default();
        assert_eq!(c.ticket_threshold_pct, 60.0);
        assert_eq!(c.epsilon_cpu, 0.25);
        assert_eq!(c.epsilon_ram, 1.0);
        assert_eq!(c.train_windows, 480);
        assert_eq!(c.horizon, 96);
        assert_eq!(c.cluster_method.name(), "dtw");
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders() {
        let c = AtmConfig::default()
            .with_cluster_method(ClusterMethod::cbc())
            .with_scope(ResourceScope::IntraCpu)
            .with_temporal(TemporalModel::Oracle);
        assert_eq!(c.cluster_method.name(), "cbc");
        assert_eq!(c.scope, ResourceScope::IntraCpu);
        assert_eq!(c.temporal, TemporalModel::Oracle);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut c = AtmConfig::fast_for_tests();
        c.horizon = 0;
        assert!(c.validate().is_err());
        let mut c = AtmConfig::fast_for_tests();
        c.ticket_threshold_pct = 120.0;
        assert!(c.validate().is_err());
        let mut c = AtmConfig::fast_for_tests();
        c.epsilon_cpu = -1.0;
        assert!(c.validate().is_err());
        let mut c = AtmConfig::fast_for_tests();
        c.cluster_method = ClusterMethod::Cbc { rho_threshold: 1.5 };
        assert!(c.validate().is_err());
        let mut c = AtmConfig::fast_for_tests();
        c.train_windows = 2;
        assert!(c.validate().is_err());
        let mut c = AtmConfig::fast_for_tests();
        c.imputation.seasonal_period = 0;
        assert!(c.validate().is_err());
        let mut c = AtmConfig::fast_for_tests();
        c.online.retry.max_attempts = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn compute_defaults_are_sequential_and_exact() {
        let c = ComputeConfig::default();
        assert_eq!(c.threads, 1);
        assert_eq!(c.dtw_band, 0);
        assert!(c.optimized_kernel);
        assert_eq!(c.effective_threads(), 1);
        // threads = 0 resolves to at least one worker.
        let auto = ComputeConfig {
            threads: 0,
            ..ComputeConfig::default()
        };
        assert!(auto.effective_threads() >= 1);
    }

    #[test]
    fn compute_field_defaults_when_missing_from_serialized_config() {
        // A config serialized before the compute field existed must keep
        // deserializing (and behave sequentially).
        let mut v: serde_json::Value =
            serde_json::to_value(AtmConfig::fast_for_tests()).expect("serializable");
        v.as_object_mut().expect("object").remove("compute");
        let restored: AtmConfig = serde_json::from_value(v).expect("compute defaults");
        assert_eq!(restored.compute, ComputeConfig::default());
    }

    #[test]
    fn durability_defaults_are_off_and_backward_compatible() {
        let d = DurabilityConfig::default();
        assert!(!d.checkpointing_enabled());
        assert_eq!(d.window_deadline_ms, 0);
        assert!(d.validate().is_ok());
        // A config serialized before the durability field existed must
        // keep deserializing with the defaults.
        let mut v: serde_json::Value =
            serde_json::to_value(AtmConfig::fast_for_tests()).expect("serializable");
        v.as_object_mut().expect("object").remove("durability");
        let restored: AtmConfig = serde_json::from_value(v).expect("durability defaults");
        assert_eq!(restored.durability, DurabilityConfig::default());
    }

    #[test]
    fn observability_defaults_are_off_and_backward_compatible() {
        let o = ObservabilityConfig::default();
        assert!(!o.enabled);
        assert!(!o.record_timings);
        assert!(o.event_log.is_empty());
        assert!(!o.build_obs().is_enabled());
        assert!(ObservabilityConfig::enabled().build_obs().is_enabled());
        // A config serialized before the observability field existed must
        // keep deserializing with the defaults (observability off).
        let mut v: serde_json::Value =
            serde_json::to_value(AtmConfig::fast_for_tests()).expect("serializable");
        v.as_object_mut().expect("object").remove("observability");
        let restored: AtmConfig = serde_json::from_value(v).expect("observability defaults");
        assert_eq!(restored.observability, ObservabilityConfig::default());
    }

    #[test]
    fn durability_validation_rejects_inverted_backoff() {
        let mut c = AtmConfig::fast_for_tests();
        c.durability.breaker_base_ms = 100;
        c.durability.breaker_cap_ms = 10;
        assert!(c.validate().is_err());
    }

    #[test]
    fn adaptation_defaults_are_off_and_backward_compatible() {
        let a = AdaptationConfig::default();
        assert!(!a.enabled);
        assert!(a.trigger_ratio > a.clear_ratio);
        assert!(a.validate().is_ok());
        assert!(AdaptationConfig::fast().enabled);
        assert!(AdaptationConfig::fast().validate().is_ok());
        // A config serialized before the adaptation/headroom fields
        // existed must keep deserializing with adaptation off and no
        // headroom.
        let mut v: serde_json::Value =
            serde_json::to_value(AtmConfig::fast_for_tests()).expect("serializable");
        let obj = v.as_object_mut().expect("object");
        obj.remove("adaptation");
        obj.remove("demand_headroom");
        let restored: AtmConfig = serde_json::from_value(v).expect("adaptation defaults");
        assert_eq!(restored.adaptation, AdaptationConfig::default());
        assert_eq!(restored.demand_headroom, 1.0);
    }

    #[test]
    fn tickets_defaults_are_off_and_backward_compatible() {
        let t = TicketsConfig::default();
        assert!(!t.enabled);
        assert_eq!(t.storm_jaccard, 0.5);
        assert_eq!(t.anomaly_z_threshold, 3.5);
        assert!(t.validate().is_ok());
        assert!(TicketsConfig::fast().enabled);
        assert!(TicketsConfig::fast().validate().is_ok());
        // A config serialized before the tickets field existed must keep
        // deserializing with ticket intelligence off.
        let mut v: serde_json::Value =
            serde_json::to_value(AtmConfig::fast_for_tests()).expect("serializable");
        v.as_object_mut().expect("object").remove("tickets");
        let restored: AtmConfig = serde_json::from_value(v).expect("tickets defaults");
        assert_eq!(restored.tickets, TicketsConfig::default());
    }

    #[test]
    fn tickets_validation_rejects_bad_values() {
        let mut c = AtmConfig::fast_for_tests();
        c.tickets.storm_jaccard = 1.5;
        assert!(c.validate().is_err());
        let mut c = AtmConfig::fast_for_tests();
        c.tickets.anomaly_z_threshold = 0.0;
        assert!(c.validate().is_err());
        let mut c = AtmConfig::fast_for_tests();
        c.tickets.recent_delays = 0;
        assert!(c.validate().is_err());
        let mut c = AtmConfig::fast_for_tests();
        c.tickets.chronic_after = 0;
        assert!(c.validate().is_err());
        let mut c = AtmConfig::fast_for_tests();
        c.tickets.offender_headroom = 0.9;
        assert!(c.validate().is_err());
    }

    #[test]
    fn adaptation_validation_rejects_bad_values() {
        let mut c = AtmConfig::fast_for_tests();
        c.adaptation.trigger_ratio = 1.0; // not above clear_ratio
        assert!(c.validate().is_err());
        let mut c = AtmConfig::fast_for_tests();
        c.adaptation.clear_ratio = 0.5;
        assert!(c.validate().is_err());
        let mut c = AtmConfig::fast_for_tests();
        c.adaptation.short_windows = 0;
        assert!(c.validate().is_err());
        let mut c = AtmConfig::fast_for_tests();
        c.adaptation.refit_train_windows = 4;
        assert!(c.validate().is_err());
        let mut c = AtmConfig::fast_for_tests();
        c.adaptation.max_headroom = 0.5;
        assert!(c.validate().is_err());
        let mut c = AtmConfig::fast_for_tests();
        c.demand_headroom = 0.9;
        assert!(c.validate().is_err());
        let mut c = AtmConfig::fast_for_tests();
        c.demand_headroom = f64::NAN;
        assert!(c.validate().is_err());
    }

    #[test]
    fn online_defaults() {
        let c = OnlineConfig::default();
        assert!(c.fallback);
        assert_eq!(c.retry.max_attempts, 3);
        assert_eq!(c.safe_mode_after, 3);
        assert!(c.validate().is_ok());
    }
}
