//! Durable checkpoints for the online management loop.
//!
//! A controller that dies mid-run and forgets its caps is worse than no
//! controller: stale caps keep firing tickets until a human intervenes.
//! This module makes [`run_online`](crate::online::run_online()) runs
//! *restartable*: the per-box [`OnlineState`] is persisted after every
//! window, and a restarted process resumes exactly where the dead one
//! stopped, producing a byte-identical
//! [`OnlineReport`](crate::online::OnlineReport).
//!
//! # On-disk layout
//!
//! Per box, inside the store directory:
//!
//! - `<box>.snap` — the latest full-state **snapshot**: a one-line header
//!   (`atm-snapshot v1 crc32=<hex> len=<bytes>`) followed by a CRC-32
//!   checksummed JSON payload. Written atomically (temp + fsync +
//!   rename, via [`crate::fsio::write_atomic`]).
//! - `<box>.snap.prev` — the previous snapshot, kept as the fallback
//!   when the latest one is corrupt or torn.
//! - `<box>.journal` — an append-only **window journal**: one framed,
//!   CRC-checked [`JournalRecord`] line per completed window since the
//!   last snapshot. Appends are fsynced but not atomic; a torn tail is
//!   detected by its frame/CRC and dropped on recovery.
//!
//! Snapshots are cut every
//! [`DurabilityConfig::checkpoint_interval`](crate::config::DurabilityConfig)
//! windows; the journal covers the windows in between, so recovery never
//! replays the model — it replays a handful of small records.
//!
//! # Recovery semantics
//!
//! [`CheckpointStore::recover`] never panics and returns structured
//! [`RecoveryEvent`]s instead of failing the run: a corrupt or truncated
//! snapshot falls back to the previous one; a corrupt journal tail is
//! dropped; a checkpoint written by a different trace/config (detected
//! via a fingerprint) is ignored entirely. The worst case is always "some
//! windows are recomputed", never "the run aborts" or "state from the
//! wrong run is mixed in".

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::config::DurabilityConfig;
use crate::error::{AtmError, AtmResult};
use crate::fsio::{append_durable, write_atomic};
use crate::online::{AdaptationState, DegradationSummary, OnlineState, WindowOutcome};

/// Snapshot format version; bumped on incompatible layout changes.
/// Snapshots with a different version are treated as corrupt (recovery
/// falls back), never misparsed.
pub const SNAPSHOT_VERSION: u32 = 1;

const SNAPSHOT_MAGIC: &str = "atm-snapshot";
const JOURNAL_MAGIC: &str = "atmj1";

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) over `bytes` — the
/// checksum guarding snapshots and journal records.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// One recovery decision, reported (not panicked) so fleet tooling can
/// surface corruption without aborting anything.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryEvent {
    /// A snapshot file existed but failed its header, CRC, version, or
    /// JSON checks.
    SnapshotCorrupt {
        /// The snapshot file.
        path: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A snapshot was valid but was written by a different trace or
    /// configuration (fingerprint mismatch) and was ignored.
    SnapshotStale {
        /// The snapshot file.
        path: String,
    },
    /// Recovery used the previous snapshot because the latest was
    /// missing or rejected.
    SnapshotFellBack {
        /// The fallback snapshot file.
        path: String,
    },
    /// The journal's tail was torn or corrupt; the listed number of
    /// trailing lines were dropped (their windows will be recomputed).
    JournalTruncated {
        /// The journal file.
        path: String,
        /// Trailing lines dropped.
        dropped: usize,
        /// Why the first bad line was rejected.
        reason: String,
    },
    /// A journal record was valid but did not extend the recovered state
    /// (wrong fingerprint or non-contiguous window) and was skipped.
    JournalSkipped {
        /// The journal file.
        path: String,
        /// The record's window index.
        window: usize,
    },
    /// Recovery produced a usable state; the run resumes at this window.
    Resumed {
        /// First window the resumed run will compute.
        window: usize,
    },
    /// No usable checkpoint was found; the run starts from window 0.
    Fresh,
}

impl fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryEvent::SnapshotCorrupt { path, reason } => {
                write!(f, "snapshot {path} corrupt: {reason}")
            }
            RecoveryEvent::SnapshotStale { path } => {
                write!(f, "snapshot {path} belongs to a different run; ignored")
            }
            RecoveryEvent::SnapshotFellBack { path } => {
                write!(f, "fell back to previous snapshot {path}")
            }
            RecoveryEvent::JournalTruncated {
                path,
                dropped,
                reason,
            } => write!(
                f,
                "journal {path}: dropped {dropped} torn line(s): {reason}"
            ),
            RecoveryEvent::JournalSkipped { path, window } => {
                write!(f, "journal {path}: skipped record for window {window}")
            }
            RecoveryEvent::Resumed { window } => write!(f, "resumed at window {window}"),
            RecoveryEvent::Fresh => write!(f, "no usable checkpoint; starting fresh"),
        }
    }
}

/// What [`CheckpointStore::recover`] found.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recovery {
    /// The recovered state (the fresh state when nothing usable was on
    /// disk).
    pub state: OnlineState,
    /// Every decision recovery made, in order.
    pub events: Vec<RecoveryEvent>,
    /// The window the run resumed from; `None` when starting fresh.
    pub resumed_from: Option<usize>,
}

/// One appended journal line: the outcome of a single completed window
/// plus the small post-window loop state, enough to roll the previous
/// snapshot forward without recomputing anything.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Fingerprint binding the record to its (trace, config) pair.
    pub fingerprint: u64,
    /// The window this record completes.
    pub window: usize,
    /// The window's outcome (status, report, tickets).
    pub outcome: WindowOutcome,
    /// Carried-forward capacities after this window, per scoped resource.
    pub last_caps: Vec<Option<Vec<f64>>>,
    /// Consecutive actuation failures after this window.
    pub consecutive_actuation_failures: usize,
    /// Whether the loop is in safe mode after this window.
    pub safe_mode: bool,
    /// Degradation accounting after this window.
    pub summary: DegradationSummary,
    /// Drift-adaptation state after this window. Defaults for journals
    /// written before adaptation existed, so old stores stay readable.
    #[serde(default)]
    pub adaptation: AdaptationState,
}

/// A directory of per-box snapshots and journals.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

fn ckpt_err(path: &Path, reason: impl fmt::Display) -> AtmError {
    AtmError::Checkpoint {
        path: path.display().to_string(),
        reason: reason.to_string(),
    }
}

/// Maps a box name to a safe file stem (alphanumerics, `.`, `_`, `-`).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    ///
    /// [`AtmError::Checkpoint`] when the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> AtmResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| ckpt_err(&dir, e))?;
        Ok(CheckpointStore { dir })
    }

    /// Opens the store named by `durability.checkpoint_dir`, or `None`
    /// when checkpointing is disabled (the directory is empty).
    ///
    /// # Errors
    ///
    /// [`AtmError::Checkpoint`] when the directory cannot be created.
    pub fn from_config(durability: &DurabilityConfig) -> AtmResult<Option<Self>> {
        if !durability.checkpointing_enabled() {
            return Ok(None);
        }
        Self::open(&durability.checkpoint_dir).map(Some)
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of a box's latest snapshot.
    pub fn snapshot_path(&self, box_name: &str) -> PathBuf {
        self.dir.join(format!("{}.snap", sanitize(box_name)))
    }

    /// Path of a box's previous (fallback) snapshot.
    pub fn prev_snapshot_path(&self, box_name: &str) -> PathBuf {
        self.dir.join(format!("{}.snap.prev", sanitize(box_name)))
    }

    /// Path of a box's window journal.
    pub fn journal_path(&self, box_name: &str) -> PathBuf {
        self.dir.join(format!("{}.journal", sanitize(box_name)))
    }

    /// Removes every checkpoint artifact of one box. Missing files are
    /// fine; the next run simply starts fresh.
    ///
    /// # Errors
    ///
    /// [`AtmError::Checkpoint`] on filesystem errors other than
    /// "not found".
    pub fn wipe(&self, box_name: &str) -> AtmResult<()> {
        for path in [
            self.snapshot_path(box_name),
            self.prev_snapshot_path(box_name),
            self.journal_path(box_name),
        ] {
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(ckpt_err(&path, e)),
            }
        }
        Ok(())
    }

    /// Atomically writes `state` as the latest snapshot, rotating the
    /// previous one to the `.prev` fallback slot.
    ///
    /// # Errors
    ///
    /// [`AtmError::Checkpoint`] when serialization or any filesystem
    /// step fails.
    pub fn save_snapshot(&self, box_name: &str, state: &OnlineState) -> AtmResult<()> {
        let path = self.snapshot_path(box_name);
        let payload = serde_json::to_vec(state).map_err(|e| ckpt_err(&path, e))?;
        let header = format!(
            "{SNAPSHOT_MAGIC} v{SNAPSHOT_VERSION} crc32={:08x} len={}\n",
            crc32(&payload),
            payload.len()
        );
        let mut bytes = header.into_bytes();
        bytes.extend_from_slice(&payload);
        if path.exists() {
            let prev = self.prev_snapshot_path(box_name);
            fs::rename(&path, &prev).map_err(|e| ckpt_err(&prev, e))?;
        }
        write_atomic(&path, &bytes).map_err(|e| ckpt_err(&path, e))
    }

    /// Appends one window's record to the box's journal, fsynced.
    ///
    /// # Errors
    ///
    /// [`AtmError::Checkpoint`] when serialization or the append fails.
    pub fn append_journal(&self, box_name: &str, record: &JournalRecord) -> AtmResult<()> {
        let path = self.journal_path(box_name);
        let payload = serde_json::to_string(record).map_err(|e| ckpt_err(&path, e))?;
        let line = format!(
            "{JOURNAL_MAGIC} crc32={:08x} {payload}\n",
            crc32(payload.as_bytes())
        );
        append_durable(&path, line.as_bytes()).map_err(|e| ckpt_err(&path, e))
    }

    /// Empties the box's journal (after its contents were folded into a
    /// snapshot).
    ///
    /// # Errors
    ///
    /// [`AtmError::Checkpoint`] on filesystem errors.
    pub fn truncate_journal(&self, box_name: &str) -> AtmResult<()> {
        let path = self.journal_path(box_name);
        write_atomic(&path, b"").map_err(|e| ckpt_err(&path, e))
    }

    /// Persists the window that `state` just completed: appends a journal
    /// record, and every `interval` windows folds everything into a fresh
    /// snapshot (journal truncated afterwards). `interval == 0` snapshots
    /// every window.
    ///
    /// # Errors
    ///
    /// [`AtmError::Checkpoint`] when any write fails; the in-memory run
    /// is unaffected, but durability is lost, so callers should treat
    /// this as a failed window.
    pub fn record_window(
        &self,
        box_name: &str,
        state: &OnlineState,
        interval: usize,
    ) -> AtmResult<()> {
        let snapshot_due = interval <= 1 || state.next_window % interval.max(1) == 0;
        if snapshot_due {
            self.save_snapshot(box_name, state)?;
            self.truncate_journal(box_name)?;
            return Ok(());
        }
        let outcome = state
            .windows
            .last()
            .cloned()
            .ok_or_else(|| ckpt_err(&self.journal_path(box_name), "no completed window"))?;
        let record = JournalRecord {
            fingerprint: state.fingerprint,
            window: state.next_window - 1,
            outcome,
            last_caps: state.last_caps.clone(),
            consecutive_actuation_failures: state.consecutive_actuation_failures,
            safe_mode: state.safe_mode,
            summary: state.summary.clone(),
            adaptation: state.adaptation.clone(),
        };
        self.append_journal(box_name, &record)
    }

    /// Loads and verifies one snapshot file. `Ok(None)` means "file does
    /// not exist"; any validation failure is an `Err` with the reason.
    fn load_snapshot(&self, path: &Path) -> Result<Option<OnlineState>, String> {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("unreadable: {e}")),
        };
        let newline = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| "missing header line".to_string())?;
        let header =
            std::str::from_utf8(&bytes[..newline]).map_err(|_| "header not UTF-8".to_string())?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some(SNAPSHOT_MAGIC) {
            return Err("bad magic".into());
        }
        let version = parts.next().unwrap_or_default();
        if version != format!("v{SNAPSHOT_VERSION}") {
            return Err(format!("unsupported version `{version}`"));
        }
        let crc_field = parts
            .next()
            .and_then(|p| p.strip_prefix("crc32="))
            .ok_or_else(|| "missing crc32 field".to_string())?;
        let expected_crc =
            u32::from_str_radix(crc_field, 16).map_err(|_| "bad crc32 field".to_string())?;
        let len_field = parts
            .next()
            .and_then(|p| p.strip_prefix("len="))
            .ok_or_else(|| "missing len field".to_string())?;
        let expected_len: usize = len_field.parse().map_err(|_| "bad len field".to_string())?;
        let payload = &bytes[newline + 1..];
        if payload.len() != expected_len {
            return Err(format!(
                "truncated: payload {} of {expected_len} bytes",
                payload.len()
            ));
        }
        let actual_crc = crc32(payload);
        if actual_crc != expected_crc {
            return Err(format!(
                "crc mismatch: header {expected_crc:08x}, payload {actual_crc:08x}"
            ));
        }
        let state: OnlineState =
            serde_json::from_slice(payload).map_err(|e| format!("payload not valid JSON: {e}"))?;
        if state.windows.len() != state.next_window {
            return Err(format!(
                "inconsistent state: {} outcomes for cursor {}",
                state.windows.len(),
                state.next_window
            ));
        }
        Ok(Some(state))
    }

    /// Parses the journal into `(good records, events)`; a torn or
    /// corrupt line ends the replay there.
    fn load_journal(&self, box_name: &str) -> (Vec<JournalRecord>, Vec<RecoveryEvent>) {
        let path = self.journal_path(box_name);
        let mut events = Vec::new();
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => return (Vec::new(), events),
        };
        let text = String::from_utf8_lossy(&bytes);
        let lines: Vec<&str> = text.split('\n').collect();
        let mut records = Vec::new();
        for (i, line) in lines.iter().enumerate() {
            if line.is_empty() {
                continue;
            }
            // A valid append always ends with '\n'; a non-empty final
            // element of the split is a torn tail by construction.
            let torn_tail = i == lines.len() - 1;
            let parsed = (|| -> Result<JournalRecord, String> {
                if torn_tail {
                    return Err("unterminated line".into());
                }
                let rest = line
                    .strip_prefix(JOURNAL_MAGIC)
                    .and_then(|r| r.strip_prefix(' '))
                    .ok_or_else(|| "bad magic".to_string())?;
                let (crc_field, payload) = rest
                    .split_once(' ')
                    .ok_or_else(|| "missing payload".to_string())?;
                let expected = crc_field
                    .strip_prefix("crc32=")
                    .and_then(|c| u32::from_str_radix(c, 16).ok())
                    .ok_or_else(|| "bad crc32 field".to_string())?;
                let actual = crc32(payload.as_bytes());
                if actual != expected {
                    return Err(format!("crc mismatch: {expected:08x} vs {actual:08x}"));
                }
                serde_json::from_str(payload).map_err(|e| format!("bad record JSON: {e}"))
            })();
            match parsed {
                Ok(record) => records.push(record),
                Err(reason) => {
                    let dropped = lines[i..].iter().filter(|l| !l.is_empty()).count();
                    events.push(RecoveryEvent::JournalTruncated {
                        path: path.display().to_string(),
                        dropped,
                        reason,
                    });
                    break;
                }
            }
        }
        (records, events)
    }

    /// Recovers the best available state for one box: the latest valid
    /// snapshot (falling back to the previous one), rolled forward by the
    /// journal. `fresh` is the run's clean starting state and doubles as
    /// the fingerprint to match checkpoints against; it is returned
    /// unchanged when nothing usable is on disk.
    ///
    /// This never fails on corrupt data — every rejection is a
    /// [`RecoveryEvent`]. It cannot panic.
    pub fn recover(&self, box_name: &str, fresh: OnlineState) -> Recovery {
        let mut events = Vec::new();
        let fingerprint = fresh.fingerprint;
        let mut state: Option<OnlineState> = None;
        let mut primary_failed = false;

        for (slot, path) in [
            ("latest", self.snapshot_path(box_name)),
            ("previous", self.prev_snapshot_path(box_name)),
        ] {
            match self.load_snapshot(&path) {
                Ok(None) => {
                    if slot == "latest" {
                        primary_failed = true;
                    }
                }
                Ok(Some(candidate)) => {
                    if candidate.fingerprint != fingerprint {
                        events.push(RecoveryEvent::SnapshotStale {
                            path: path.display().to_string(),
                        });
                        if slot == "latest" {
                            primary_failed = true;
                        }
                        continue;
                    }
                    if slot == "previous" && primary_failed {
                        events.push(RecoveryEvent::SnapshotFellBack {
                            path: path.display().to_string(),
                        });
                    }
                    state = Some(candidate);
                    break;
                }
                Err(reason) => {
                    events.push(RecoveryEvent::SnapshotCorrupt {
                        path: path.display().to_string(),
                        reason,
                    });
                    if slot == "latest" {
                        primary_failed = true;
                    }
                }
            }
        }

        let mut state = state.unwrap_or_else(|| fresh.clone());

        let (records, mut journal_events) = self.load_journal(box_name);
        let journal_path = self.journal_path(box_name).display().to_string();
        for record in records {
            if record.fingerprint != fingerprint || record.window < state.next_window {
                // Stale records are normal after a snapshot that did not
                // get to truncate the journal; skip silently unless they
                // are from a different run entirely.
                if record.fingerprint != fingerprint {
                    events.push(RecoveryEvent::JournalSkipped {
                        path: journal_path.clone(),
                        window: record.window,
                    });
                }
                continue;
            }
            if record.window != state.next_window {
                // A gap means the journal belongs to a newer snapshot
                // than the one we recovered; everything from here on
                // would skip windows, so stop and recompute instead.
                events.push(RecoveryEvent::JournalSkipped {
                    path: journal_path.clone(),
                    window: record.window,
                });
                break;
            }
            state.windows.push(record.outcome);
            state.summary = record.summary;
            state.last_caps = record.last_caps;
            state.consecutive_actuation_failures = record.consecutive_actuation_failures;
            state.safe_mode = record.safe_mode;
            state.adaptation = record.adaptation;
            state.next_window = record.window + 1;
        }
        events.append(&mut journal_events);

        let resumed_from = if state.next_window > 0 {
            events.push(RecoveryEvent::Resumed {
                window: state.next_window,
            });
            Some(state.next_window)
        } else {
            events.push(RecoveryEvent::Fresh);
            None
        };
        Recovery {
            state,
            events,
            resumed_from,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::{DriftEvent, DriftEventKind, WindowStatus};

    fn temp_store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!(
            "atm-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::open(dir).unwrap()
    }

    #[test]
    fn from_config_respects_the_enable_switch() {
        let off = DurabilityConfig::default();
        assert!(CheckpointStore::from_config(&off).unwrap().is_none());

        let dir = std::env::temp_dir().join(format!(
            "atm-ckpt-from-config-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let on = DurabilityConfig {
            checkpoint_dir: dir.display().to_string(),
            ..DurabilityConfig::default()
        };
        let store = CheckpointStore::from_config(&on).unwrap().unwrap();
        assert_eq!(store.dir(), dir.as_path());
        assert!(dir.is_dir(), "open creates the directory");
        let _ = fs::remove_dir_all(&dir);
    }

    fn outcome(window: usize) -> WindowOutcome {
        WindowOutcome {
            window,
            status: WindowStatus::Ok,
            report: None,
            tickets_before: 10 + window,
            tickets_after: window,
            actuation_attempts: 1,
        }
    }

    fn state_with(fingerprint: u64, windows: usize) -> OnlineState {
        let mut summary = DegradationSummary::default();
        summary.windows_ok = windows;
        OnlineState {
            fingerprint,
            next_window: windows,
            windows: (0..windows).map(outcome).collect(),
            summary,
            last_caps: vec![Some(vec![1.5, 2.5]), None],
            consecutive_actuation_failures: 0,
            safe_mode: false,
            adaptation: AdaptationState::default(),
            tickets: crate::tickets::TicketState::default(),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn snapshot_roundtrip() {
        let store = temp_store("roundtrip");
        let state = state_with(7, 3);
        store.save_snapshot("box0", &state).unwrap();
        let recovery = store.recover("box0", state_with(7, 0));
        assert_eq!(recovery.state, state);
        assert_eq!(recovery.resumed_from, Some(3));
        assert!(recovery
            .events
            .iter()
            .any(|e| matches!(e, RecoveryEvent::Resumed { window: 3 })));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_previous() {
        let store = temp_store("fallback");
        store.save_snapshot("box0", &state_with(7, 2)).unwrap();
        store.save_snapshot("box0", &state_with(7, 4)).unwrap();
        // Flip a payload byte in the latest snapshot.
        let path = store.snapshot_path("box0");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let recovery = store.recover("box0", state_with(7, 0));
        assert_eq!(recovery.state, state_with(7, 2), "should use .prev");
        assert!(recovery
            .events
            .iter()
            .any(|e| matches!(e, RecoveryEvent::SnapshotCorrupt { .. })));
        assert!(recovery
            .events
            .iter()
            .any(|e| matches!(e, RecoveryEvent::SnapshotFellBack { .. })));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn journal_extends_snapshot() {
        let store = temp_store("journal");
        let mut state = state_with(7, 2);
        store.save_snapshot("box0", &state).unwrap();
        // Two more windows recorded in the journal only.
        for w in 2..4 {
            state.windows.push(outcome(w));
            state.next_window = w + 1;
            state.summary.windows_ok += 1;
            store.record_window("box0", &state, 100).unwrap();
        }
        let recovery = store.recover("box0", state_with(7, 0));
        assert_eq!(recovery.state, state);
        assert_eq!(recovery.resumed_from, Some(4));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn torn_journal_tail_is_dropped() {
        let store = temp_store("torn");
        let mut state = state_with(7, 1);
        store.save_snapshot("box0", &state).unwrap();
        for w in 1..3 {
            state.windows.push(outcome(w));
            state.next_window = w + 1;
            store.record_window("box0", &state, 100).unwrap();
        }
        // Tear the last line mid-record (simulates a crash mid-append).
        let path = store.journal_path("box0");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let recovery = store.recover("box0", state_with(7, 0));
        // Window 2's record was torn: recovery stops after window 1.
        assert_eq!(recovery.resumed_from, Some(2));
        assert_eq!(recovery.state.windows.len(), 2);
        assert!(recovery
            .events
            .iter()
            .any(|e| matches!(e, RecoveryEvent::JournalTruncated { dropped: 1, .. })));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn flipped_journal_byte_is_detected() {
        let store = temp_store("flip");
        let mut state = state_with(7, 1);
        store.save_snapshot("box0", &state).unwrap();
        state.windows.push(outcome(1));
        state.next_window = 2;
        store.record_window("box0", &state, 100).unwrap();
        let path = store.journal_path("box0");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        let recovery = store.recover("box0", state_with(7, 0));
        assert_eq!(recovery.resumed_from, Some(1), "journal record rejected");
        assert!(recovery
            .events
            .iter()
            .any(|e| matches!(e, RecoveryEvent::JournalTruncated { .. })));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn fingerprint_mismatch_starts_fresh() {
        let store = temp_store("fingerprint");
        store.save_snapshot("box0", &state_with(7, 3)).unwrap();
        let recovery = store.recover("box0", state_with(8, 0));
        assert_eq!(recovery.resumed_from, None);
        assert_eq!(recovery.state, state_with(8, 0));
        assert!(recovery
            .events
            .iter()
            .any(|e| matches!(e, RecoveryEvent::SnapshotStale { .. })));
        assert!(recovery.events.contains(&RecoveryEvent::Fresh));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn record_window_rotates_snapshots_on_interval() {
        let store = temp_store("rotate");
        let mut state = state_with(7, 0);
        for w in 0..4 {
            state.windows.push(outcome(w));
            state.next_window = w + 1;
            // interval 2: snapshots at windows 1 and 3 (cursor 2 and 4).
            store.record_window("box0", &state, 2).unwrap();
        }
        assert!(store.snapshot_path("box0").exists());
        assert!(store.prev_snapshot_path("box0").exists());
        // Journal was truncated by the last snapshot.
        let journal = fs::read(store.journal_path("box0")).unwrap();
        assert!(journal.is_empty());
        let recovery = store.recover("box0", state_with(7, 0));
        assert_eq!(recovery.state, state);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn adaptation_state_rides_snapshots_and_journal_byte_identically() {
        let store = temp_store("adapt");
        let mut state = state_with(7, 2);
        state.adaptation.baseline = Some(0.25);
        state.adaptation.refits_used = 1;
        state.adaptation.active = true;
        state.adaptation.headroom = 1.75;
        state.adaptation.recent = vec![0.5];
        state.adaptation.events.push(DriftEvent {
            window: 1,
            kind: DriftEventKind::Confirmed,
            residual: 0.5,
            baseline: 0.25,
            headroom: 1.75,
        });
        store.save_snapshot("box0", &state).unwrap();
        // One more window lands in the journal only, with adaptation
        // state that evolved past the snapshot — replay must carry it.
        state.windows.push(outcome(2));
        state.next_window = 3;
        state.adaptation.headroom = 2.25;
        state.adaptation.recent = vec![0.625];
        store.record_window("box0", &state, 100).unwrap();

        let recovery = store.recover("box0", state_with(7, 0));
        assert_eq!(recovery.state, state);
        assert_eq!(
            serde_json::to_string(&recovery.state).unwrap(),
            serde_json::to_string(&state).unwrap(),
            "resumed adaptation state must be byte-identical"
        );
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn wipe_removes_everything() {
        let store = temp_store("wipe");
        let state = state_with(7, 1);
        store.save_snapshot("box0", &state).unwrap();
        store.save_snapshot("box0", &state).unwrap();
        store.record_window("box0", &state, 100).unwrap();
        store.wipe("box0").unwrap();
        assert!(!store.snapshot_path("box0").exists());
        assert!(!store.prev_snapshot_path("box0").exists());
        assert!(!store.journal_path("box0").exists());
        // Wiping again is fine.
        store.wipe("box0").unwrap();
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn sanitize_box_names() {
        assert_eq!(sanitize("box0"), "box0");
        assert_eq!(sanitize("a/b c"), "a_b_c");
    }
}
