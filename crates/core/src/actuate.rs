//! Capacity actuation from the online loop's point of view.
//!
//! The paper enforces caps with a per-hypervisor cgroups daemon; the
//! `atm-mediawiki` crate simulates that daemon. This module defines the
//! *minimal* interface the online management loop needs to drive any such
//! backend, plus the robustness machinery around it: bounded
//! retry-with-backoff for transient failures, and the bookkeeping the
//! safe mode in [`online`](crate::online) relies on.
//!
//! The trait here is deliberately smaller than
//! `atm_mediawiki::actuator::CapacityActuator` (no audit log, no change
//! list) so any enforcement backend — simulated cgroups, a REST daemon, a
//! test double — adapts to it in a few lines.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Why an actuation attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActuationError {
    /// A transient fault (timeout, connection reset, partial apply):
    /// retrying the same absolute caps is safe and may succeed.
    Transient(String),
    /// A permanent fault (invalid caps, unknown VM set): retrying the
    /// same request cannot succeed.
    Permanent(String),
}

impl std::fmt::Display for ActuationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ActuationError::Transient(e) => write!(f, "transient actuation fault: {e}"),
            ActuationError::Permanent(e) => write!(f, "permanent actuation fault: {e}"),
        }
    }
}

impl std::error::Error for ActuationError {}

/// An enforcement backend for per-VM capacity caps.
///
/// `apply` takes *absolute* caps (one per VM, in the box's capacity
/// units), so retries are idempotent: applying the same vector twice
/// leaves the system in the same state.
pub trait CapacityActuator {
    /// Applies the caps, replacing whatever was enforced before.
    ///
    /// # Errors
    ///
    /// [`ActuationError::Transient`] when a retry may succeed,
    /// [`ActuationError::Permanent`] when it cannot.
    fn apply(&mut self, caps: &[f64]) -> Result<(), ActuationError>;

    /// The currently enforced caps.
    fn current(&self) -> Vec<f64>;
}

/// Bounded retry-with-backoff for actuator calls.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts (the first try plus retries); at least 1.
    pub max_attempts: usize,
    /// Base backoff in milliseconds, doubled after every failed attempt.
    /// Zero (the default) disables sleeping — right for simulation, where
    /// windows, not wall-clock, are the unit of time.
    pub backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_ms: 0,
        }
    }
}

impl RetryPolicy {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::InvalidConfig`](crate::AtmError::InvalidConfig)
    /// when no attempt is allowed.
    pub fn validate(&self) -> crate::AtmResult<()> {
        if self.max_attempts == 0 {
            return Err(crate::AtmError::InvalidConfig(
                "retry max_attempts must be at least 1",
            ));
        }
        Ok(())
    }
}

/// Outcome of an [`apply_with_retry`] call that eventually succeeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApplyOutcome {
    /// Attempts used (1 = first try succeeded).
    pub attempts: usize,
}

/// Applies `caps` through `actuator`, retrying transient failures up to
/// `policy.max_attempts` total attempts with exponential backoff.
///
/// Permanent failures are returned immediately — retrying an invalid
/// request cannot help.
///
/// # Errors
///
/// The last [`ActuationError`] when every attempt failed, or the first
/// permanent one.
pub fn apply_with_retry(
    actuator: &mut dyn CapacityActuator,
    caps: &[f64],
    policy: &RetryPolicy,
) -> Result<ApplyOutcome, ActuationError> {
    let attempts_allowed = policy.max_attempts.max(1);
    let mut backoff = policy.backoff_ms;
    let mut last_err = None;
    for attempt in 1..=attempts_allowed {
        match actuator.apply(caps) {
            Ok(()) => return Ok(ApplyOutcome { attempts: attempt }),
            Err(e @ ActuationError::Permanent(_)) => return Err(e),
            Err(e @ ActuationError::Transient(_)) => {
                last_err = Some(e);
                if attempt < attempts_allowed && backoff > 0 {
                    std::thread::sleep(Duration::from_millis(backoff));
                    backoff = backoff.saturating_mul(2);
                }
            }
        }
    }
    Err(last_err.expect("at least one attempt was made"))
}

/// An actuator that records the caps it is told to apply and never fails.
/// The default backend for [`run_online`](crate::online::run_online()):
/// online management without live enforcement, exactly the paper's
/// post-hoc evaluation mode.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NoopActuator {
    caps: Vec<f64>,
    /// Every cap vector ever applied, oldest first.
    history: Vec<Vec<f64>>,
}

impl NoopActuator {
    /// Creates a recorder with no caps applied yet.
    pub fn new() -> Self {
        NoopActuator::default()
    }

    /// Every cap vector ever applied, oldest first.
    pub fn history(&self) -> &[Vec<f64>] {
        &self.history
    }
}

impl CapacityActuator for NoopActuator {
    fn apply(&mut self, caps: &[f64]) -> Result<(), ActuationError> {
        self.caps = caps.to_vec();
        self.history.push(caps.to_vec());
        Ok(())
    }

    fn current(&self) -> Vec<f64> {
        self.caps.clone()
    }
}

pub mod test_support {
    //! Deterministic fault-injecting actuators for exercising retry,
    //! safe mode, and the supervisor's crash isolation. Public (not
    //! `cfg(test)`) so integration tests and the chaos harness can
    //! script failures too.

    use super::*;

    /// Fails transiently according to a scripted pattern (`true` = fail),
    /// cycling through it on successive `apply` calls.
    pub struct ScriptedActuator {
        inner: NoopActuator,
        pattern: Vec<bool>,
        call: usize,
        /// Transient failures injected so far.
        pub failures_injected: usize,
    }

    impl ScriptedActuator {
        /// An actuator that replays `pattern` (`true` = fail the call)
        /// forever.
        pub fn new(pattern: Vec<bool>) -> Self {
            ScriptedActuator {
                inner: NoopActuator::new(),
                pattern,
                call: 0,
                failures_injected: 0,
            }
        }

        /// Every cap vector successfully applied, oldest first.
        pub fn applied(&self) -> &[Vec<f64>] {
            self.inner.history()
        }
    }

    impl CapacityActuator for ScriptedActuator {
        fn apply(&mut self, caps: &[f64]) -> Result<(), ActuationError> {
            let fail = self.pattern[self.call % self.pattern.len()];
            self.call += 1;
            if fail {
                self.failures_injected += 1;
                return Err(ActuationError::Transient("scripted failure".into()));
            }
            self.inner.apply(caps)
        }

        fn current(&self) -> Vec<f64> {
            self.inner.current()
        }
    }

    /// Panics on the Nth `apply` call — a mid-window crash, as opposed to
    /// the clean between-window kills of
    /// [`run_online_until`](crate::online::run_online_until()). The
    /// supervisor's `catch_unwind` isolation turns the panic into a
    /// quarantined box instead of a fleet abort.
    pub struct CrashingActuator {
        inner: NoopActuator,
        calls: usize,
        panic_on_call: usize,
    }

    impl CrashingActuator {
        /// Panics on apply call number `panic_on_call` (1-based); `0`
        /// never panics.
        pub fn new(panic_on_call: usize) -> Self {
            CrashingActuator {
                inner: NoopActuator::new(),
                calls: 0,
                panic_on_call,
            }
        }

        /// Apply calls made so far.
        pub fn calls(&self) -> usize {
            self.calls
        }
    }

    impl CapacityActuator for CrashingActuator {
        fn apply(&mut self, caps: &[f64]) -> Result<(), ActuationError> {
            self.calls += 1;
            assert!(
                self.panic_on_call == 0 || self.calls != self.panic_on_call,
                "scripted actuator crash on apply call {}",
                self.calls
            );
            self.inner.apply(caps)
        }

        fn current(&self) -> Vec<f64> {
            self.inner.current()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::ScriptedActuator;
    use super::*;

    #[test]
    fn first_try_success_uses_one_attempt() {
        let mut actuator = NoopActuator::new();
        let outcome =
            apply_with_retry(&mut actuator, &[1.0, 2.0], &RetryPolicy::default()).unwrap();
        assert_eq!(outcome.attempts, 1);
        assert_eq!(actuator.current(), vec![1.0, 2.0]);
    }

    #[test]
    fn transient_failures_retried_to_success() {
        let mut actuator = ScriptedActuator::new(vec![true, true, false]);
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff_ms: 0,
        };
        let outcome = apply_with_retry(&mut actuator, &[4.0], &policy).unwrap();
        assert_eq!(outcome.attempts, 3);
        assert_eq!(actuator.applied(), &[vec![4.0]]);
        assert_eq!(actuator.failures_injected, 2);
    }

    #[test]
    fn retries_are_bounded() {
        let mut actuator = ScriptedActuator::new(vec![true]);
        let policy = RetryPolicy {
            max_attempts: 4,
            backoff_ms: 0,
        };
        let err = apply_with_retry(&mut actuator, &[4.0], &policy).unwrap_err();
        assert!(matches!(err, ActuationError::Transient(_)));
        assert_eq!(actuator.failures_injected, 4);
        assert!(actuator.applied().is_empty());
    }

    #[test]
    fn permanent_failure_not_retried() {
        struct Permanent;
        impl CapacityActuator for Permanent {
            fn apply(&mut self, _caps: &[f64]) -> Result<(), ActuationError> {
                Err(ActuationError::Permanent("bad caps".into()))
            }
            fn current(&self) -> Vec<f64> {
                Vec::new()
            }
        }
        let policy = RetryPolicy {
            max_attempts: 5,
            backoff_ms: 0,
        };
        let err = apply_with_retry(&mut Permanent, &[1.0], &policy).unwrap_err();
        assert!(matches!(err, ActuationError::Permanent(_)));
    }

    #[test]
    fn policy_validation() {
        assert!(RetryPolicy::default().validate().is_ok());
        let bad = RetryPolicy {
            max_attempts: 0,
            backoff_ms: 0,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn noop_records_history() {
        let mut a = NoopActuator::new();
        a.apply(&[1.0]).unwrap();
        a.apply(&[2.0]).unwrap();
        assert_eq!(a.history(), &[vec![1.0], vec![2.0]]);
        assert_eq!(a.current(), vec![2.0]);
    }
}
