//! # atm-core
//!
//! The Active Ticket Managing (ATM) system — the primary contribution of
//! *"Managing Data Center Tickets: Prediction and Active Sizing"*
//! (DSN 2016), assembled from the substrate crates.
//!
//! ATM runs per physical box and consists of:
//!
//! 1. **Signature search** ([`signature`]): divide the box's `M × N`
//!    demand series into a small *signature set* `Ω_s` and a *dependent
//!    set* `Ω_d`. Step 1 clusters the series — by DTW dissimilarity with
//!    silhouette-selected hierarchical clustering, or by the paper's
//!    correlation-based clustering (CBC) — and takes one representative
//!    per cluster. Step 2 removes multicollinear signatures via VIF +
//!    stepwise regression.
//! 2. **Spatial models** ([`spatial`]): each dependent series is an OLS
//!    linear combination of the signature series (eq. 1).
//! 3. **Temporal models** (plugged in from `atm-forecast`): signature
//!    series are forecast over the resizing horizon — neural network by
//!    default, exactly as the paper uses PRACTISE.
//! 4. **Resizing** (from `atm-resize`): the predicted demands drive the
//!    greedy MCKP allocator; CPU and RAM are resized separately.
//!
//! The [`pipeline`] module wires these together for one box, [`fleet`]
//! fans the pipeline out over an entire fleet (the aggregated reports
//! behind the paper's Figs. 5–10), [`online`] rolls ATM along a trace
//! day by day — the paper's stated future work — and [`whatif`] inverts
//! the knapsack into capacity planning (tickets-vs-budget curves).
//!
//! Robustness: [`impute`] fills trace gaps before the pipeline runs,
//! [`actuate`] wraps capacity enforcement in bounded retries, and the
//! online loop degrades per window (fallback forecasts, carried-forward
//! caps, safe mode) rather than aborting the whole run.
//!
//! Durability: [`checkpoint`] persists the online loop's state after
//! every window (checksummed snapshots + a window journal, written
//! atomically via [`fsio`]), so a killed process resumes byte-identically;
//! [`supervisor`] runs whole fleets that way with per-box panic
//! isolation, restart-from-checkpoint, deadlines, and circuit breakers.
//!
//! Ticket intelligence: [`tickets`] collapses correlated ticket bursts
//! into deduplicated storm incidents, scores each box's inter-ticket
//! delays with a robust anomaly detector, and feeds chronically
//! anomalous boxes back to the resizer (headroom floor) and the fleet
//! supervisor (claim priority) — all off by default and byte-transparent
//! when disabled.
//!
//! Observability: every stage above is instrumented through an
//! [`atm_obs::Obs`] handle — pipeline-stage spans, kernel work counters,
//! per-window online counters/events, and supervisor restart/quarantine
//! accounting. The `*_observed` function variants take the handle
//! explicitly; the plain variants run with the no-op handle. [`metrics`]
//! embeds the deterministic part of a snapshot into reports.
//!
//! # Example
//!
//! ```
//! use atm_core::config::AtmConfig;
//! use atm_core::pipeline::run_box;
//! use atm_tracegen::{generate_box, FleetConfig};
//!
//! let trace_cfg = FleetConfig { num_boxes: 1, days: 3, gap_probability: 0.0,
//!                               ..FleetConfig::default() };
//! let box_trace = generate_box(&trace_cfg, 0);
//! let config = AtmConfig::fast_for_tests();
//! let report = run_box(&box_trace, &config)?;
//! assert!(report.signature.final_ratio() <= 1.0);
//! # Ok::<(), atm_core::AtmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actuate;
pub mod backoff;
pub mod checkpoint;
pub mod config;
mod error;
/// NaN-safe float ordering and compensated summation, re-exported from
/// `atm-num` so pipeline code can say `atm_core::float::sort_floats` —
/// see DESIGN.md §12 for the total-order contract.
pub use atm_num as float;
pub mod fleet;
pub mod fsio;
pub mod impute;
pub mod metrics;
pub mod online;
pub mod pipeline;
pub mod signature;
pub mod spatial;
pub mod storage;
pub mod supervisor;
pub mod tickets;
pub mod whatif;

pub use config::AtmConfig;
pub use error::{AtmError, AtmResult};
pub use pipeline::{run_box, BoxReport};
pub use storage::{ChunkStore, InMemoryStore, TraceStore};
