//! Fleet-scale evaluation: fans [`run_box`](crate::pipeline::run_box()) out
//! over many boxes in parallel and aggregates the per-box reports into the
//! fleet-level numbers the paper's figures plot.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use atm_resize::evaluate::{summarize, BoxOutcome, ReductionSummary};
use atm_tracegen::{BoxTrace, Resource};
use serde::{Deserialize, Serialize};

use crate::config::AtmConfig;
use crate::error::{AtmError, AtmResult};
use crate::pipeline::{run_box, BoxReport};
use crate::storage::TraceStore;

/// Which allocator's outcome to aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Allocator {
    /// ATM's greedy MCKP resizing.
    Atm,
    /// The stingy (peak-demand) baseline.
    Stingy,
    /// Max-min fairness.
    MaxMin,
}

/// A box that failed to evaluate, with the reason.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxFailure {
    /// The box's name.
    pub box_name: String,
    /// Stringified error.
    pub error: String,
}

/// Aggregated fleet evaluation results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Successful per-box reports.
    pub reports: Vec<BoxReport>,
    /// Boxes that failed (e.g. gappy traces).
    pub failures: Vec<BoxFailure>,
}

impl FleetReport {
    /// Mean final signature-to-original ratio across boxes (Fig. 6a).
    pub fn mean_final_ratio(&self) -> f64 {
        mean(self.reports.iter().map(|r| r.signature.final_ratio()))
    }

    /// Mean initial (post-clustering) signature ratio across boxes.
    pub fn mean_initial_ratio(&self) -> f64 {
        mean(self.reports.iter().map(|r| r.signature.initial_ratio()))
    }

    /// Mean in-sample spatial-model APE across boxes (fraction, Fig. 6b).
    pub fn mean_spatial_mape(&self) -> f64 {
        mean(
            self.reports
                .iter()
                .map(|r| r.signature.spatial_in_sample_mape),
        )
    }

    /// Per-box full-pipeline APE samples (fraction; the Fig. 9 "All" CDF).
    pub fn ape_samples(&self) -> Vec<f64> {
        self.reports.iter().map(|r| r.prediction.mape_all).collect()
    }

    /// Per-box peak APE samples (the Fig. 9 "Peak" CDF); boxes without
    /// peak windows are skipped.
    pub fn peak_ape_samples(&self) -> Vec<f64> {
        self.reports
            .iter()
            .filter_map(|r| r.prediction.mape_peak)
            .collect()
    }

    /// Cluster-count samples across boxes (Fig. 5).
    pub fn cluster_counts(&self) -> Vec<usize> {
        self.reports
            .iter()
            .map(|r| r.signature.cluster_count)
            .collect()
    }

    /// Boxes whose traces needed gap imputation.
    pub fn imputed_boxes(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| !r.imputation.is_empty())
            .count()
    }

    /// Gap samples imputed across the fleet.
    pub fn imputed_samples(&self) -> usize {
        self.reports
            .iter()
            .map(|r| r.imputation.total_imputed())
            .sum()
    }

    /// Per-box outcomes for one resource and allocator.
    pub fn outcomes(&self, resource: Resource, allocator: Allocator) -> Vec<BoxOutcome> {
        self.reports
            .iter()
            .flat_map(|r| {
                r.resizing.iter().filter(|rr| rr.resource == resource).map(
                    move |rr| match allocator {
                        Allocator::Atm => rr.atm,
                        Allocator::Stingy => rr.stingy,
                        Allocator::MaxMin => rr.maxmin,
                    },
                )
            })
            .collect()
    }

    /// Ticket-reduction summary for one resource and allocator — one bar
    /// of Figs. 8/10.
    pub fn reduction_summary(
        &self,
        resource: Resource,
        allocator: Allocator,
    ) -> Option<ReductionSummary> {
        summarize(&self.outcomes(resource, allocator)).ok()
    }
}

fn mean(iter: impl Iterator<Item = f64>) -> f64 {
    let values: Vec<f64> = iter.collect();
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Runs the ATM pipeline over every box, using `threads` worker threads
/// (1 = sequential). Boxes that fail are reported in
/// [`FleetReport::failures`] rather than aborting the sweep.
pub fn run_fleet(boxes: &[BoxTrace], config: &AtmConfig, threads: usize) -> FleetReport {
    let threads = threads.max(1).min(boxes.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, Result<BoxReport, String>)>> =
        Mutex::new(Vec::with_capacity(boxes.len()));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= boxes.len() {
                    break;
                }
                let result = run_box(&boxes[i], config).map_err(|e| e.to_string());
                results
                    .lock()
                    .expect("no panics while holding the lock")
                    .push((i, result));
            });
        }
    });

    let mut collected = results.into_inner().expect("threads joined");
    collected.sort_by_key(|(i, _)| *i);

    let mut reports = Vec::new();
    let mut failures = Vec::new();
    for (i, result) in collected {
        match result {
            Ok(r) => reports.push(r),
            Err(e) => failures.push(BoxFailure {
                box_name: boxes[i].name.clone(),
                error: e,
            }),
        }
    }
    FleetReport { reports, failures }
}

/// Multiplier from raw sample bytes to a box's estimated peak working set
/// during a pipeline run (demand splits, distance matrices, forecasts —
/// measured ~5–6× on the paper-shaped fleet; 8 leaves margin).
pub const WORKING_SET_MULTIPLIER: u64 = 8;

/// Controls for the streaming fleet runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Requested worker threads (1 = sequential; clamped like `run_fleet`).
    pub threads: usize,
    /// Memory budget in bytes for concurrently-resident box working sets;
    /// 0 = unlimited. The budget only clamps parallelism (fewer boxes in
    /// flight), never the result: reports are byte-identical at any
    /// thread count.
    pub memory_budget_bytes: u64,
}

impl StreamConfig {
    /// A stream config from an [`AtmConfig`]: compute threads (after any
    /// `ATM_THREADS` override already applied) and the configured
    /// `memory_budget_mb`.
    pub fn from_config(config: &AtmConfig) -> Self {
        StreamConfig {
            threads: config.compute.effective_threads(),
            memory_budget_bytes: (config.compute.memory_budget_mb as u64) << 20,
        }
    }

    /// Worker count after applying the memory budget: at most
    /// `budget / (per_box_bytes × WORKING_SET_MULTIPLIER)` boxes in
    /// flight, and always at least one (a budget smaller than a single box
    /// degrades to sequential, it does not abort).
    pub fn effective_threads(&self, per_box_bytes: u64) -> usize {
        let threads = self.threads.max(1);
        if self.memory_budget_bytes == 0 {
            return threads;
        }
        let per_box = per_box_bytes.saturating_mul(WORKING_SET_MULTIPLIER).max(1);
        let cap = (self.memory_budget_bytes / per_box).max(1);
        threads.min(usize::try_from(cap).unwrap_or(usize::MAX))
    }
}

/// Runs the ATM pipeline over every box of a [`TraceStore`], loading each
/// box on demand and dropping it once its report is computed, so peak
/// memory is `O(threads × box)` instead of `O(fleet)`.
///
/// Semantics mirror [`run_fleet`] exactly — same work-queue order, same
/// report assembly, byte-identical output for the same boxes at any thread
/// count — with one addition: a **storage** failure (I/O error, CRC
/// mismatch) is fatal and aborts the sweep with the lowest-index error
/// (first-error semantics, deterministic across thread counts), while
/// per-box *pipeline* failures still land in [`FleetReport::failures`].
pub fn run_fleet_streamed(
    store: &dyn TraceStore,
    config: &AtmConfig,
    stream: &StreamConfig,
) -> AtmResult<FleetReport> {
    let n = store.box_count();
    // Budget from the largest box in the store: metadata only, no samples.
    let mut per_box_bytes = 0u64;
    for i in 0..n {
        per_box_bytes = per_box_bytes.max(store.meta(i)?.sample_bytes());
    }
    let threads = stream.effective_threads(per_box_bytes).min(n.max(1));

    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    type Slot = (usize, Result<Result<BoxReport, String>, AtmError>);
    let results: Mutex<Vec<Slot>> = Mutex::new(Vec::with_capacity(n));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // `stop` is checked before *claiming*, so every index below
                // the first fatal one is already claimed and will finish:
                // the minimum-index fatal error is deterministic.
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let outcome = match store.load(i) {
                    Ok(b) => Ok(run_box(b.as_ref(), config).map_err(|e| e.to_string())),
                    Err(e) => {
                        stop.store(true, Ordering::Relaxed);
                        Err(e)
                    }
                };
                results
                    .lock()
                    .expect("no panics while holding the lock")
                    .push((i, outcome));
            });
        }
    });

    let mut collected = results.into_inner().expect("threads joined");
    collected.sort_by_key(|(i, _)| *i);

    let mut reports = Vec::new();
    let mut failures = Vec::new();
    for (i, outcome) in collected {
        match outcome {
            Err(fatal) => return Err(fatal),
            Ok(Ok(r)) => reports.push(r),
            Ok(Err(e)) => failures.push(BoxFailure {
                box_name: store.meta(i)?.name,
                error: e,
            }),
        }
    }
    Ok(FleetReport { reports, failures })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TemporalModel;
    use atm_tracegen::{generate_fleet, FleetConfig};

    fn small_fleet(gaps: f64) -> Vec<BoxTrace> {
        generate_fleet(&FleetConfig {
            num_boxes: 6,
            days: 3,
            gap_probability: gaps,
            ..FleetConfig::default()
        })
        .boxes
    }

    fn oracle_config() -> AtmConfig {
        AtmConfig {
            temporal: TemporalModel::Oracle,
            ..AtmConfig::fast_for_tests()
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let boxes = small_fleet(0.0);
        let cfg = oracle_config();
        let seq = run_fleet(&boxes, &cfg, 1);
        let par = run_fleet(&boxes, &cfg, 4);
        assert_eq!(seq.reports.len(), par.reports.len());
        // Same boxes, same order, same signature stats.
        for (a, b) in seq.reports.iter().zip(&par.reports) {
            assert_eq!(a.box_name, b.box_name);
            assert_eq!(a.signature, b.signature);
        }
    }

    #[test]
    fn gappy_boxes_reported_as_failures_when_imputation_disabled() {
        let boxes = small_fleet(1.0);
        let mut cfg = oracle_config();
        cfg.imputation.enabled = false;
        let report = run_fleet(&boxes, &cfg, 2);
        assert_eq!(report.reports.len() + report.failures.len(), boxes.len());
        assert!(!report.failures.is_empty());
        for f in &report.failures {
            assert!(f.error.contains("gap"), "{f:?}");
        }
    }

    #[test]
    fn gappy_boxes_imputed_by_default() {
        let boxes = small_fleet(1.0);
        let report = run_fleet(&boxes, &oracle_config(), 2);
        assert!(
            report.failures.is_empty(),
            "imputation should rescue gappy boxes: {:?}",
            report.failures
        );
        assert_eq!(report.reports.len(), boxes.len());
        assert!(report.imputed_boxes() > 0);
        assert!(report.imputed_samples() > 0);
    }

    #[test]
    fn aggregations_are_consistent() {
        let boxes = small_fleet(0.0);
        let report = run_fleet(&boxes, &oracle_config(), 2);
        assert!(!report.reports.is_empty());
        assert!(report.mean_final_ratio() > 0.0);
        assert!(report.mean_final_ratio() <= report.mean_initial_ratio() + 1e-12);
        assert_eq!(report.ape_samples().len(), report.reports.len());
        assert_eq!(report.cluster_counts().len(), report.reports.len());
        let atm = report
            .reduction_summary(Resource::Cpu, Allocator::Atm)
            .expect("boxes evaluated");
        let stingy = report
            .reduction_summary(Resource::Cpu, Allocator::Stingy)
            .expect("boxes evaluated");
        assert!(atm.total_after <= stingy.total_after);
    }

    #[test]
    fn empty_fleet_is_empty_report() {
        let report = run_fleet(&[], &oracle_config(), 4);
        assert!(report.reports.is_empty());
        assert!(report.failures.is_empty());
        assert_eq!(report.mean_final_ratio(), 0.0);
        assert!(report
            .reduction_summary(Resource::Cpu, Allocator::Atm)
            .is_none());
    }
}
