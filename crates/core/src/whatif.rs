//! Capacity what-if analysis.
//!
//! The paper frames resizing as shuffling a *fixed* capacity budget; a
//! natural operator question follows: *how much capacity does this box
//! actually need* to be (nearly) ticket-free under optimal resizing?
//! [`capacity_sweep`] answers it by sweeping the budget and resolving the
//! MCKP at each point, yielding a tickets-vs-capacity curve;
//! [`capacity_for_target`] inverts the curve by bisection.

use atm_resize::{greedy, ResizeProblem, VmDemand};
use atm_ticketing::ThresholdPolicy;
use atm_tracegen::{BoxTrace, Resource};
use serde::{Deserialize, Serialize};

use crate::error::{AtmError, AtmResult};

/// One point of the capacity sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Budget as a multiple of the box's current physical capacity.
    pub capacity_factor: f64,
    /// Absolute budget in capacity units.
    pub capacity: f64,
    /// Minimum tickets achievable at that budget (greedy MCKP).
    pub tickets: usize,
}

/// Builds the resize problem for a box's last `windows` observations of a
/// resource with free per-VM bounds.
fn problem_for(
    box_trace: &BoxTrace,
    resource: Resource,
    windows: usize,
    capacity: f64,
    policy: ThresholdPolicy,
) -> AtmResult<ResizeProblem> {
    let total = box_trace.window_count();
    if total < windows {
        return Err(AtmError::TraceTooShort {
            required: windows,
            actual: total,
        });
    }
    let vms = box_trace
        .vms
        .iter()
        .map(|vm| {
            let demand: Vec<f64> = vm.demand(resource)[total - windows..]
                .iter()
                .map(|&d| if d.is_finite() { d } else { 0.0 })
                .collect();
            VmDemand::new(vm.name.clone(), demand, 0.0, capacity)
        })
        .collect();
    Ok(ResizeProblem::new(vms, capacity, policy))
}

/// Sweeps the capacity budget over `factors` (multiples of the box's
/// physical capacity) and reports the minimum achievable tickets at each,
/// over the last `windows` observations.
///
/// # Errors
///
/// - [`AtmError::InvalidConfig`] for empty/invalid factors or threshold.
/// - [`AtmError::TraceTooShort`] if the trace has fewer than `windows`.
/// - Propagates resize errors.
pub fn capacity_sweep(
    box_trace: &BoxTrace,
    resource: Resource,
    threshold_pct: f64,
    windows: usize,
    factors: &[f64],
) -> AtmResult<Vec<SweepPoint>> {
    if factors.is_empty() || factors.iter().any(|&f| f <= 0.0 || !f.is_finite()) {
        return Err(AtmError::InvalidConfig(
            "factors must be positive and finite",
        ));
    }
    let policy = ThresholdPolicy::new(threshold_pct)
        .map_err(|_| AtmError::InvalidConfig("threshold must be in (0, 100)"))?;
    let base = box_trace.capacity(resource);
    let mut out = Vec::with_capacity(factors.len());
    for &factor in factors {
        let capacity = base * factor;
        let problem = problem_for(box_trace, resource, windows, capacity, policy)?;
        let allocation = greedy::solve(&problem)?;
        out.push(SweepPoint {
            capacity_factor: factor,
            capacity,
            tickets: allocation.tickets,
        });
    }
    Ok(out)
}

/// Finds (by bisection) the smallest capacity factor in
/// `[lo_factor, hi_factor]` whose optimal resizing yields at most
/// `max_tickets` tickets. Returns `None` if even `hi_factor` cannot meet
/// the target.
///
/// # Errors
///
/// Same conditions as [`capacity_sweep`].
pub fn capacity_for_target(
    box_trace: &BoxTrace,
    resource: Resource,
    threshold_pct: f64,
    windows: usize,
    max_tickets: usize,
    lo_factor: f64,
    hi_factor: f64,
) -> AtmResult<Option<f64>> {
    if lo_factor <= 0.0 || lo_factor >= hi_factor || !hi_factor.is_finite() || lo_factor.is_nan() {
        return Err(AtmError::InvalidConfig("need 0 < lo < hi"));
    }
    let tickets_at = |factor: f64| -> AtmResult<usize> {
        Ok(capacity_sweep(box_trace, resource, threshold_pct, windows, &[factor])?[0].tickets)
    };
    if tickets_at(hi_factor)? > max_tickets {
        return Ok(None);
    }
    let (mut lo, mut hi) = (lo_factor, hi_factor);
    if tickets_at(lo)? <= max_tickets {
        return Ok(Some(lo));
    }
    for _ in 0..40 {
        let mid = (lo + hi) / 2.0;
        if tickets_at(mid)? <= max_tickets {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo < 1e-4 {
            break;
        }
    }
    Ok(Some(hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_tracegen::{generate_box, FleetConfig};

    fn test_box() -> BoxTrace {
        generate_box(
            &FleetConfig {
                num_boxes: 1,
                days: 1,
                gap_probability: 0.0,
                hot_cpu_vm_probabilities: [0.0, 0.0, 1.0],
                ..FleetConfig::default()
            },
            2,
        )
    }

    #[test]
    fn sweep_is_monotone_in_capacity() {
        let b = test_box();
        let points =
            capacity_sweep(&b, Resource::Cpu, 60.0, 96, &[0.5, 0.8, 1.0, 1.5, 2.5]).unwrap();
        assert_eq!(points.len(), 5);
        for w in points.windows(2) {
            assert!(
                w[1].tickets <= w[0].tickets,
                "tickets rose with capacity: {points:?}"
            );
        }
        // Abundant capacity reaches zero tickets.
        assert_eq!(points.last().unwrap().tickets, 0);
    }

    #[test]
    fn target_inversion_matches_sweep() {
        let b = test_box();
        let factor = capacity_for_target(&b, Resource::Cpu, 60.0, 96, 0, 0.1, 4.0)
            .unwrap()
            .expect("abundant upper bound reaches zero tickets");
        // At the found factor the target holds...
        let at = capacity_sweep(&b, Resource::Cpu, 60.0, 96, &[factor]).unwrap();
        assert_eq!(at[0].tickets, 0);
        // ...and meaningfully below it, it does not.
        let below = capacity_sweep(&b, Resource::Cpu, 60.0, 96, &[factor * 0.7]).unwrap();
        assert!(below[0].tickets > 0, "factor {factor} not minimal");
    }

    #[test]
    fn unreachable_target_is_none() {
        let b = test_box();
        // A hair of capacity cannot silence a hot box.
        let result = capacity_for_target(&b, Resource::Cpu, 60.0, 96, 0, 0.001, 0.01).unwrap();
        assert!(result.is_none());
    }

    #[test]
    fn validation() {
        let b = test_box();
        assert!(capacity_sweep(&b, Resource::Cpu, 60.0, 96, &[]).is_err());
        assert!(capacity_sweep(&b, Resource::Cpu, 60.0, 96, &[0.0]).is_err());
        assert!(capacity_sweep(&b, Resource::Cpu, 120.0, 96, &[1.0]).is_err());
        assert!(capacity_sweep(&b, Resource::Cpu, 60.0, 10_000, &[1.0]).is_err());
        assert!(capacity_for_target(&b, Resource::Cpu, 60.0, 96, 0, 2.0, 1.0).is_err());
    }
}
