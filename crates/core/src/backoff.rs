//! Seeded decorrelated-jitter retry backoff, shared by every component
//! that waits out failures: the fleet supervisor's circuit breaker and
//! the serve-layer load/chaos clients.
//!
//! The scheme is the classic *decorrelated jitter*: each wait is drawn
//! uniformly from `[base, prev * 3]`, clamped to `cap`, from a seeded
//! RNG — so consecutive waits grow roughly geometrically but never
//! synchronize across independent retriers, and a given seed always
//! reproduces the same schedule. This module is the single home of that
//! math; `core::supervisor`'s breaker holds a [`Backoff`] instead of a
//! private copy, and the draw sequence is pinned byte-identical to the
//! pre-extraction breaker by `tests/determinism.rs` and the breaker's
//! own schedule tests.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The (base, cap) shape of a decorrelated-jitter schedule, without the
/// RNG state — cheap to copy and embed in configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Smallest wait, in milliseconds (also the first draw's lower edge).
    pub base_ms: u64,
    /// Largest wait, in milliseconds; every draw is clamped here.
    pub cap_ms: u64,
}

impl BackoffPolicy {
    /// A policy with the given bounds.
    pub fn new(base_ms: u64, cap_ms: u64) -> Self {
        BackoffPolicy { base_ms, cap_ms }
    }

    /// Instantiates the stateful schedule for one retrier.
    pub fn seeded(self, seed: u64) -> Backoff {
        Backoff {
            policy: self,
            prev_ms: self.base_ms,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

/// One retrier's stateful decorrelated-jitter schedule.
///
/// Each [`next_wait`](Self::next_wait) draws uniformly from
/// `[base, prev * 3]` (clamped to `cap`); [`reset`](Self::reset) snaps
/// the schedule back to `base` after a success. The RNG is consumed
/// exactly once per draw, so two schedules with the same seed and the
/// same call sequence produce identical waits.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: BackoffPolicy,
    prev_ms: u64,
    rng: StdRng,
}

impl Backoff {
    /// The schedule's (base, cap) shape.
    pub fn policy(&self) -> BackoffPolicy {
        self.policy
    }

    /// Draws the next wait.
    pub fn next_wait(&mut self) -> Duration {
        Duration::from_millis(self.next_wait_ms())
    }

    /// Draws the next wait in milliseconds.
    pub fn next_wait_ms(&mut self) -> u64 {
        let base = self.policy.base_ms;
        let hi = self.prev_ms.saturating_mul(3).max(base);
        let wait = self.rng.gen_range(base..=hi).min(self.policy.cap_ms);
        // Remember at least 1ms so a zero draw cannot freeze the
        // schedule at zero forever.
        self.prev_ms = wait.max(1);
        wait
    }

    /// Snaps the schedule back to `base` (after a success).
    pub fn reset(&mut self) {
        self.prev_ms = self.policy.base_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let mut a = BackoffPolicy::new(10, 500).seeded(seed);
            let mut b = BackoffPolicy::new(10, 500).seeded(seed);
            for _ in 0..32 {
                assert_eq!(a.next_wait_ms(), b.next_wait_ms());
            }
        }
    }

    #[test]
    fn waits_stay_in_bounds_and_reset_restarts() {
        let mut backoff = BackoffPolicy::new(10, 90).seeded(7);
        let mut prev = 10u64;
        for _ in 0..64 {
            let w = backoff.next_wait_ms();
            assert!(w >= 10, "wait {w} below base");
            assert!(w <= 90, "wait {w} above cap");
            assert!(w <= prev.saturating_mul(3).max(10));
            prev = w.max(1);
        }
        backoff.reset();
        let w = backoff.next_wait_ms();
        assert!(w <= 30, "post-reset draw must restart from base: {w}");
    }

    #[test]
    fn zero_policy_never_panics() {
        let mut backoff = BackoffPolicy::new(0, 0).seeded(3);
        for _ in 0..8 {
            assert_eq!(backoff.next_wait_ms(), 0);
        }
    }
}
