//! Serializable, human-readable view of an [`atm_obs`] metrics snapshot.
//!
//! [`atm_obs`] itself is dependency-free, so its [`MetricsSnapshot`]
//! renders JSON by hand and carries no serde impls. Reports that embed
//! metrics ([`crate::pipeline::BoxReport`],
//! [`crate::supervisor::FleetReport`]) need a serde-derived,
//! `PartialEq`-comparable type instead — that is [`MetricsReport`].
//!
//! Only the **deterministic** sections of a snapshot (counters, gauges,
//! integer histograms) are carried over; wall-clock timings are
//! deliberately dropped so a report stays byte-identical across thread
//! counts and hosts (`tests/determinism.rs` relies on this).

use atm_obs::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Deterministic metrics embedded in a report, sorted by metric name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MetricsReport {
    /// Monotonic counters as `(name, value)`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges as `(name, value)`, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Fixed-bucket integer histograms, sorted by name.
    pub histograms: Vec<HistogramReport>,
}

/// One histogram in a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramReport {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Non-empty buckets as `("le=<bound>" | "inf", count)`.
    pub buckets: Vec<(String, u64)>,
}

impl MetricsReport {
    /// Build a report from counters only (a per-run summary such as the
    /// one [`crate::pipeline::run_box_observed`] embeds in its
    /// [`BoxReport`](crate::pipeline::BoxReport)). Entries are sorted by
    /// name to keep the report canonical.
    pub fn from_counters(counters: Vec<(&str, u64)>) -> Self {
        let mut counters: Vec<(String, u64)> = counters
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        counters.sort();
        MetricsReport {
            counters,
            gauges: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }
}

impl From<&MetricsSnapshot> for MetricsReport {
    /// Carry over the deterministic sections; drop timings.
    fn from(snap: &MetricsSnapshot) -> Self {
        MetricsReport {
            counters: snap.counters.clone(),
            gauges: snap.gauges.clone(),
            histograms: snap
                .histograms
                .iter()
                .map(|h| HistogramReport {
                    name: h.name.clone(),
                    count: h.count,
                    sum: h.sum,
                    buckets: h.buckets.clone(),
                })
                .collect(),
        }
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "metrics:")?;
        for (name, value) in &self.counters {
            writeln!(f, "  {name:<40} {value:>12}")?;
        }
        for (name, value) in &self.gauges {
            writeln!(f, "  {name:<40} {value:>12} (gauge)")?;
        }
        for h in &self.histograms {
            let mean = if h.count == 0 {
                0.0
            } else {
                h.sum as f64 / h.count as f64
            };
            writeln!(
                f,
                "  {:<40} {:>12} obs, sum {}, mean {:.2}",
                h.name, h.count, h.sum, mean
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_obs::Obs;

    #[test]
    fn from_snapshot_drops_timings() {
        let obs = Obs::enabled(true);
        obs.add("pipeline.runs", 2);
        obs.set_gauge("fleet.boxes", 3);
        obs.observe("online.tickets_before", 7);
        obs.observe_ms("span.pipeline", 1.5);
        let report = MetricsReport::from(&obs.metrics_snapshot());
        assert_eq!(report.counter("pipeline.runs"), Some(2));
        assert_eq!(report.gauge("fleet.boxes"), Some(3));
        assert_eq!(report.histograms.len(), 1);
        assert_eq!(report.histograms[0].count, 1);
        // Serde round-trip is lossless (important: reports embedding this
        // type are compared byte-for-byte in the determinism suite).
        let json = serde_json::to_string(&report).expect("serializes");
        let back: MetricsReport = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, report);
    }

    #[test]
    fn from_counters_sorts_by_name() {
        let r = MetricsReport::from_counters(vec![("z", 1), ("a", 2)]);
        assert_eq!(r.counters[0].0, "a");
        assert_eq!(r.counter("z"), Some(1));
        assert!(!format!("{r}").is_empty());
    }
}
