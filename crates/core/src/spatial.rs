//! Spatial models: each dependent demand series as a linear combination of
//! the signature series (paper eq. 1, fitted by OLS — Section III-B).
//!
//! Prediction of a dependent series costs one dot product per window —
//! the "negligible cost" the paper contrasts with neural-network training.

use atm_stats::ridge::{self, RidgeFit};
use atm_stats::{ols, OlsFit, StatsError};
use serde::{Deserialize, Serialize};

use crate::error::{AtmError, AtmResult};

/// How one dependent series is predicted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DependentModel {
    /// OLS on all signature series.
    Ols(OlsFit),
    /// Ridge regression on all signature series (used when a positive
    /// regularization strength is configured; robust to collinear or
    /// numerous signatures).
    Ridge(RidgeFit),
    /// Fallback: simple regression on the single best-correlated
    /// signature (used when the full OLS is singular).
    Simple {
        /// Index into the signature list.
        signature: usize,
        /// Intercept `a0`.
        intercept: f64,
        /// Slope `a`.
        slope: f64,
    },
    /// Last-resort fallback: the series' training mean (used for constant
    /// or degenerate dependents).
    Mean(f64),
}

/// A fitted spatial model for one box: signatures + per-dependent models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialModel {
    /// Indices (into the box's column list) of the signature series.
    pub signature_indices: Vec<usize>,
    /// Indices of the dependent series, aligned with `models`.
    pub dependent_indices: Vec<usize>,
    /// One model per dependent series.
    pub models: Vec<DependentModel>,
}

impl SpatialModel {
    /// Fits the spatial model: regresses every dependent column on the
    /// signature columns over the training window (plain OLS).
    ///
    /// # Errors
    ///
    /// - [`AtmError::Empty`] on empty inputs or out-of-range indices.
    pub fn fit(
        columns: &[Vec<f64>],
        signature_indices: &[usize],
        dependent_indices: &[usize],
    ) -> AtmResult<SpatialModel> {
        Self::fit_with(columns, signature_indices, dependent_indices, 0.0)
    }

    /// Fits the spatial model with an L2 penalty `ridge_lambda` on the
    /// dependent regressions (`0` = plain OLS).
    ///
    /// # Errors
    ///
    /// - [`AtmError::Empty`] on empty inputs or out-of-range indices.
    /// - [`AtmError::Regression`] for a negative/non-finite lambda.
    pub fn fit_with(
        columns: &[Vec<f64>],
        signature_indices: &[usize],
        dependent_indices: &[usize],
        ridge_lambda: f64,
    ) -> AtmResult<SpatialModel> {
        if columns.is_empty() || signature_indices.is_empty() {
            return Err(AtmError::Empty);
        }
        if signature_indices
            .iter()
            .chain(dependent_indices)
            .any(|&i| i >= columns.len())
        {
            return Err(AtmError::Empty);
        }
        let n = columns[0].len();
        let sig_rows: Vec<Vec<f64>> = (0..n)
            .map(|t| signature_indices.iter().map(|&s| columns[s][t]).collect())
            .collect();

        let mut models = Vec::with_capacity(dependent_indices.len());
        for &d in dependent_indices {
            let y = &columns[d];
            let model = if ridge_lambda > 0.0 {
                match ridge::fit(&sig_rows, y, ridge_lambda) {
                    Ok(f) => DependentModel::Ridge(f),
                    Err(StatsError::Singular) => fallback_model(columns, signature_indices, y),
                    Err(e) => return Err(AtmError::Regression(e.to_string())),
                }
            } else {
                match ols::fit(&sig_rows, y, true) {
                    Ok(f) => DependentModel::Ols(f),
                    Err(StatsError::Singular) | Err(StatsError::Underdetermined { .. }) => {
                        fallback_model(columns, signature_indices, y)
                    }
                    Err(e) => return Err(AtmError::Regression(e.to_string())),
                }
            };
            models.push(model);
        }
        Ok(SpatialModel {
            signature_indices: signature_indices.to_vec(),
            dependent_indices: dependent_indices.to_vec(),
            models,
        })
    }

    /// Predicts every dependent series given (predicted) signature series.
    ///
    /// `signature_predictions[s]` must align with `signature_indices[s]`;
    /// all must share the same horizon. Returns one predicted series per
    /// dependent, aligned with `dependent_indices`.
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::Empty`] on arity mismatches.
    pub fn predict(&self, signature_predictions: &[Vec<f64>]) -> AtmResult<Vec<Vec<f64>>> {
        if signature_predictions.len() != self.signature_indices.len() {
            return Err(AtmError::Empty);
        }
        let horizon = signature_predictions.first().map_or(0, Vec::len);
        if signature_predictions.iter().any(|p| p.len() != horizon) {
            return Err(AtmError::Empty);
        }
        let mut out = Vec::with_capacity(self.models.len());
        for model in &self.models {
            let series: Vec<f64> = match model {
                DependentModel::Ols(fit) => (0..horizon)
                    .map(|t| {
                        let row: Vec<f64> = signature_predictions.iter().map(|p| p[t]).collect();
                        fit.predict_one(&row).unwrap_or(f64::NAN)
                    })
                    .collect(),
                DependentModel::Ridge(fit) => (0..horizon)
                    .map(|t| {
                        let row: Vec<f64> = signature_predictions.iter().map(|p| p[t]).collect();
                        fit.predict_one(&row).unwrap_or(f64::NAN)
                    })
                    .collect(),
                DependentModel::Simple {
                    signature,
                    intercept,
                    slope,
                } => signature_predictions[*signature]
                    .iter()
                    .map(|&x| intercept + slope * x)
                    .collect(),
                DependentModel::Mean(m) => vec![*m; horizon],
            };
            out.push(series);
        }
        Ok(out)
    }

    /// In-sample fitted series for every dependent (used to score the
    /// spatial models alone, paper Fig. 6b).
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::Empty`] on arity mismatches.
    pub fn fitted(&self, columns: &[Vec<f64>]) -> AtmResult<Vec<Vec<f64>>> {
        let sig_train: Vec<Vec<f64>> = self
            .signature_indices
            .iter()
            .map(|&s| columns[s].clone())
            .collect();
        self.predict(&sig_train)
    }

    /// Mean in-sample APE across all dependent series (fraction, not
    /// percent). Returns 0 when there are no dependents (a pure-signature
    /// model reproduces the data exactly through temporal models).
    ///
    /// # Errors
    ///
    /// Returns [`AtmError::Empty`] on arity mismatches.
    pub fn in_sample_mape(&self, columns: &[Vec<f64>]) -> AtmResult<f64> {
        if self.models.is_empty() {
            return Ok(0.0);
        }
        let fitted = self.fitted(columns)?;
        let mut apes = Vec::new();
        for (f, &d) in fitted.iter().zip(&self.dependent_indices) {
            if let Ok(e) = atm_timeseries::metrics::mape(&columns[d], f) {
                apes.push(e);
            }
        }
        if apes.is_empty() {
            return Ok(0.0);
        }
        Ok(apes.iter().sum::<f64>() / apes.len() as f64)
    }
}

/// Fallback when the full OLS is singular: simple regression on the
/// best-correlated signature, else the training mean.
fn fallback_model(columns: &[Vec<f64>], signature_indices: &[usize], y: &[f64]) -> DependentModel {
    let mut best: Option<(usize, f64)> = None;
    for (pos, &s) in signature_indices.iter().enumerate() {
        if let Ok(r) = atm_timeseries::stats::pearson(&columns[s], y) {
            let score = r.abs();
            if best.is_none_or(|(_, b)| score > b) {
                best = Some((pos, score));
            }
        }
    }
    if let Some((pos, _)) = best {
        if let Ok((a0, a, _)) = ols::fit_simple(&columns[signature_indices[pos]], y) {
            return DependentModel::Simple {
                signature: pos,
                intercept: a0,
                slope: a,
            };
        }
    }
    let mean = if y.is_empty() {
        0.0
    } else {
        y.iter().sum::<f64>() / y.len() as f64
    };
    DependentModel::Mean(mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(i: usize, seed: u64) -> f64 {
        let mut z = (i as u64).wrapping_add(seed.wrapping_mul(0x9E3779B97F4A7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }

    fn sig(n: usize, seed: u64) -> Vec<f64> {
        (0..n)
            .map(|t| 40.0 + 20.0 * (t as f64 * 0.2 + seed as f64).sin() + noise(t, seed))
            .collect()
    }

    #[test]
    fn exact_linear_dependents_recovered() {
        let n = 96;
        let s0 = sig(n, 1);
        let s1 = sig(n, 2);
        let d: Vec<f64> = (0..n).map(|t| 3.0 + 0.5 * s0[t] + 0.25 * s1[t]).collect();
        let columns = vec![s0.clone(), s1.clone(), d.clone()];
        let m = SpatialModel::fit(&columns, &[0, 1], &[2]).unwrap();
        let err = m.in_sample_mape(&columns).unwrap();
        assert!(err < 1e-9, "in-sample error {err}");
        // Out-of-sample: predict from shifted signature futures.
        let f0: Vec<f64> = s0.iter().map(|v| v + 1.0).collect();
        let f1: Vec<f64> = s1.iter().map(|v| v - 2.0).collect();
        let preds = m.predict(&[f0.clone(), f1.clone()]).unwrap();
        for t in 0..n {
            let expect = 3.0 + 0.5 * f0[t] + 0.25 * f1[t];
            assert!((preds[0][t] - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn collinear_signatures_fall_back_to_simple() {
        let n = 64;
        let s0 = sig(n, 3);
        let s1: Vec<f64> = s0.iter().map(|v| 2.0 * v).collect(); // collinear
        let d: Vec<f64> = s0.iter().map(|v| 1.0 + 0.9 * v).collect();
        let columns = vec![s0, s1, d];
        let m = SpatialModel::fit(&columns, &[0, 1], &[2]).unwrap();
        assert!(matches!(m.models[0], DependentModel::Simple { .. }));
        let err = m.in_sample_mape(&columns).unwrap();
        assert!(err < 1e-6, "{err}");
    }

    #[test]
    fn constant_dependent_falls_back_to_mean() {
        let n = 64;
        let s0 = sig(n, 4);
        let d = vec![25.0; n];
        let columns = vec![s0, d];
        let m = SpatialModel::fit(&columns, &[0], &[1]).unwrap();
        // OLS fits a constant exactly (zero slope), or falls back to mean;
        // either way in-sample error is ~0 and predictions are constant.
        let preds = m.predict(&[vec![10.0, 20.0, 30.0]]).unwrap();
        for &v in &preds[0] {
            assert!((v - 25.0).abs() < 1e-6);
        }
    }

    #[test]
    fn no_dependents_is_trivially_perfect() {
        let columns = vec![sig(32, 5)];
        let m = SpatialModel::fit(&columns, &[0], &[]).unwrap();
        assert_eq!(m.in_sample_mape(&columns).unwrap(), 0.0);
        assert!(m.predict(&[vec![1.0, 2.0]]).unwrap().is_empty());
    }

    #[test]
    fn arity_validation() {
        let columns = vec![sig(32, 6), sig(32, 7)];
        let m = SpatialModel::fit(&columns, &[0], &[1]).unwrap();
        // Wrong signature count on predict.
        assert!(m.predict(&[vec![1.0], vec![2.0]]).is_err());
        // Ragged horizons.
        let m2 = SpatialModel::fit(&columns, &[0, 1], &[]).unwrap();
        assert!(m2.predict(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        // Bad indices at fit time.
        assert!(SpatialModel::fit(&columns, &[5], &[]).is_err());
        assert!(SpatialModel::fit(&columns, &[], &[0]).is_err());
        assert!(SpatialModel::fit(&[], &[0], &[]).is_err());
    }

    #[test]
    fn ridge_handles_collinear_signatures_directly() {
        let n = 64;
        let s0 = sig(n, 11);
        let s1: Vec<f64> = s0.iter().map(|v| 2.0 * v).collect();
        let d: Vec<f64> = s0.iter().map(|v| 1.0 + 0.9 * v).collect();
        let columns = vec![s0, s1, d.clone()];
        let m = SpatialModel::fit_with(&columns, &[0, 1], &[2], 1.0).unwrap();
        assert!(matches!(m.models[0], DependentModel::Ridge(_)));
        let err = m.in_sample_mape(&columns).unwrap();
        assert!(err < 0.05, "ridge in-sample error {err}");
    }

    #[test]
    fn ridge_lambda_zero_equals_ols_fit() {
        let n = 64;
        let s0 = sig(n, 12);
        let d: Vec<f64> = s0.iter().map(|v| 2.0 + 0.5 * v).collect();
        let columns = vec![s0, d];
        let plain = SpatialModel::fit(&columns, &[0], &[1]).unwrap();
        let zero = SpatialModel::fit_with(&columns, &[0], &[1], 0.0).unwrap();
        assert_eq!(plain, zero);
    }

    #[test]
    fn noisy_dependents_fit_approximately() {
        let n = 192;
        let s0 = sig(n, 8);
        let d: Vec<f64> = (0..n)
            .map(|t| 10.0 + 0.8 * s0[t] + 2.0 * noise(t, 99))
            .collect();
        let columns = vec![s0, d];
        let m = SpatialModel::fit(&columns, &[0], &[1]).unwrap();
        let err = m.in_sample_mape(&columns).unwrap();
        assert!(err < 0.1, "noisy linear fit error {err}");
    }
}
