//! Signature-set search (paper Section III-A, Fig. 4).
//!
//! Step 1 clusters the box's demand series and takes one representative
//! per cluster (the cluster *medoid* for DTW; the top-ranked series for
//! CBC). Step 2 detects multicollinearity among the initial signatures via
//! VIF (> 4) and removes series expressible as linear combinations of the
//! others through backward stepwise regression.

use atm_clustering::cbc::{self, CbcConfig};
use atm_clustering::dtw::{dtw_distance, dtw_distance_banded};
use atm_clustering::hierarchical::{cluster_with_silhouette_threaded, paper_k_range, Linkage};
use atm_clustering::prefilter::build_matrix_pruned;
use atm_clustering::DistanceMatrix;
use atm_obs::Obs;
use atm_stats::stepwise::{backward_eliminate, StepwiseConfig};
use atm_timeseries::transform::znorm;
use atm_tracegen::{Resource, SeriesKey};
use serde::{Deserialize, Serialize};

use crate::config::{ClusterMethod, ComputeConfig};
use crate::error::{AtmError, AtmResult};

/// Work counters from one signature search, suitable for metrics.
///
/// Deterministic: every field is a pure function of the inputs (the
/// kernel's DP geometry and the silhouette sweep are bit-deterministic),
/// so values are identical for any thread count. DTW fields are only
/// non-zero when the optimized kernel ran (the naive reference paths
/// count pairs but not cells).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// DTW pairs evaluated for the distance matrix.
    pub dtw_pairs: u64,
    /// DP cells computed by the optimized kernel.
    pub dtw_dp_cells: u64,
    /// Pairs abandoned early by the kernel's lower bounds (always zero in
    /// a matrix build — every exact distance is needed — but non-zero in
    /// nearest-neighbour workloads that reuse this accounting).
    pub dtw_abandons: u64,
    /// Cluster counts `k` evaluated by the silhouette model selection.
    pub silhouette_candidates: u64,
}

/// Result of the two-step signature search over a set of series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignatureOutcome {
    /// Keys of all series considered, aligned with the input columns.
    pub keys: Vec<SeriesKey>,
    /// Indices of the initial signatures (after Step 1 clustering).
    pub initial_signatures: Vec<usize>,
    /// Indices of the final signatures (after Step 2 stepwise pruning).
    pub final_signatures: Vec<usize>,
    /// Number of clusters found in Step 1.
    pub cluster_count: usize,
    /// Mean silhouette of the chosen clustering (DTW only).
    pub silhouette: Option<f64>,
}

impl SignatureOutcome {
    /// Signature-to-original ratio after Step 1 (paper Fig. 6a
    /// "Clustering").
    pub fn initial_ratio(&self) -> f64 {
        self.initial_signatures.len() as f64 / self.keys.len() as f64
    }

    /// Signature-to-original ratio after Step 2 (paper Fig. 6a
    /// "Stepwise").
    pub fn final_ratio(&self) -> f64 {
        self.final_signatures.len() as f64 / self.keys.len() as f64
    }

    /// Indices of the dependent series (everything not in the final
    /// signature set).
    pub fn dependents(&self) -> Vec<usize> {
        (0..self.keys.len())
            .filter(|i| !self.final_signatures.contains(i))
            .collect()
    }

    /// How many final signatures are CPU vs RAM series (paper Fig. 5's
    /// signature-type breakdown).
    pub fn signature_resource_counts(&self) -> (usize, usize) {
        let cpu = self
            .final_signatures
            .iter()
            .filter(|&&i| self.keys[i].resource == Resource::Cpu)
            .count();
        (cpu, self.final_signatures.len() - cpu)
    }
}

/// Runs the two-step signature search.
///
/// `columns[i]` is the training demand series for `keys[i]`; all columns
/// must be equal-length and gap-free.
///
/// # Errors
///
/// - [`AtmError::Empty`] for empty input or mismatched keys/columns.
/// - [`AtmError::Clustering`] if Step 1 fails.
/// - [`AtmError::Regression`] if Step 2 fails irrecoverably.
pub fn search(
    keys: &[SeriesKey],
    columns: &[Vec<f64>],
    method: &ClusterMethod,
    stepwise: &StepwiseConfig,
    znorm_for_dtw: bool,
) -> AtmResult<SignatureOutcome> {
    search_with(
        keys,
        columns,
        method,
        stepwise,
        znorm_for_dtw,
        &ComputeConfig::default(),
    )
}

/// [`search`] with explicit [`ComputeConfig`] control over intra-box
/// parallelism and the DTW kernel. `search` is equivalent to calling this
/// with `ComputeConfig::default()` (sequential, exact, optimized kernel);
/// every compute setting except a positive `dtw_band` is
/// result-preserving, so outcomes are byte-identical across thread counts
/// and kernels.
///
/// # Errors
///
/// Same conditions as [`search`].
pub fn search_with(
    keys: &[SeriesKey],
    columns: &[Vec<f64>],
    method: &ClusterMethod,
    stepwise: &StepwiseConfig,
    znorm_for_dtw: bool,
    compute: &ComputeConfig,
) -> AtmResult<SignatureOutcome> {
    search_observed(
        keys,
        columns,
        method,
        stepwise,
        znorm_for_dtw,
        compute,
        &Obs::disabled(),
    )
    .map(|(outcome, _)| outcome)
}

/// [`search_with`] instrumented through an [`Obs`] handle: records
/// `signature.*` spans and `clustering.*` counters, and returns the
/// per-run [`SearchStats`] alongside the outcome. With a disabled handle
/// this is exactly `search_with` plus a cheap stats tally.
///
/// # Errors
///
/// Same conditions as [`search`].
#[allow(clippy::too_many_arguments)]
pub fn search_observed(
    keys: &[SeriesKey],
    columns: &[Vec<f64>],
    method: &ClusterMethod,
    stepwise: &StepwiseConfig,
    znorm_for_dtw: bool,
    compute: &ComputeConfig,
    obs: &Obs,
) -> AtmResult<(SignatureOutcome, SearchStats)> {
    if keys.is_empty() || keys.len() != columns.len() {
        return Err(AtmError::Empty);
    }
    if columns.iter().any(|c| c.is_empty()) {
        return Err(AtmError::Empty);
    }

    let mut stats = SearchStats::default();
    let (initial, cluster_count, silhouette) = match method {
        ClusterMethod::Dtw { linkage } => {
            step1_dtw(columns, *linkage, znorm_for_dtw, compute, obs, &mut stats)?
        }
        ClusterMethod::Cbc { rho_threshold } => step1_cbc(columns, *rho_threshold)?,
        ClusterMethod::Features { linkage } => {
            step1_features(columns, *linkage, compute, obs, &mut stats)?
        }
    };

    let final_signatures = {
        let _span = obs.span("signature.stepwise");
        step2_stepwise(columns, &initial, stepwise)?
    };

    obs.add("clustering.dtw.pairs", stats.dtw_pairs);
    obs.add("clustering.dtw.dp_cells", stats.dtw_dp_cells);
    obs.add("clustering.dtw.early_abandons", stats.dtw_abandons);
    obs.add(
        "clustering.silhouette.candidates",
        stats.silhouette_candidates,
    );

    Ok((
        SignatureOutcome {
            keys: keys.to_vec(),
            initial_signatures: initial,
            final_signatures,
            cluster_count,
            silhouette,
        },
        stats,
    ))
}

/// Step 1, DTW flavour: pairwise DTW distances (on z-normalized series
/// when configured), hierarchical clustering over `k ∈ [2, n/2]` with
/// silhouette selection, medoid extraction.
fn step1_dtw(
    columns: &[Vec<f64>],
    linkage: Linkage,
    znorm_series: bool,
    compute: &ComputeConfig,
    obs: &Obs,
    stats: &mut SearchStats,
) -> AtmResult<(Vec<usize>, usize, Option<f64>)> {
    let n = columns.len();
    if n == 1 {
        return Ok((vec![0], 1, None));
    }
    // Normalize (constant series become all-zero, which DTW handles).
    let prepared: Vec<Vec<f64>> = columns
        .iter()
        .map(|c| {
            if znorm_series {
                znorm(c)
                    .map(|(z, _, _)| z)
                    .unwrap_or_else(|_| vec![0.0; c.len()])
            } else {
                c.clone()
            }
        })
        .collect();

    let threads = compute.effective_threads();
    let band = compute.dtw_band;
    let distances = {
        let _span = obs.span("signature.distance_matrix");
        if compute.optimized_kernel {
            // The pruned builder runs per-thread kernel workspaces and is
            // bit-identical to the naive DP (and to `dtw_distance_banded`
            // when banded); an infinite cutoff makes the lower-bound
            // prefilter inert, so every exact distance is materialized.
            let band = if band == 0 { None } else { Some(band) };
            let (matrix, pruned) = build_matrix_pruned(&prepared, band, f64::INFINITY, threads)?;
            stats.dtw_pairs += pruned.kernel.pairs;
            stats.dtw_dp_cells += pruned.kernel.dp_cells;
            stats.dtw_abandons += pruned.kernel.abandons();
            matrix
        } else if band > 0 {
            DistanceMatrix::build_parallel(n, threads, |i, j| {
                dtw_distance_banded(&prepared[i], &prepared[j], band).map_err(AtmError::from)
            })?
        } else {
            DistanceMatrix::build_parallel(n, threads, |i, j| {
                dtw_distance(&prepared[i], &prepared[j]).map_err(AtmError::from)
            })?
        }
    };
    if !compute.optimized_kernel {
        // Naive reference paths: the pair count is still knowable.
        stats.dtw_pairs += (n * (n - 1) / 2) as u64;
    }
    let (k_min, k_max) = paper_k_range(n);
    stats.silhouette_candidates += (k_max - k_min + 1) as u64;
    let selected = {
        let _span = obs.span("signature.model_selection");
        cluster_with_silhouette_threaded(&distances, linkage, k_min, k_max, threads)?
    };
    let medoids = selected.clustering.medoids(&distances)?;
    Ok((medoids, selected.clustering.k(), Some(selected.silhouette)))
}

/// Step 1, feature-based flavour: moments/autocorrelation features,
/// Euclidean distances, hierarchical + silhouette, medoid signatures.
fn step1_features(
    columns: &[Vec<f64>],
    linkage: Linkage,
    compute: &ComputeConfig,
    obs: &Obs,
    stats: &mut SearchStats,
) -> AtmResult<(Vec<usize>, usize, Option<f64>)> {
    let n = columns.len();
    if n == 1 {
        return Ok((vec![0], 1, None));
    }
    let seasonal_lag = (columns[0].len() / 2).clamp(1, 96);
    let distances = {
        let _span = obs.span("signature.distance_matrix");
        atm_clustering::features::feature_distance_matrix(columns, seasonal_lag)?
    };
    let (k_min, k_max) = paper_k_range(n);
    stats.silhouette_candidates += (k_max - k_min + 1) as u64;
    let selected = {
        let _span = obs.span("signature.model_selection");
        cluster_with_silhouette_threaded(
            &distances,
            linkage,
            k_min,
            k_max,
            compute.effective_threads(),
        )?
    };
    let medoids = selected.clustering.medoids(&distances)?;
    Ok((medoids, selected.clustering.k(), Some(selected.silhouette)))
}

/// Step 1, CBC flavour.
fn step1_cbc(
    columns: &[Vec<f64>],
    rho_threshold: f64,
) -> AtmResult<(Vec<usize>, usize, Option<f64>)> {
    let outcome = cbc::cluster(
        columns,
        &CbcConfig {
            rho_threshold,
            absolute: false,
        },
    )?;
    let k = outcome.clustering.k();
    Ok((outcome.signatures, k, None))
}

/// Step 2: VIF-driven backward stepwise over the initial signature
/// columns. Indices are mapped back into the original column space.
fn step2_stepwise(
    columns: &[Vec<f64>],
    initial: &[usize],
    config: &StepwiseConfig,
) -> AtmResult<Vec<usize>> {
    if initial.len() <= 1 {
        return Ok(initial.to_vec());
    }
    let sig_columns: Vec<Vec<f64>> = initial.iter().map(|&i| columns[i].clone()).collect();
    let outcome = backward_eliminate(&sig_columns, config)
        .map_err(|e| AtmError::Regression(e.to_string()))?;
    Ok(outcome.kept.iter().map(|&k| initial[k]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_stats::stepwise::StepwiseConfig;

    fn noise(i: usize, seed: u64) -> f64 {
        let mut z = (i as u64).wrapping_add(seed.wrapping_mul(0x9E3779B97F4A7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }

    fn family(n: usize, scale: f64, offset: f64, seed: u64) -> Vec<f64> {
        (0..n)
            .map(|t| {
                offset + scale * (20.0 + 15.0 * (t as f64 * 0.26).sin()) + 0.5 * noise(t, seed)
            })
            .collect()
    }

    fn independent(n: usize, seed: u64) -> Vec<f64> {
        (0..n)
            .map(|t| 30.0 + 10.0 * (t as f64 * 0.11 + seed as f64).cos() + 5.0 * noise(t, seed))
            .collect()
    }

    fn keys(n: usize) -> Vec<SeriesKey> {
        (0..n)
            .map(|i| {
                SeriesKey::new(
                    i / 2,
                    if i % 2 == 0 {
                        Resource::Cpu
                    } else {
                        Resource::Ram
                    },
                )
            })
            .collect()
    }

    #[test]
    fn cbc_reduces_correlated_family() {
        // 3 linearly dependent + 1 independent: CBC groups the family, so
        // 2 signatures remain.
        let n = 96;
        let cols = vec![
            family(n, 1.0, 0.0, 1),
            family(n, 0.7, 30.0, 2),
            family(n, 1.3, -5.0, 3),
            independent(n, 77),
        ];
        let out = search(
            &keys(4),
            &cols,
            &ClusterMethod::cbc(),
            &StepwiseConfig::default(),
            true,
        )
        .unwrap();
        assert_eq!(out.final_signatures.len(), 2, "{out:?}");
        assert_eq!(out.dependents().len(), 2);
        assert!(out.final_ratio() <= out.initial_ratio() + 1e-12);
    }

    #[test]
    fn dtw_clusters_shape_families() {
        let n = 96;
        let cols = vec![
            family(n, 1.0, 0.0, 1),
            family(n, 1.0, 1.0, 2),
            independent(n, 50),
            independent(n, 51),
        ];
        let out = search(
            &keys(4),
            &cols,
            &ClusterMethod::dtw(),
            &StepwiseConfig::default(),
            true,
        )
        .unwrap();
        assert!(out.cluster_count >= 2);
        assert!(!out.final_signatures.is_empty());
        assert!(out.silhouette.is_some());
        assert!(out.final_ratio() <= 1.0);
    }

    #[test]
    fn stepwise_prunes_multicollinear_signatures() {
        // Three CBC singletons where one is a linear combination of the
        // other two — the paper's motivating example for Step 2.
        let n = 120;
        // Orthogonal bases (sin vs cos) keep a ⟂ b; c mixes both so its
        // pairwise correlations stay below the clustering threshold while
        // being an exact linear combination.
        let a: Vec<f64> = (0..n)
            .map(|t| 30.0 + 10.0 * (t as f64 * 0.11).cos() + 0.5 * noise(t, 5))
            .collect();
        let b: Vec<f64> = (0..n)
            .map(|t| 30.0 + 10.0 * (t as f64 * 0.11).sin() + 0.5 * noise(t, 31))
            .collect();
        let c: Vec<f64> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| 5.0 + 0.4 * x + 0.6 * y)
            .collect();
        // ρ_Th = 0.9 keeps the three series as CBC singletons (their
        // pairwise correlations sit below 0.9), so the collinearity is
        // only discoverable by Step 2.
        let out = search(
            &keys(3),
            [a, b, c].as_ref(),
            &ClusterMethod::Cbc { rho_threshold: 0.9 },
            &StepwiseConfig::default(),
            true,
        )
        .unwrap();
        assert!(
            out.final_signatures.len() < out.initial_signatures.len(),
            "stepwise did not prune: {out:?}"
        );
    }

    #[test]
    fn single_series_is_its_own_signature() {
        let out = search(
            &keys(1),
            [independent(64, 9)].as_ref(),
            &ClusterMethod::dtw(),
            &StepwiseConfig::default(),
            true,
        )
        .unwrap();
        assert_eq!(out.final_signatures, vec![0]);
        assert_eq!(out.cluster_count, 1);
        assert!(out.dependents().is_empty());
        assert_eq!(out.final_ratio(), 1.0);
    }

    #[test]
    fn constant_series_handled() {
        let n = 64;
        let cols = vec![vec![50.0; n], independent(n, 3), independent(n, 9)];
        for method in [ClusterMethod::dtw(), ClusterMethod::cbc()] {
            let out = search(&keys(3), &cols, &method, &StepwiseConfig::default(), true);
            assert!(out.is_ok(), "{method:?} failed on constant series");
        }
    }

    #[test]
    fn resource_counts() {
        let n = 64;
        let cols = vec![independent(n, 1), independent(n, 2)];
        let out = search(
            &keys(2),
            &cols,
            &ClusterMethod::cbc(),
            &StepwiseConfig::default(),
            true,
        )
        .unwrap();
        let (cpu, ram) = out.signature_resource_counts();
        assert_eq!(cpu + ram, out.final_signatures.len());
    }

    #[test]
    fn feature_based_method_runs() {
        let n = 96;
        let cols = vec![
            family(n, 1.0, 0.0, 1),
            family(n, 0.8, 10.0, 2),
            independent(n, 5),
            independent(n, 77),
        ];
        let out = search(
            &keys(4),
            &cols,
            &ClusterMethod::features(),
            &StepwiseConfig::default(),
            true,
        )
        .unwrap();
        assert!(!out.final_signatures.is_empty());
        assert!(out.silhouette.is_some());
        assert!(out.final_ratio() <= 1.0);
    }

    #[test]
    fn empty_and_mismatched_inputs_rejected() {
        assert!(search(
            &[],
            &[],
            &ClusterMethod::dtw(),
            &StepwiseConfig::default(),
            true
        )
        .is_err());
        assert!(search(
            &keys(2),
            [vec![1.0]].as_ref(),
            &ClusterMethod::dtw(),
            &StepwiseConfig::default(),
            true
        )
        .is_err());
        assert!(search(
            &keys(1),
            [vec![]].as_ref(),
            &ClusterMethod::dtw(),
            &StepwiseConfig::default(),
            true
        )
        .is_err());
    }

    #[test]
    fn compute_settings_preserve_dtw_outcome() {
        let n = 96;
        let cols = vec![
            family(n, 1.0, 0.0, 1),
            family(n, 1.0, 1.0, 2),
            independent(n, 50),
            independent(n, 51),
            independent(n, 52),
        ];
        let baseline = search(
            &keys(5),
            &cols,
            &ClusterMethod::dtw(),
            &StepwiseConfig::default(),
            true,
        )
        .unwrap();
        for threads in [1usize, 2, 8] {
            for optimized_kernel in [false, true] {
                let compute = ComputeConfig {
                    threads,
                    dtw_band: 0,
                    optimized_kernel,
                    memory_budget_mb: 0,
                };
                let out = search_with(
                    &keys(5),
                    &cols,
                    &ClusterMethod::dtw(),
                    &StepwiseConfig::default(),
                    true,
                    &compute,
                )
                .unwrap();
                assert_eq!(baseline, out, "compute = {compute:?}");
            }
        }
    }

    #[test]
    fn banded_dtw_is_deterministic_across_kernels_and_threads() {
        let n = 96;
        let cols = vec![
            family(n, 1.0, 0.0, 1),
            independent(n, 50),
            independent(n, 51),
            independent(n, 52),
        ];
        let reference = search_with(
            &keys(4),
            &cols,
            &ClusterMethod::dtw(),
            &StepwiseConfig::default(),
            true,
            &ComputeConfig {
                threads: 1,
                dtw_band: 8,
                optimized_kernel: false,
                memory_budget_mb: 0,
            },
        )
        .unwrap();
        for threads in [1usize, 4] {
            for optimized_kernel in [false, true] {
                let out = search_with(
                    &keys(4),
                    &cols,
                    &ClusterMethod::dtw(),
                    &StepwiseConfig::default(),
                    true,
                    &ComputeConfig {
                        threads,
                        dtw_band: 8,
                        optimized_kernel,
                        memory_budget_mb: 0,
                    },
                )
                .unwrap();
                assert_eq!(reference, out, "threads={threads} opt={optimized_kernel}");
            }
        }
    }

    #[test]
    fn observed_stats_are_exact_and_thread_count_independent() {
        let n = 96;
        let cols = vec![
            family(n, 1.0, 0.0, 1),
            family(n, 1.0, 1.0, 2),
            independent(n, 50),
            independent(n, 51),
            independent(n, 52),
        ];
        let mut runs = Vec::new();
        for threads in [1usize, 4] {
            let obs = Obs::enabled(false);
            let (outcome, stats) = search_observed(
                &keys(5),
                &cols,
                &ClusterMethod::dtw(),
                &StepwiseConfig::default(),
                true,
                &ComputeConfig {
                    threads,
                    dtw_band: 0,
                    optimized_kernel: true,
                    memory_budget_mb: 0,
                },
                &obs,
            )
            .unwrap();
            runs.push((outcome, stats, obs.metrics_snapshot().deterministic_json()));
        }
        let (o1, s1, j1) = &runs[0];
        let (o4, s4, j4) = &runs[1];
        assert_eq!(o1, o4);
        assert_eq!(s1, s4, "kernel stats must not depend on thread count");
        assert_eq!(j1, j4, "metrics snapshot must not depend on thread count");
        // 5 series -> 10 pairs, full DP -> 96*96 cells each, no abandons.
        assert_eq!(s1.dtw_pairs, 10);
        assert_eq!(s1.dtw_dp_cells, 10 * 96 * 96);
        assert_eq!(s1.dtw_abandons, 0);
        assert!(s1.silhouette_candidates > 0);
    }

    #[test]
    fn final_signatures_subset_of_initial() {
        let n = 96;
        let cols: Vec<Vec<f64>> = (0..6)
            .map(|j| {
                if j < 3 {
                    family(n, 1.0 + j as f64 * 0.2, j as f64 * 5.0, j as u64)
                } else {
                    independent(n, j as u64 * 13)
                }
            })
            .collect();
        for method in [ClusterMethod::dtw(), ClusterMethod::cbc()] {
            let out = search(&keys(6), &cols, &method, &StepwiseConfig::default(), true).unwrap();
            for s in &out.final_signatures {
                assert!(out.initial_signatures.contains(s), "{method:?}");
            }
        }
    }
}
