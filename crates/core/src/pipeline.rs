//! The end-to-end ATM pipeline for one box (paper Section V):
//! train on history → signature search → temporal forecasts for
//! signatures → spatial prediction of dependents → proactive resizing →
//! replay against the actual future.

use atm_forecast::ensemble::EnsembleForecaster;
use atm_forecast::holt_winters::HoltWinters;
use atm_forecast::mlp::MlpForecaster;
use atm_forecast::naive::{LastValue, SeasonalNaive};
use atm_forecast::{ar::ArForecaster, Forecaster};
use atm_resize::evaluate::{box_outcome, BoxOutcome};
use atm_resize::{baselines, greedy, ResizeProblem, VmDemand};
use atm_ticketing::ThresholdPolicy;
use atm_timeseries::metrics::{mape, peak_mape};
use atm_tracegen::{BoxTrace, Resource, SeriesKey};
use serde::{Deserialize, Serialize};

use crate::config::{AtmConfig, ResourceScope, TemporalModel};
use crate::error::{AtmError, AtmResult};
use crate::signature::{search, SignatureOutcome};
use crate::spatial::SpatialModel;

/// Signature-search statistics for one box (paper Figs. 5, 6a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignatureReport {
    /// Total series considered (`M × N` under the configured scope).
    pub total_series: usize,
    /// Signatures after Step 1 (clustering).
    pub initial_signatures: usize,
    /// Signatures after Step 2 (stepwise).
    pub final_signatures: usize,
    /// Cluster count from Step 1.
    pub cluster_count: usize,
    /// Mean silhouette (DTW only).
    pub silhouette: Option<f64>,
    /// Final signatures that are CPU series.
    pub signature_cpu: usize,
    /// Final signatures that are RAM series.
    pub signature_ram: usize,
    /// Mean in-sample APE of the spatial models (fraction; Fig. 6b).
    pub spatial_in_sample_mape: f64,
}

impl SignatureReport {
    /// Signature-to-original ratio after Step 1.
    pub fn initial_ratio(&self) -> f64 {
        self.initial_signatures as f64 / self.total_series as f64
    }

    /// Signature-to-original ratio after Step 2.
    pub fn final_ratio(&self) -> f64 {
        self.final_signatures as f64 / self.total_series as f64
    }
}

/// Out-of-sample prediction accuracy for one series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesPrediction {
    /// Which series.
    pub key: SeriesKey,
    /// Whether it was predicted by a temporal model (signature) or a
    /// spatial model (dependent).
    pub is_signature: bool,
    /// Mean APE over the horizon (fraction); `None` if undefined.
    pub ape: Option<f64>,
    /// Mean APE restricted to peak windows (actual usage above the ticket
    /// threshold); `None` if the series has no peak windows.
    pub peak_ape: Option<f64>,
}

/// Aggregated prediction accuracy for one box (paper Fig. 9).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionReport {
    /// Mean APE across all series of the box (fraction).
    pub mape_all: f64,
    /// Mean peak APE across series with peaks (fraction); `None` if no
    /// series peaked.
    pub mape_peak: Option<f64>,
    /// Per-series details.
    pub per_series: Vec<SeriesPrediction>,
}

/// Resizing outcome for one resource on one box (paper Figs. 8, 10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceResizeReport {
    /// The resized resource.
    pub resource: Resource,
    /// ATM's greedy MCKP allocation outcome.
    pub atm: BoxOutcome,
    /// Stingy baseline outcome.
    pub stingy: BoxOutcome,
    /// Max-min fairness baseline outcome.
    pub maxmin: BoxOutcome,
}

/// Everything ATM produces for one box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxReport {
    /// The box's name.
    pub box_name: String,
    /// Signature-search statistics.
    pub signature: SignatureReport,
    /// Out-of-sample prediction accuracy.
    pub prediction: PredictionReport,
    /// Per-resource resizing outcomes.
    pub resizing: Vec<ResourceResizeReport>,
}

/// Keys of a box under a resource scope.
fn scoped_keys(box_trace: &BoxTrace, scope: ResourceScope) -> Vec<SeriesKey> {
    box_trace
        .series_keys()
        .into_iter()
        .filter(|k| match scope {
            ResourceScope::Inter => true,
            ResourceScope::IntraCpu => k.resource == Resource::Cpu,
            ResourceScope::IntraRam => k.resource == Resource::Ram,
        })
        .collect()
}

/// Resources covered by a scope.
fn scoped_resources(scope: ResourceScope) -> Vec<Resource> {
    match scope {
        ResourceScope::Inter => vec![Resource::Cpu, Resource::Ram],
        ResourceScope::IntraCpu => vec![Resource::Cpu],
        ResourceScope::IntraRam => vec![Resource::Ram],
    }
}

/// Instantiates a forecaster from its configuration (recursively for
/// ensembles). `Oracle` has no forecaster and returns `None`.
fn build_forecaster(temporal: &TemporalModel) -> Option<Box<dyn Forecaster + Send>> {
    match temporal {
        TemporalModel::Oracle => None,
        TemporalModel::Mlp(cfg) => Some(Box::new(MlpForecaster::new(cfg.clone()))),
        TemporalModel::Ar { order } => Some(Box::new(ArForecaster::new(*order))),
        TemporalModel::HoltWinters(cfg) => Some(Box::new(HoltWinters::new(*cfg))),
        TemporalModel::SeasonalNaive { period } => Some(Box::new(SeasonalNaive::new(*period))),
        TemporalModel::Ensemble { members } => {
            let built: Vec<Box<dyn Forecaster + Send>> =
                members.iter().filter_map(build_forecaster).collect();
            if built.is_empty() {
                None
            } else {
                Some(Box::new(EnsembleForecaster::new(built)))
            }
        }
    }
}

/// Builds a temporal forecast for one signature series, falling back to
/// simpler models when the configured one cannot fit.
fn temporal_forecast(
    train: &[f64],
    horizon: usize,
    temporal: &TemporalModel,
    test_actual: &[f64],
) -> Vec<f64> {
    let forecast = match build_forecaster(temporal) {
        None => return test_actual.to_vec(), // Oracle (or empty ensemble)
        Some(mut m) => m.fit(train).and_then(|()| m.forecast(horizon)),
    };
    forecast
        .or_else(|_| {
            // Fallback 1: seasonal-naive over the longest period fitting
            // the history.
            let period = (train.len() / 2).clamp(1, 96);
            let mut m = SeasonalNaive::new(period);
            m.fit(train).and_then(|()| m.forecast(horizon))
        })
        .or_else(|_| {
            let mut m = LastValue::new();
            m.fit(train).and_then(|()| m.forecast(horizon))
        })
        .unwrap_or_else(|_| vec![0.0; horizon])
}

/// Replaces non-finite predictions and clamps demands to be non-negative.
fn sanitize(mut series: Vec<f64>) -> Vec<f64> {
    for v in &mut series {
        if !v.is_finite() || *v < 0.0 {
            *v = 0.0;
        }
    }
    series
}

/// Runs the full ATM pipeline on one box.
///
/// Uses the last `train_windows + horizon` ticketing windows of the trace:
/// the prefix for training (5 days in the paper) and the suffix as the
/// evaluation day that resizing is applied to.
///
/// # Errors
///
/// - [`AtmError::InvalidConfig`] for a bad configuration.
/// - [`AtmError::TraceTooShort`] if the trace cannot cover the split.
/// - [`AtmError::GappyTrace`] if the evaluation window contains gaps.
/// - Propagated clustering/regression/forecast/resize errors.
pub fn run_box(box_trace: &BoxTrace, config: &AtmConfig) -> AtmResult<BoxReport> {
    config.validate()?;
    let keys = scoped_keys(box_trace, config.scope);
    if keys.is_empty() {
        return Err(AtmError::Empty);
    }
    let needed = config.train_windows + config.horizon;
    let total = box_trace.window_count();
    if total < needed {
        return Err(AtmError::TraceTooShort {
            required: needed,
            actual: total,
        });
    }
    let start = total - needed;
    let split = start + config.train_windows;

    // Demand columns, train/test split.
    let mut train_cols = Vec::with_capacity(keys.len());
    let mut test_cols = Vec::with_capacity(keys.len());
    for &k in &keys {
        let demand = box_trace.demand(k);
        if demand[start..].iter().any(|d| !d.is_finite()) {
            return Err(AtmError::GappyTrace);
        }
        train_cols.push(demand[start..split].to_vec());
        test_cols.push(demand[split..].to_vec());
    }

    // Step 1 + 2: signature search on training demands.
    let outcome: SignatureOutcome = search(
        &keys,
        &train_cols,
        &config.cluster_method,
        &config.stepwise,
        config.znorm_for_dtw,
    )?;
    let dependents = outcome.dependents();

    // Spatial models for dependents.
    let spatial = SpatialModel::fit_with(
        &train_cols,
        &outcome.final_signatures,
        &dependents,
        config.spatial_ridge_lambda,
    )?;
    let spatial_in_sample = spatial.in_sample_mape(&train_cols)?;

    // Temporal forecasts for signatures.
    let sig_predictions: Vec<Vec<f64>> = outcome
        .final_signatures
        .iter()
        .map(|&s| {
            sanitize(temporal_forecast(
                &train_cols[s],
                config.horizon,
                &config.temporal,
                &test_cols[s],
            ))
        })
        .collect();

    // Spatial predictions for dependents.
    let dep_predictions: Vec<Vec<f64>> = spatial
        .predict(&sig_predictions)?
        .into_iter()
        .map(sanitize)
        .collect();

    // Assemble the full predicted matrix aligned with `keys`.
    let mut predicted: Vec<Vec<f64>> = vec![Vec::new(); keys.len()];
    for (pos, &s) in outcome.final_signatures.iter().enumerate() {
        predicted[s] = sig_predictions[pos].clone();
    }
    for (pos, &d) in dependents.iter().enumerate() {
        predicted[d] = dep_predictions[pos].clone();
    }

    // Prediction accuracy (Fig. 9): APE over all windows and over peak
    // windows (actual usage above the ticket threshold).
    let alpha = config.ticket_threshold_pct / 100.0;
    let mut per_series = Vec::with_capacity(keys.len());
    let mut ape_sum = 0.0;
    let mut ape_n = 0usize;
    let mut peak_sum = 0.0;
    let mut peak_n = 0usize;
    for (i, &k) in keys.iter().enumerate() {
        let capacity = box_trace.vms[k.vm].capacity(k.resource);
        let ape = mape(&test_cols[i], &predicted[i]).ok();
        let p_ape = peak_mape(&test_cols[i], &predicted[i], alpha * capacity).ok();
        if let Some(e) = ape {
            ape_sum += e;
            ape_n += 1;
        }
        if let Some(e) = p_ape {
            peak_sum += e;
            peak_n += 1;
        }
        per_series.push(SeriesPrediction {
            key: k,
            is_signature: outcome.final_signatures.contains(&i),
            ape,
            peak_ape: p_ape,
        });
    }
    let prediction = PredictionReport {
        mape_all: if ape_n == 0 {
            0.0
        } else {
            ape_sum / ape_n as f64
        },
        mape_peak: if peak_n == 0 {
            None
        } else {
            Some(peak_sum / peak_n as f64)
        },
        per_series,
    };

    // Proactive resizing per resource (Fig. 10): allocators size from the
    // *predicted* demands; outcomes replay the *actual* test demands.
    let policy = ThresholdPolicy::new(config.ticket_threshold_pct)
        .map_err(|_| AtmError::InvalidConfig("ticket threshold"))?;
    let mut resizing = Vec::new();
    for resource in scoped_resources(config.scope) {
        let vm_indices: Vec<usize> = (0..box_trace.vm_count()).collect();
        let idx_of = |vm: usize| -> usize {
            keys.iter()
                .position(|k| k.vm == vm && k.resource == resource)
                .expect("scoped keys cover this resource")
        };
        let box_capacity = box_trace.capacity(resource);

        let vms: Vec<VmDemand> = vm_indices
            .iter()
            .map(|&vm| {
                let i = idx_of(vm);
                // Lower bound: the VM's peak usage before resizing
                // (paper Section IV-A.1), i.e. peak actual training demand.
                let lower = train_cols[i].iter().copied().fold(0.0, f64::max);
                VmDemand::new(
                    box_trace.vms[vm].name.clone(),
                    predicted[i].clone(),
                    lower.min(box_capacity),
                    box_capacity,
                )
            })
            .collect();
        let epsilon = match resource {
            Resource::Cpu => config.epsilon_cpu,
            Resource::Ram => config.epsilon_ram,
        };
        let problem = ResizeProblem::new(vms, box_capacity, policy).with_epsilon(epsilon);

        let atm_alloc = greedy::solve(&problem)?;
        let stingy_alloc = baselines::stingy(&problem)?;
        let maxmin_alloc = baselines::max_min_fairness(&problem)?;

        let actual: Vec<Vec<f64>> = vm_indices
            .iter()
            .map(|&vm| test_cols[idx_of(vm)].clone())
            .collect();
        let original: Vec<f64> = vm_indices
            .iter()
            .map(|&vm| box_trace.vms[vm].capacity(resource))
            .collect();

        resizing.push(ResourceResizeReport {
            resource,
            atm: box_outcome(&actual, &original, &atm_alloc.capacities, &policy)?,
            stingy: box_outcome(&actual, &original, &stingy_alloc.capacities, &policy)?,
            maxmin: box_outcome(&actual, &original, &maxmin_alloc.capacities, &policy)?,
        });
    }

    let (sig_cpu, sig_ram) = outcome.signature_resource_counts();
    Ok(BoxReport {
        box_name: box_trace.name.clone(),
        signature: SignatureReport {
            total_series: keys.len(),
            initial_signatures: outcome.initial_signatures.len(),
            final_signatures: outcome.final_signatures.len(),
            cluster_count: outcome.cluster_count,
            silhouette: outcome.silhouette,
            signature_cpu: sig_cpu,
            signature_ram: sig_ram,
            spatial_in_sample_mape: spatial_in_sample,
        },
        prediction,
        resizing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterMethod;
    use atm_tracegen::{generate_box, FleetConfig};

    fn trace_config() -> FleetConfig {
        FleetConfig {
            num_boxes: 1,
            days: 3,
            gap_probability: 0.0,
            ..FleetConfig::default()
        }
    }

    fn oracle_config() -> AtmConfig {
        AtmConfig {
            temporal: TemporalModel::Oracle,
            ..AtmConfig::fast_for_tests()
        }
    }

    #[test]
    fn oracle_pipeline_runs_end_to_end() {
        let b = generate_box(&trace_config(), 0);
        let r = run_box(&b, &oracle_config()).unwrap();
        assert_eq!(r.box_name, "box0");
        assert_eq!(r.signature.total_series, b.vm_count() * 2);
        assert!(r.signature.final_signatures >= 1);
        assert!(r.signature.final_ratio() <= 1.0);
        assert_eq!(r.resizing.len(), 2);
        assert_eq!(r.prediction.per_series.len(), r.signature.total_series);
    }

    #[test]
    fn oracle_signature_predictions_are_exact() {
        let b = generate_box(&trace_config(), 1);
        let r = run_box(&b, &oracle_config()).unwrap();
        for s in &r.prediction.per_series {
            if s.is_signature {
                assert!(s.ape.unwrap_or(0.0) < 1e-9, "oracle signature APE {s:?}");
            }
        }
    }

    #[test]
    fn atm_resizing_beats_or_ties_baselines_with_oracle() {
        // With oracle demands ATM's greedy should dominate both baselines
        // in total tickets (the Fig. 8 result).
        let mut atm_total = 0usize;
        let mut stingy_total = 0usize;
        let mut maxmin_total = 0usize;
        for i in 0..5 {
            let b = generate_box(&trace_config(), i);
            let r = run_box(&b, &oracle_config()).unwrap();
            for res in &r.resizing {
                atm_total += res.atm.after;
                stingy_total += res.stingy.after;
                maxmin_total += res.maxmin.after;
            }
        }
        assert!(
            atm_total <= stingy_total,
            "ATM {atm_total} > stingy {stingy_total}"
        );
        assert!(
            atm_total <= maxmin_total,
            "ATM {atm_total} > maxmin {maxmin_total}"
        );
    }

    #[test]
    fn atm_reduces_tickets_substantially_with_oracle() {
        let mut before = 0usize;
        let mut after = 0usize;
        for i in 0..6 {
            let b = generate_box(&trace_config(), i);
            let r = run_box(&b, &oracle_config()).unwrap();
            for res in &r.resizing {
                before += res.atm.before;
                after += res.atm.after;
            }
        }
        assert!(before > 0, "no tickets in the generated boxes");
        let reduction = (before - after) as f64 / before as f64;
        assert!(
            reduction > 0.5,
            "oracle ATM reduced only {:.0}% of tickets",
            reduction * 100.0
        );
    }

    #[test]
    fn cbc_and_dtw_both_run() {
        let b = generate_box(&trace_config(), 2);
        for method in [ClusterMethod::dtw(), ClusterMethod::cbc()] {
            let cfg = oracle_config().with_cluster_method(method);
            let r = run_box(&b, &cfg).unwrap();
            assert!(r.signature.final_signatures >= 1, "{method:?}");
        }
    }

    #[test]
    fn intra_scope_covers_single_resource() {
        let b = generate_box(&trace_config(), 3);
        let cfg = oracle_config().with_scope(ResourceScope::IntraCpu);
        let r = run_box(&b, &cfg).unwrap();
        assert_eq!(r.signature.total_series, b.vm_count());
        assert_eq!(r.resizing.len(), 1);
        assert_eq!(r.resizing[0].resource, Resource::Cpu);
        assert_eq!(r.signature.signature_ram, 0);
    }

    #[test]
    fn short_trace_rejected() {
        let short = FleetConfig {
            days: 1,
            ..trace_config()
        };
        let b = generate_box(&short, 0);
        assert!(matches!(
            run_box(&b, &oracle_config()),
            Err(AtmError::TraceTooShort { .. })
        ));
    }

    #[test]
    fn gappy_trace_rejected() {
        let mut b = generate_box(&trace_config(), 4);
        b.vms[0].cpu_usage[250] = f64::NAN;
        assert_eq!(run_box(&b, &oracle_config()), Err(AtmError::GappyTrace));
    }

    #[test]
    fn mlp_pipeline_runs_and_is_reasonably_accurate() {
        let b = generate_box(&trace_config(), 5);
        let cfg = AtmConfig::fast_for_tests();
        let r = run_box(&b, &cfg).unwrap();
        // The synthetic load is seasonal but heavy-tailed with low night
        // levels, which inflates relative errors (APE divides by small
        // actuals); sanity-check the order of magnitude only.
        assert!(
            r.prediction.mape_all < 2.0,
            "MAPE {:.2} implausibly high",
            r.prediction.mape_all
        );
        assert!(r.prediction.mape_all.is_finite());
    }

    #[test]
    fn seasonal_naive_temporal_model() {
        let b = generate_box(&trace_config(), 6);
        let cfg = oracle_config().with_temporal(TemporalModel::SeasonalNaive { period: 96 });
        let r = run_box(&b, &cfg).unwrap();
        assert!(r.prediction.mape_all.is_finite());
    }

    #[test]
    fn holt_winters_temporal_model() {
        let b = generate_box(&trace_config(), 8);
        let cfg = oracle_config().with_temporal(TemporalModel::HoltWinters(
            atm_forecast::holt_winters::HoltWintersConfig::default(),
        ));
        let r = run_box(&b, &cfg).unwrap();
        assert!(r.prediction.mape_all.is_finite());
    }

    #[test]
    fn ensemble_temporal_model() {
        let b = generate_box(&trace_config(), 9);
        let cfg = oracle_config().with_temporal(TemporalModel::Ensemble {
            members: vec![
                TemporalModel::SeasonalNaive { period: 96 },
                TemporalModel::Ar { order: 4 },
            ],
        });
        let r = run_box(&b, &cfg).unwrap();
        assert!(r.prediction.mape_all.is_finite());
    }

    #[test]
    fn ar_temporal_model() {
        let b = generate_box(&trace_config(), 7);
        let cfg = oracle_config().with_temporal(TemporalModel::Ar { order: 4 });
        let r = run_box(&b, &cfg).unwrap();
        assert!(r.prediction.mape_all.is_finite());
    }
}
