//! The end-to-end ATM pipeline for one box (paper Section V):
//! impute trace gaps → train on history → signature search → temporal
//! forecasts for signatures → spatial prediction of dependents →
//! proactive resizing → replay against the actual future.

use atm_forecast::ensemble::EnsembleForecaster;
use atm_forecast::holt_winters::HoltWinters;
use atm_forecast::mlp::MlpForecaster;
use atm_forecast::naive::{LastValue, SeasonalNaive};
use atm_forecast::{ar::ArForecaster, Forecaster};
use atm_obs::Obs;
use atm_resize::evaluate::{box_outcome, BoxOutcome};
use atm_resize::incremental::IncrementalMckp;
use atm_resize::{baselines, ResizeProblem, VmDemand};
use atm_ticketing::ThresholdPolicy;
use atm_timeseries::metrics::{mape, peak_mape};
use atm_tracegen::{BoxTrace, Resource, SeriesKey};
use serde::{Deserialize, Serialize};

use crate::config::{AtmConfig, ResourceScope, TemporalModel};
use crate::error::{AtmError, AtmResult};
use crate::impute::{impute_box, ImputationReport};
use crate::metrics::MetricsReport;
use crate::signature::{search_observed, SearchStats, SignatureOutcome};
use crate::spatial::SpatialModel;

/// Signature-search statistics for one box (paper Figs. 5, 6a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignatureReport {
    /// Total series considered (`M × N` under the configured scope).
    pub total_series: usize,
    /// Signatures after Step 1 (clustering).
    pub initial_signatures: usize,
    /// Signatures after Step 2 (stepwise).
    pub final_signatures: usize,
    /// Cluster count from Step 1.
    pub cluster_count: usize,
    /// Mean silhouette (DTW only).
    pub silhouette: Option<f64>,
    /// Final signatures that are CPU series.
    pub signature_cpu: usize,
    /// Final signatures that are RAM series.
    pub signature_ram: usize,
    /// Mean in-sample APE of the spatial models (fraction; Fig. 6b).
    pub spatial_in_sample_mape: f64,
}

impl SignatureReport {
    /// Signature-to-original ratio after Step 1.
    pub fn initial_ratio(&self) -> f64 {
        self.initial_signatures as f64 / self.total_series as f64
    }

    /// Signature-to-original ratio after Step 2.
    pub fn final_ratio(&self) -> f64 {
        self.final_signatures as f64 / self.total_series as f64
    }
}

/// Out-of-sample prediction accuracy for one series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesPrediction {
    /// Which series.
    pub key: SeriesKey,
    /// Whether it was predicted by a temporal model (signature) or a
    /// spatial model (dependent).
    pub is_signature: bool,
    /// Mean APE over the horizon (fraction); `None` if undefined.
    pub ape: Option<f64>,
    /// Mean APE restricted to peak windows (actual usage above the ticket
    /// threshold); `None` if the series has no peak windows.
    pub peak_ape: Option<f64>,
}

/// Aggregated prediction accuracy for one box (paper Fig. 9).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionReport {
    /// Mean APE across all series of the box (fraction).
    pub mape_all: f64,
    /// Mean peak APE across series with peaks (fraction); `None` if no
    /// series peaked.
    pub mape_peak: Option<f64>,
    /// Per-series details.
    pub per_series: Vec<SeriesPrediction>,
}

/// Resizing outcome for one resource on one box (paper Figs. 8, 10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceResizeReport {
    /// The resized resource.
    pub resource: Resource,
    /// The capacities ATM chose, one per VM in box order — what the
    /// online loop actuates and carries forward on degraded windows.
    pub capacities: Vec<f64>,
    /// ATM's greedy MCKP allocation outcome.
    pub atm: BoxOutcome,
    /// Stingy baseline outcome.
    pub stingy: BoxOutcome,
    /// Max-min fairness baseline outcome.
    pub maxmin: BoxOutcome,
}

/// Everything ATM produces for one box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxReport {
    /// The box's name.
    pub box_name: String,
    /// Gap-imputation statistics (empty when the trace was gap-free or
    /// imputation is disabled).
    pub imputation: ImputationReport,
    /// Signature-search statistics.
    pub signature: SignatureReport,
    /// Out-of-sample prediction accuracy.
    pub prediction: PredictionReport,
    /// Per-resource resizing outcomes.
    pub resizing: Vec<ResourceResizeReport>,
    /// Deterministic per-run metrics (signature-search work counters and
    /// imputation totals). `None` unless the run was observed through an
    /// enabled [`Obs`] handle, and skipped entirely from serialization in
    /// that case so unobserved reports keep their historical byte layout.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics: Option<MetricsReport>,
    /// Ticket intelligence for the observed prefix: per-resource storm
    /// collapse and the box's inter-ticket-delay anomaly score. `None`
    /// unless [`TicketsConfig::enabled`](crate::config::TicketsConfig),
    /// and skipped entirely from serialization in that case so
    /// pre-tickets reports keep their historical byte layout.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub tickets: Option<crate::tickets::TicketReport>,
}

/// Keys of a box under a resource scope.
fn scoped_keys(box_trace: &BoxTrace, scope: ResourceScope) -> Vec<SeriesKey> {
    box_trace
        .series_keys()
        .into_iter()
        .filter(|k| match scope {
            ResourceScope::Inter => true,
            ResourceScope::IntraCpu => k.resource == Resource::Cpu,
            ResourceScope::IntraRam => k.resource == Resource::Ram,
        })
        .collect()
}

/// Resources covered by a scope.
pub(crate) fn scoped_resources(scope: ResourceScope) -> Vec<Resource> {
    match scope {
        ResourceScope::Inter => vec![Resource::Cpu, Resource::Ram],
        ResourceScope::IntraCpu => vec![Resource::Cpu],
        ResourceScope::IntraRam => vec![Resource::Ram],
    }
}

/// Rejects ragged boxes: every series must span the box's window count,
/// or no train/test split is well-defined (and slicing would panic).
pub(crate) fn validate_rectangular(box_trace: &BoxTrace) -> AtmResult<()> {
    let expected = box_trace.window_count();
    for vm in &box_trace.vms {
        for actual in [vm.cpu_usage.len(), vm.ram_usage.len()] {
            if actual != expected {
                return Err(AtmError::RaggedTrace {
                    vm: vm.name.clone(),
                    expected,
                    actual,
                });
            }
        }
    }
    Ok(())
}

/// Imputation front end: fills gaps when enabled, otherwise leaves the
/// trace alone. Returns `None` (and an empty report) when nothing was
/// filled, so the gap-free path never clones the trace.
fn impute_front_end(
    box_trace: &BoxTrace,
    config: &AtmConfig,
) -> (Option<BoxTrace>, ImputationReport) {
    if !config.imputation.enabled || !box_trace.has_gaps() {
        return (None, ImputationReport::default());
    }
    let (filled, report) = impute_box(box_trace, &config.imputation);
    (Some(filled), report)
}

/// The train/test demand split shared by the full pipeline and the
/// fallback path.
struct DemandSplit {
    keys: Vec<SeriesKey>,
    train_cols: Vec<Vec<f64>>,
    test_cols: Vec<Vec<f64>>,
}

/// Splits the last `train_windows + horizon` windows of each scoped
/// demand series into train/test columns.
fn split_demands(trace: &BoxTrace, config: &AtmConfig) -> AtmResult<DemandSplit> {
    let keys = scoped_keys(trace, config.scope);
    if keys.is_empty() {
        return Err(AtmError::Empty);
    }
    let needed = config.train_windows + config.horizon;
    let total = trace.window_count();
    if total < needed {
        return Err(AtmError::TraceTooShort {
            required: needed,
            actual: total,
        });
    }
    let start = total - needed;
    let split = start + config.train_windows;

    let mut train_cols = Vec::with_capacity(keys.len());
    let mut test_cols = Vec::with_capacity(keys.len());
    for &k in &keys {
        // Materialize only the evaluation window, not the whole series —
        // on a streamed fleet the box is dropped right after this split,
        // so the full-history `demand()` clone would dominate the working
        // set. `demand_range` computes the same per-element expression, so
        // the columns are bit-identical to slicing the full series.
        let train = trace.demand_range(k, start..split);
        let test = trace.demand_range(k, split..total);
        if train.iter().chain(test.iter()).any(|d| !d.is_finite()) {
            return Err(AtmError::GappyTrace);
        }
        train_cols.push(train);
        test_cols.push(test);
    }
    Ok(DemandSplit {
        keys,
        train_cols,
        test_cols,
    })
}

/// Instantiates a forecaster from its configuration (recursively for
/// ensembles). `Oracle` has no forecaster and returns `None`.
fn build_forecaster(temporal: &TemporalModel) -> Option<Box<dyn Forecaster + Send>> {
    match temporal {
        TemporalModel::Oracle => None,
        TemporalModel::Mlp(cfg) => Some(Box::new(MlpForecaster::new(cfg.clone()))),
        TemporalModel::Ar { order } => Some(Box::new(ArForecaster::new(*order))),
        TemporalModel::HoltWinters(cfg) => Some(Box::new(HoltWinters::new(*cfg))),
        TemporalModel::SeasonalNaive { period } => Some(Box::new(SeasonalNaive::new(*period))),
        TemporalModel::Ensemble { members } => {
            let built: Vec<Box<dyn Forecaster + Send>> =
                members.iter().filter_map(build_forecaster).collect();
            if built.is_empty() {
                None
            } else {
                Some(Box::new(EnsembleForecaster::new(built)))
            }
        }
    }
}

/// Builds a temporal forecast for one signature series, falling back to
/// simpler models when the configured one cannot fit.
pub(crate) fn temporal_forecast(
    train: &[f64],
    horizon: usize,
    temporal: &TemporalModel,
    test_actual: &[f64],
) -> Vec<f64> {
    // `train` stays a borrowed view throughout: `atm_forecast::forecast`
    // takes the history by slice, so a streamed box's split columns are
    // never cloned per model attempt.
    let forecast = match build_forecaster(temporal) {
        None => return test_actual.to_vec(), // Oracle (or empty ensemble)
        Some(mut m) => atm_forecast::forecast(m.as_mut(), train, horizon),
    };
    forecast
        .or_else(|_| {
            // Fallback 1: seasonal-naive over the longest period fitting
            // the history.
            let period = (train.len() / 2).clamp(1, 96);
            let mut m = SeasonalNaive::new(period);
            atm_forecast::forecast(&mut m, train, horizon)
        })
        .or_else(|_| {
            let mut m = LastValue::new();
            atm_forecast::forecast(&mut m, train, horizon)
        })
        .unwrap_or_else(|_| vec![0.0; horizon])
}

/// Replaces non-finite predictions and clamps demands to be non-negative.
fn sanitize(mut series: Vec<f64>) -> Vec<f64> {
    for v in &mut series {
        if !v.is_finite() || *v < 0.0 {
            *v = 0.0;
        }
    }
    series
}

/// Prediction accuracy (Fig. 9): APE over all windows and over peak
/// windows (actual usage above the ticket threshold).
fn prediction_report(
    trace: &BoxTrace,
    split: &DemandSplit,
    predicted: &[Vec<f64>],
    signatures: &[usize],
    threshold_pct: f64,
) -> PredictionReport {
    let alpha = threshold_pct / 100.0;
    let mut per_series = Vec::with_capacity(split.keys.len());
    let mut ape_sum = 0.0;
    let mut ape_n = 0usize;
    let mut peak_sum = 0.0;
    let mut peak_n = 0usize;
    for (i, &k) in split.keys.iter().enumerate() {
        let capacity = trace.vms[k.vm].capacity(k.resource);
        let ape = mape(&split.test_cols[i], &predicted[i]).ok();
        let p_ape = peak_mape(&split.test_cols[i], &predicted[i], alpha * capacity).ok();
        if let Some(e) = ape {
            ape_sum += e;
            ape_n += 1;
        }
        if let Some(e) = p_ape {
            peak_sum += e;
            peak_n += 1;
        }
        per_series.push(SeriesPrediction {
            key: k,
            is_signature: signatures.contains(&i),
            ape,
            peak_ape: p_ape,
        });
    }
    PredictionReport {
        mape_all: if ape_n == 0 {
            0.0
        } else {
            ape_sum / ape_n as f64
        },
        mape_peak: if peak_n == 0 {
            None
        } else {
            Some(peak_sum / peak_n as f64)
        },
        per_series,
    }
}

/// Per-resource [`IncrementalMckp`] solvers, reusable across windows.
///
/// The incremental solver is byte-identical to a from-scratch
/// `greedy::solve` on every call, so sharing one set of solvers across
/// an online run (or using a fresh set per window, as the stateless
/// entry points do) never changes a result — persistence only lets
/// adjacent windows reuse candidate-group state when their demand
/// inputs repeat or slide. One solver per resource: CPU and RAM
/// problems alternate within a window and would thrash a shared cache.
#[derive(Default)]
pub(crate) struct ResizeSolvers {
    solvers: Vec<(Resource, IncrementalMckp)>,
}

impl ResizeSolvers {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    fn for_resource(&mut self, resource: Resource) -> &mut IncrementalMckp {
        if let Some(pos) = self.solvers.iter().position(|(r, _)| *r == resource) {
            return &mut self.solvers[pos].1;
        }
        self.solvers.push((resource, IncrementalMckp::new()));
        &mut self.solvers.last_mut().expect("just pushed").1
    }
}

/// Proactive resizing per resource (Fig. 10): allocators size from the
/// *predicted* demands; outcomes replay the *actual* test demands.
fn resize_reports(
    trace: &BoxTrace,
    split: &DemandSplit,
    predicted: &[Vec<f64>],
    config: &AtmConfig,
    policy: &ThresholdPolicy,
    solvers: &mut ResizeSolvers,
) -> AtmResult<Vec<ResourceResizeReport>> {
    let mut resizing = Vec::new();
    for resource in scoped_resources(config.scope) {
        let vm_indices: Vec<usize> = (0..trace.vm_count()).collect();
        let idx_of = |vm: usize| -> usize {
            split
                .keys
                .iter()
                .position(|k| k.vm == vm && k.resource == resource)
                .expect("scoped keys cover this resource")
        };
        let box_capacity = trace.capacity(resource);
        let peak_sum: f64 = vm_indices
            .iter()
            .map(|&vm| predicted[idx_of(vm)].iter().copied().fold(0.0, f64::max))
            .sum();
        let headroom = effective_headroom(
            config.demand_headroom,
            policy.alpha(),
            peak_sum,
            box_capacity,
        );

        let vms: Vec<VmDemand> = vm_indices
            .iter()
            .map(|&vm| {
                let i = idx_of(vm);
                // Lower bound: the VM's peak usage before resizing
                // (paper Section IV-A.1), i.e. peak actual training demand.
                let lower = split.train_cols[i].iter().copied().fold(0.0, f64::max);
                VmDemand::new(
                    trace.vms[vm].name.clone(),
                    predicted[i].iter().map(|v| v * headroom).collect(),
                    lower.min(box_capacity),
                    box_capacity,
                )
            })
            .collect();
        let epsilon = match resource {
            Resource::Cpu => config.epsilon_cpu,
            Resource::Ram => config.epsilon_ram,
        };
        let problem = ResizeProblem::new(vms, box_capacity, *policy).with_epsilon(epsilon);

        let atm_alloc = solvers.for_resource(resource).solve(&problem)?;
        let stingy_alloc = baselines::stingy(&problem)?;
        let maxmin_alloc = baselines::max_min_fairness(&problem)?;

        let actual: Vec<&[f64]> = vm_indices
            .iter()
            .map(|&vm| split.test_cols[idx_of(vm)].as_slice())
            .collect();
        let original: Vec<f64> = vm_indices
            .iter()
            .map(|&vm| trace.vms[vm].capacity(resource))
            .collect();

        resizing.push(ResourceResizeReport {
            resource,
            atm: box_outcome(&actual, &original, &atm_alloc.capacities, policy)?,
            stingy: box_outcome(&actual, &original, &stingy_alloc.capacities, policy)?,
            maxmin: box_outcome(&actual, &original, &maxmin_alloc.capacities, policy)?,
            capacities: atm_alloc.capacities,
        });
    }
    Ok(resizing)
}

/// Capacity-aware demand headroom: the factor actually applied to one
/// resource's predicted demands before resizing. Prediction accuracy is
/// always scored on the raw forecasts; headroom only biases the sizing
/// input, which is what lets the online adaptation controller buy slack
/// without corrupting its own drift signal.
///
/// The configured factor is scaled down so that every VM could still be
/// granted `inflated_peak / α` capacity simultaneously (α = the ticket
/// threshold fraction), i.e. so inflation never pushes the sizing
/// problem from feasible to infeasible. Past that point inflation
/// cannot buy real slack — it only makes the solver triage against
/// fictional demand, shorting some VMs to their training-peak lower
/// bound, so adaptation would make a pressured box *worse* than leaving
/// it alone. Never drops below 1 (headroom must not deflate demand).
fn effective_headroom(headroom: f64, alpha: f64, peak_sum: f64, capacity: f64) -> f64 {
    if headroom <= 1.0 || peak_sum <= 0.0 {
        return headroom.max(1.0);
    }
    headroom.min(alpha * capacity / peak_sum).max(1.0)
}

pub(crate) fn ticket_policy(config: &AtmConfig) -> AtmResult<ThresholdPolicy> {
    ThresholdPolicy::new(config.ticket_threshold_pct)
        .map_err(|_| AtmError::InvalidConfig("ticket threshold"))
}

/// Runs the full ATM pipeline on one box.
///
/// Uses the last `train_windows + horizon` ticketing windows of the trace:
/// the prefix for training (5 days in the paper) and the suffix as the
/// evaluation day that resizing is applied to. Gaps are imputed first
/// (see [`crate::impute`]) unless imputation is disabled; imputed test
/// windows also serve as the replay "actuals", since nothing better was
/// observed.
///
/// # Errors
///
/// - [`AtmError::InvalidConfig`] for a bad configuration.
/// - [`AtmError::RaggedTrace`] if a VM's series lengths disagree.
/// - [`AtmError::TraceTooShort`] if the trace cannot cover the split.
/// - [`AtmError::GappyTrace`] if the evaluation window contains gaps and
///   imputation is disabled.
/// - Propagated clustering/regression/forecast/resize errors.
pub fn run_box(box_trace: &BoxTrace, config: &AtmConfig) -> AtmResult<BoxReport> {
    run_box_observed(box_trace, config, &Obs::disabled())
}

/// Deterministic per-run metrics embedded in an observed [`BoxReport`].
fn box_metrics(stats: &SearchStats, imputation: &ImputationReport) -> MetricsReport {
    MetricsReport::from_counters(vec![
        ("clustering.dtw.pairs", stats.dtw_pairs),
        ("clustering.dtw.dp_cells", stats.dtw_dp_cells),
        ("clustering.dtw.early_abandons", stats.dtw_abandons),
        (
            "clustering.silhouette.candidates",
            stats.silhouette_candidates,
        ),
        (
            "pipeline.imputed_samples",
            imputation.total_imputed() as u64,
        ),
    ])
}

/// [`run_box`] with explicit observability: stage spans under
/// `pipeline.*`, work counters from the signature search, and a
/// per-run [`MetricsReport`] embedded in the returned report when `obs`
/// is enabled. With [`Obs::disabled()`] this is exactly [`run_box`] —
/// same result bytes, near-zero overhead.
///
/// # Errors
///
/// Identical to [`run_box`].
pub fn run_box_observed(
    box_trace: &BoxTrace,
    config: &AtmConfig,
    obs: &Obs,
) -> AtmResult<BoxReport> {
    run_box_observed_with(box_trace, config, obs, &mut ResizeSolvers::new())
}

/// [`run_box_observed`] with caller-owned [`ResizeSolvers`], so an
/// online loop can carry incremental MCKP state across windows. Result
/// bytes are independent of the solvers' prior state (see
/// [`ResizeSolvers`]).
///
/// # Errors
///
/// Identical to [`run_box`].
pub(crate) fn run_box_observed_with(
    box_trace: &BoxTrace,
    config: &AtmConfig,
    obs: &Obs,
    solvers: &mut ResizeSolvers,
) -> AtmResult<BoxReport> {
    let _run_span = obs.span("pipeline.run_box");
    obs.add("pipeline.runs", 1);
    config.validate()?;
    validate_rectangular(box_trace)?;
    let (filled, imputation) = {
        let _span = obs.span("pipeline.impute");
        impute_front_end(box_trace, config)
    };
    obs.add(
        "pipeline.imputed_samples",
        imputation.total_imputed() as u64,
    );
    let trace = filled.as_ref().unwrap_or(box_trace);
    let split = split_demands(trace, config)?;

    // Step 1 + 2: signature search on training demands.
    let (outcome, stats): (SignatureOutcome, SearchStats) = {
        let _span = obs.span("pipeline.signature");
        search_observed(
            &split.keys,
            &split.train_cols,
            &config.cluster_method,
            &config.stepwise,
            config.znorm_for_dtw,
            &config.compute,
            obs,
        )?
    };
    let dependents = outcome.dependents();

    // Spatial models for dependents.
    let (spatial, spatial_in_sample) = {
        let _span = obs.span("pipeline.spatial_fit");
        let spatial = SpatialModel::fit_with(
            &split.train_cols,
            &outcome.final_signatures,
            &dependents,
            config.spatial_ridge_lambda,
        )?;
        let in_sample = spatial.in_sample_mape(&split.train_cols)?;
        (spatial, in_sample)
    };

    // Temporal forecasts for signatures.
    let sig_predictions: Vec<Vec<f64>> = {
        let _span = obs.span("pipeline.temporal_forecast");
        outcome
            .final_signatures
            .iter()
            .map(|&s| {
                sanitize(temporal_forecast(
                    &split.train_cols[s],
                    config.horizon,
                    &config.temporal,
                    &split.test_cols[s],
                ))
            })
            .collect()
    };

    // Spatial predictions for dependents.
    let dep_predictions: Vec<Vec<f64>> = spatial
        .predict(&sig_predictions)?
        .into_iter()
        .map(sanitize)
        .collect();

    // Assemble the full predicted matrix aligned with `keys`.
    // Move (not clone) each forecast into its slot; neither source vector
    // is read again.
    let mut sig_predictions = sig_predictions;
    let mut dep_predictions = dep_predictions;
    let mut predicted: Vec<Vec<f64>> = vec![Vec::new(); split.keys.len()];
    for (pos, &s) in outcome.final_signatures.iter().enumerate() {
        predicted[s] = std::mem::take(&mut sig_predictions[pos]);
    }
    for (pos, &d) in dependents.iter().enumerate() {
        predicted[d] = std::mem::take(&mut dep_predictions[pos]);
    }

    let prediction = {
        let _span = obs.span("pipeline.prediction");
        prediction_report(
            trace,
            &split,
            &predicted,
            &outcome.final_signatures,
            config.ticket_threshold_pct,
        )
    };
    let policy = ticket_policy(config)?;
    let resizing = {
        let _span = obs.span("pipeline.resize");
        resize_reports(trace, &split, &predicted, config, &policy, solvers)?
    };
    let tickets = if config.tickets.enabled {
        let _span = obs.span("pipeline.tickets");
        Some(crate::tickets::box_ticket_report(trace, config, &policy)?)
    } else {
        None
    };

    let (sig_cpu, sig_ram) = outcome.signature_resource_counts();
    let metrics = obs.is_enabled().then(|| box_metrics(&stats, &imputation));
    Ok(BoxReport {
        box_name: trace.name.clone(),
        imputation,
        signature: SignatureReport {
            total_series: split.keys.len(),
            initial_signatures: outcome.initial_signatures.len(),
            final_signatures: outcome.final_signatures.len(),
            cluster_count: outcome.cluster_count,
            silhouette: outcome.silhouette,
            signature_cpu: sig_cpu,
            signature_ram: sig_ram,
            spatial_in_sample_mape: spatial_in_sample,
        },
        prediction,
        resizing,
        metrics,
        tickets,
    })
}

/// A degraded, clustering-free pipeline for one box: every series is its
/// own signature, forecast seasonal-naively (period =
/// [`ImputationConfig::seasonal_period`](crate::impute::ImputationConfig)),
/// and resizing runs on those forecasts. No spatial models are fit.
///
/// This is the online loop's first fallback when the full pipeline fails
/// on a window — strictly simpler machinery with strictly fewer failure
/// modes, at the cost of prediction accuracy.
///
/// # Errors
///
/// The same trace-shape errors as [`run_box`]
/// ([`AtmError::RaggedTrace`], [`AtmError::TraceTooShort`],
/// [`AtmError::GappyTrace`]) plus propagated resize errors.
pub fn fallback_box_report(box_trace: &BoxTrace, config: &AtmConfig) -> AtmResult<BoxReport> {
    fallback_box_report_observed(box_trace, config, &Obs::disabled())
}

/// [`fallback_box_report`] with explicit observability: a
/// `pipeline.fallback` span, the `pipeline.fallback_runs` counter, and
/// an embedded per-run [`MetricsReport`] when `obs` is enabled.
///
/// # Errors
///
/// Identical to [`fallback_box_report`].
pub fn fallback_box_report_observed(
    box_trace: &BoxTrace,
    config: &AtmConfig,
    obs: &Obs,
) -> AtmResult<BoxReport> {
    fallback_box_report_observed_with(box_trace, config, obs, &mut ResizeSolvers::new())
}

/// [`fallback_box_report_observed`] with caller-owned [`ResizeSolvers`]
/// (see [`run_box_observed_with`]).
///
/// # Errors
///
/// Identical to [`fallback_box_report`].
pub(crate) fn fallback_box_report_observed_with(
    box_trace: &BoxTrace,
    config: &AtmConfig,
    obs: &Obs,
    solvers: &mut ResizeSolvers,
) -> AtmResult<BoxReport> {
    let _run_span = obs.span("pipeline.fallback");
    obs.add("pipeline.fallback_runs", 1);
    config.validate()?;
    validate_rectangular(box_trace)?;
    let (filled, imputation) = impute_front_end(box_trace, config);
    obs.add(
        "pipeline.imputed_samples",
        imputation.total_imputed() as u64,
    );
    let trace = filled.as_ref().unwrap_or(box_trace);
    let split = split_demands(trace, config)?;

    let temporal = TemporalModel::SeasonalNaive {
        period: config.imputation.seasonal_period,
    };
    let predicted: Vec<Vec<f64>> = split
        .train_cols
        .iter()
        .zip(&split.test_cols)
        .map(|(train, test)| sanitize(temporal_forecast(train, config.horizon, &temporal, test)))
        .collect();

    let signatures: Vec<usize> = (0..split.keys.len()).collect();
    let prediction = prediction_report(
        trace,
        &split,
        &predicted,
        &signatures,
        config.ticket_threshold_pct,
    );
    let policy = ticket_policy(config)?;
    let resizing = resize_reports(trace, &split, &predicted, config, &policy, solvers)?;
    let tickets = config
        .tickets
        .enabled
        .then(|| crate::tickets::box_ticket_report(trace, config, &policy))
        .transpose()?;

    let sig_cpu = split
        .keys
        .iter()
        .filter(|k| k.resource == Resource::Cpu)
        .count();
    let total = split.keys.len();
    let metrics = obs
        .is_enabled()
        .then(|| box_metrics(&SearchStats::default(), &imputation));
    Ok(BoxReport {
        box_name: trace.name.clone(),
        imputation,
        signature: SignatureReport {
            total_series: total,
            initial_signatures: total,
            final_signatures: total,
            cluster_count: total,
            silhouette: None,
            signature_cpu: sig_cpu,
            signature_ram: total - sig_cpu,
            spatial_in_sample_mape: 0.0,
        },
        prediction,
        resizing,
        metrics,
        tickets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterMethod;
    use atm_tracegen::{generate_box, FleetConfig};

    fn trace_config() -> FleetConfig {
        FleetConfig {
            num_boxes: 1,
            days: 3,
            gap_probability: 0.0,
            ..FleetConfig::default()
        }
    }

    fn oracle_config() -> AtmConfig {
        AtmConfig {
            temporal: TemporalModel::Oracle,
            ..AtmConfig::fast_for_tests()
        }
    }

    #[test]
    fn oracle_pipeline_runs_end_to_end() {
        let b = generate_box(&trace_config(), 0);
        let r = run_box(&b, &oracle_config()).unwrap();
        assert_eq!(r.box_name, "box0");
        assert_eq!(r.signature.total_series, b.vm_count() * 2);
        assert!(r.signature.final_signatures >= 1);
        assert!(r.signature.final_ratio() <= 1.0);
        assert_eq!(r.resizing.len(), 2);
        assert_eq!(r.prediction.per_series.len(), r.signature.total_series);
        assert!(r.imputation.is_empty());
        for res in &r.resizing {
            assert_eq!(res.capacities.len(), b.vm_count());
            let total: f64 = res.capacities.iter().sum();
            assert!(total <= b.capacity(res.resource) + 1e-9);
        }
    }

    #[test]
    fn tickets_section_is_opt_in_and_byte_transparent() {
        let b = generate_box(&trace_config(), 0);
        let off = run_box(&b, &oracle_config()).unwrap();
        assert!(off.tickets.is_none());
        // Disabled runs keep the pre-tickets serialized layout: no key.
        let bytes = serde_json::to_string(&off).unwrap();
        assert!(!bytes.contains("\"tickets\""));

        let cfg = AtmConfig {
            tickets: crate::config::TicketsConfig::fast(),
            ..oracle_config()
        };
        let on = run_box(&b, &cfg).unwrap();
        let t = on.tickets.as_ref().expect("tickets section when enabled");
        assert_eq!(t.per_resource.len(), 2); // Inter scope: CPU + RAM
        for r in &t.per_resource {
            assert!(r.incidents <= r.raw_tickets);
            if let Some(ratio) = r.collapse_ratio {
                assert!(ratio >= 1.0);
            }
        }
        // The section is purely additive: everything else is identical.
        assert_eq!(on.resizing, off.resizing);
        assert_eq!(on.prediction, off.prediction);
        assert_eq!(on.signature, off.signature);
        // And it round-trips.
        let restored: BoxReport =
            serde_json::from_str(&serde_json::to_string(&on).unwrap()).unwrap();
        assert_eq!(restored, on);
    }

    #[test]
    fn oracle_signature_predictions_are_exact() {
        let b = generate_box(&trace_config(), 1);
        let r = run_box(&b, &oracle_config()).unwrap();
        for s in &r.prediction.per_series {
            if s.is_signature {
                assert!(s.ape.unwrap_or(0.0) < 1e-9, "oracle signature APE {s:?}");
            }
        }
    }

    #[test]
    fn atm_resizing_beats_or_ties_baselines_with_oracle() {
        // With oracle demands ATM's greedy should dominate both baselines
        // in total tickets (the Fig. 8 result).
        let mut atm_total = 0usize;
        let mut stingy_total = 0usize;
        let mut maxmin_total = 0usize;
        for i in 0..5 {
            let b = generate_box(&trace_config(), i);
            let r = run_box(&b, &oracle_config()).unwrap();
            for res in &r.resizing {
                atm_total += res.atm.after;
                stingy_total += res.stingy.after;
                maxmin_total += res.maxmin.after;
            }
        }
        assert!(
            atm_total <= stingy_total,
            "ATM {atm_total} > stingy {stingy_total}"
        );
        assert!(
            atm_total <= maxmin_total,
            "ATM {atm_total} > maxmin {maxmin_total}"
        );
    }

    #[test]
    fn atm_reduces_tickets_substantially_with_oracle() {
        let mut before = 0usize;
        let mut after = 0usize;
        for i in 0..6 {
            let b = generate_box(&trace_config(), i);
            let r = run_box(&b, &oracle_config()).unwrap();
            for res in &r.resizing {
                before += res.atm.before;
                after += res.atm.after;
            }
        }
        assert!(before > 0, "no tickets in the generated boxes");
        let reduction = (before - after) as f64 / before as f64;
        assert!(
            reduction > 0.5,
            "oracle ATM reduced only {:.0}% of tickets",
            reduction * 100.0
        );
    }

    #[test]
    fn cbc_and_dtw_both_run() {
        let b = generate_box(&trace_config(), 2);
        for method in [ClusterMethod::dtw(), ClusterMethod::cbc()] {
            let cfg = oracle_config().with_cluster_method(method);
            let r = run_box(&b, &cfg).unwrap();
            assert!(r.signature.final_signatures >= 1, "{method:?}");
        }
    }

    #[test]
    fn intra_scope_covers_single_resource() {
        let b = generate_box(&trace_config(), 3);
        let cfg = oracle_config().with_scope(ResourceScope::IntraCpu);
        let r = run_box(&b, &cfg).unwrap();
        assert_eq!(r.signature.total_series, b.vm_count());
        assert_eq!(r.resizing.len(), 1);
        assert_eq!(r.resizing[0].resource, Resource::Cpu);
        assert_eq!(r.signature.signature_ram, 0);
    }

    #[test]
    fn short_trace_rejected() {
        let short = FleetConfig {
            days: 1,
            ..trace_config()
        };
        let b = generate_box(&short, 0);
        assert!(matches!(
            run_box(&b, &oracle_config()),
            Err(AtmError::TraceTooShort { .. })
        ));
    }

    #[test]
    fn gappy_trace_rejected_when_imputation_disabled() {
        let mut b = generate_box(&trace_config(), 4);
        b.vms[0].cpu_usage[250] = f64::NAN;
        let mut cfg = oracle_config();
        cfg.imputation.enabled = false;
        assert_eq!(run_box(&b, &cfg), Err(AtmError::GappyTrace));
    }

    #[test]
    fn gappy_trace_imputed_and_managed() {
        let mut b = generate_box(&trace_config(), 4);
        // A short interior gap and a long one, in the evaluation region.
        b.vms[0].cpu_usage[250] = f64::NAN;
        for t in 200..212 {
            b.vms[1].ram_usage[t] = f64::NAN;
        }
        let r = run_box(&b, &oracle_config()).unwrap();
        assert!(!r.imputation.is_empty());
        assert_eq!(r.imputation.total_imputed(), 13);
        assert_eq!(r.imputation.longest_gap(), 12);
        assert_eq!(r.imputation.per_series.len(), 2);
        assert_eq!(r.resizing.len(), 2);
    }

    #[test]
    fn imputation_is_noop_on_gap_free_trace() {
        let b = generate_box(&trace_config(), 5);
        let enabled = run_box(&b, &oracle_config()).unwrap();
        let mut cfg = oracle_config();
        cfg.imputation.enabled = false;
        let disabled = run_box(&b, &cfg).unwrap();
        assert_eq!(enabled, disabled);
    }

    #[test]
    fn ragged_trace_rejected() {
        let mut b = generate_box(&trace_config(), 6);
        b.vms[1].ram_usage.pop();
        match run_box(&b, &oracle_config()) {
            Err(AtmError::RaggedTrace { vm, .. }) => assert_eq!(vm, b.vms[1].name),
            other => panic!("expected RaggedTrace, got {other:?}"),
        }
    }

    #[test]
    fn fallback_pipeline_runs_and_treats_all_series_as_signatures() {
        let b = generate_box(&trace_config(), 7);
        let r = fallback_box_report(&b, &oracle_config()).unwrap();
        assert_eq!(r.signature.final_signatures, r.signature.total_series);
        assert!(r.signature.silhouette.is_none());
        assert!(r.prediction.per_series.iter().all(|s| s.is_signature));
        assert_eq!(r.resizing.len(), 2);
        for res in &r.resizing {
            assert_eq!(res.capacities.len(), b.vm_count());
        }
    }

    #[test]
    fn fallback_pipeline_survives_gaps() {
        let mut b = generate_box(&trace_config(), 8);
        for t in 100..140 {
            b.vms[0].cpu_usage[t] = f64::NAN;
        }
        let r = fallback_box_report(&b, &oracle_config()).unwrap();
        assert!(!r.imputation.is_empty());
    }

    #[test]
    fn mlp_pipeline_runs_and_is_reasonably_accurate() {
        let b = generate_box(&trace_config(), 5);
        let cfg = AtmConfig::fast_for_tests();
        let r = run_box(&b, &cfg).unwrap();
        // The synthetic load is seasonal but heavy-tailed with low night
        // levels, which inflates relative errors (APE divides by small
        // actuals); sanity-check the order of magnitude only.
        assert!(
            r.prediction.mape_all < 2.0,
            "MAPE {:.2} implausibly high",
            r.prediction.mape_all
        );
        assert!(r.prediction.mape_all.is_finite());
    }

    #[test]
    fn seasonal_naive_temporal_model() {
        let b = generate_box(&trace_config(), 6);
        let cfg = oracle_config().with_temporal(TemporalModel::SeasonalNaive { period: 96 });
        let r = run_box(&b, &cfg).unwrap();
        assert!(r.prediction.mape_all.is_finite());
    }

    #[test]
    fn holt_winters_temporal_model() {
        let b = generate_box(&trace_config(), 8);
        let cfg = oracle_config().with_temporal(TemporalModel::HoltWinters(
            atm_forecast::holt_winters::HoltWintersConfig::default(),
        ));
        let r = run_box(&b, &cfg).unwrap();
        assert!(r.prediction.mape_all.is_finite());
    }

    #[test]
    fn ensemble_temporal_model() {
        let b = generate_box(&trace_config(), 9);
        let cfg = oracle_config().with_temporal(TemporalModel::Ensemble {
            members: vec![
                TemporalModel::SeasonalNaive { period: 96 },
                TemporalModel::Ar { order: 4 },
            ],
        });
        let r = run_box(&b, &cfg).unwrap();
        assert!(r.prediction.mape_all.is_finite());
    }

    #[test]
    fn observed_run_embeds_metrics_and_disabled_path_is_identical() {
        let b = generate_box(&trace_config(), 3);
        let cfg = oracle_config();
        let plain = run_box(&b, &cfg).unwrap();
        assert!(plain.metrics.is_none());
        // An unobserved report serializes without any metrics key at all
        // (seed-compatible bytes).
        let json = serde_json::to_string(&plain).unwrap();
        assert!(!json.contains("\"metrics\""));

        let obs = Obs::enabled(false);
        let observed = run_box_observed(&b, &cfg, &obs).unwrap();
        let m = observed.metrics.as_ref().expect("observed run has metrics");
        assert_eq!(
            m.counter("pipeline.imputed_samples"),
            Some(plain.imputation.total_imputed() as u64)
        );
        assert!(m.counter("clustering.dtw.pairs").is_some());
        // Everything except the metrics field matches the plain run.
        let mut stripped = observed.clone();
        stripped.metrics = None;
        assert_eq!(stripped, plain);
        // The shared handle aggregated the run counters too.
        let snap = obs.metrics_snapshot();
        assert_eq!(snap.counter("pipeline.runs"), Some(1));

        let fb = fallback_box_report_observed(&b, &cfg, &obs).unwrap();
        assert!(fb.metrics.is_some());
        assert_eq!(
            obs.metrics_snapshot().counter("pipeline.fallback_runs"),
            Some(1)
        );
    }

    #[test]
    fn effective_headroom_caps_at_feasibility_and_never_deflates() {
        // Plenty of slack: the configured factor applies untouched.
        assert_eq!(effective_headroom(2.5, 0.6, 10.0, 100.0), 2.5);
        // Tight box: capped so every inflated peak stays coverable at
        // the ticket threshold (0.6 * 100 / 30 = 2.0).
        assert_eq!(effective_headroom(2.5, 0.6, 30.0, 100.0), 2.0);
        // Pressured box: inflation is a no-op, never a deflation.
        assert_eq!(effective_headroom(2.5, 0.6, 80.0, 100.0), 1.0);
        assert_eq!(effective_headroom(1.0, 0.6, 80.0, 100.0), 1.0);
        // Degenerate all-zero forecast keeps the configured factor.
        assert_eq!(effective_headroom(2.5, 0.6, 0.0, 100.0), 2.5);
    }

    #[test]
    fn demand_headroom_biases_sizing_but_not_prediction() {
        let b = generate_box(&trace_config(), 10);
        let base_cfg = oracle_config();
        let base = run_box(&b, &base_cfg).unwrap();

        // Headroom 1.0 takes the no-copy path and must be byte-identical.
        let mut noop_cfg = oracle_config();
        noop_cfg.demand_headroom = 1.0;
        assert_eq!(run_box(&b, &noop_cfg).unwrap(), base);

        // Inflated headroom may only change the resizing leg; the
        // prediction report (the drift signal) must be untouched.
        let mut head_cfg = oracle_config();
        head_cfg.demand_headroom = 1.5;
        let headed = run_box(&b, &head_cfg).unwrap();
        assert_eq!(headed.prediction, base.prediction);
        assert_eq!(headed.signature, base.signature);
        assert_eq!(headed.resizing.len(), base.resizing.len());
        for (h, b) in headed.resizing.iter().zip(&base.resizing) {
            // Replay still respects the box capacity.
            let total: f64 = h.capacities.iter().sum();
            assert!(total <= generate_box(&trace_config(), 10).capacity(h.resource) + 1e-9);
            assert_eq!(h.resource, b.resource);
        }
    }

    #[test]
    fn ar_temporal_model() {
        let b = generate_box(&trace_config(), 7);
        let cfg = oracle_config().with_temporal(TemporalModel::Ar { order: 4 });
        let r = run_box(&b, &cfg).unwrap();
        assert!(r.prediction.mape_all.is_finite());
    }
}
