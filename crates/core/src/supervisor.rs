//! Supervised fleet-scale online management: many boxes driven through
//! the checkpointed online loop, with per-box fault isolation.
//!
//! [`run_fleet_online`] is to [`run_online_checkpointed`] what
//! [`fleet::run_fleet`](crate::fleet::run_fleet()) is to
//! [`run_box`](crate::pipeline::run_box()) — a deterministic worker-pool
//! fan-out — plus the machinery a long-lived controller needs:
//!
//! - **Panic isolation**: each run attempt executes under
//!   `catch_unwind`, so a panicking box (a bug, a poisoned actuator) is
//!   quarantined in the [`FleetReport`] instead of aborting the fleet.
//! - **Restarts from checkpoint**: a failed attempt is retried up to
//!   [`DurabilityConfig::max_restarts`](crate::config::DurabilityConfig)
//!   times; with a checkpoint store each retry resumes from the last
//!   durable window rather than from scratch.
//! - **Circuit breaker**: after
//!   [`breaker_threshold`](crate::config::DurabilityConfig) consecutive
//!   failures a box's breaker opens and restarts back off exponentially
//!   with decorrelated jitter from a seeded, per-box RNG (deterministic
//!   schedule); the next attempt is the half-open probe, and one success
//!   re-closes the breaker.
//! - **Deadlines**: windows that blow
//!   [`window_deadline_ms`](crate::config::DurabilityConfig) surface as
//!   failed attempts (state already durable) and count in the report.
//!
//! The result is a [`FleetReport`] naming every box's outcome, restart
//! and panic counts, recovery events (e.g. corrupt checkpoints that fell
//! back), and the merged [`DegradationSummary`] across completed boxes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use atm_obs::{FieldValue, Obs};
use atm_tracegen::BoxTrace;
use serde::{Deserialize, Serialize};

use crate::backoff::{Backoff, BackoffPolicy};

use crate::actuate::CapacityActuator;
use crate::checkpoint::{CheckpointStore, RecoveryEvent};
use crate::config::{AtmConfig, DurabilityConfig};
use crate::error::AtmError;
use crate::metrics::MetricsReport;
use crate::online::{
    run_online_checkpointed_observed, run_online_with_actuator_observed, DegradationSummary,
    OnlineReport,
};
use crate::storage::TraceStore;

/// Circuit-breaker position, in the classic three-state machine:
/// `Closed` (requests flow) → `Open` (failing; back off) → `HalfOpen`
/// (one probe decides) → `Closed` or back to `Open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Attempts run normally.
    Closed,
    /// Too many consecutive failures; restarts are delayed by backoff.
    Open,
    /// Backoff elapsed; the next attempt is the probe.
    HalfOpen,
}

/// Per-box circuit breaker with decorrelated-jitter backoff.
///
/// The jitter schedule lives in [`crate::backoff`] (shared with the
/// serve-layer retry clients); the breaker only owns the three-state
/// machine and the failure counting. The seeded draw sequence is
/// identical to the pre-extraction breaker, so fleet reports keep their
/// historical bytes.
pub(crate) struct CircuitBreaker {
    threshold: usize,
    consecutive_failures: usize,
    state: BreakerState,
    trips: usize,
    backoff: Backoff,
}

impl CircuitBreaker {
    pub(crate) fn new(cfg: &DurabilityConfig, seed: u64) -> Self {
        CircuitBreaker {
            threshold: cfg.breaker_threshold,
            consecutive_failures: 0,
            state: BreakerState::Closed,
            trips: 0,
            backoff: BackoffPolicy::new(cfg.breaker_base_ms, cfg.breaker_cap_ms).seeded(seed),
        }
    }

    pub(crate) fn state(&self) -> BreakerState {
        self.state
    }

    pub(crate) fn trips(&self) -> usize {
        self.trips
    }

    /// One successful attempt: the breaker closes and backoff resets.
    pub(crate) fn on_success(&mut self) {
        self.consecutive_failures = 0;
        self.backoff.reset();
        self.state = BreakerState::Closed;
    }

    /// One failed attempt. Returns the backoff to wait before the next
    /// attempt (the half-open probe) once the breaker is open; `None`
    /// while it is still closed or when `threshold` is 0 (disabled).
    pub(crate) fn on_failure(&mut self) -> Option<Duration> {
        self.consecutive_failures += 1;
        if self.threshold == 0 || self.consecutive_failures < self.threshold {
            return None;
        }
        if self.state == BreakerState::Closed {
            self.trips += 1;
        }
        self.state = BreakerState::Open;
        let wait = self.backoff.next_wait();
        // The caller sleeps out the backoff and then probes.
        self.state = BreakerState::HalfOpen;
        Some(wait)
    }
}

/// How one supervised box ended up.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BoxRunStatus {
    /// The run completed (possibly after restarts).
    Completed,
    /// Every attempt failed or panicked; the box is out of the fleet
    /// until an operator intervenes. Its checkpoints are left on disk so
    /// a later run can still resume.
    Quarantined {
        /// The final attempt's error (or panic message).
        error: String,
    },
}

/// Supervision record for one box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxRun {
    /// The box's name.
    pub box_name: String,
    /// Final status.
    pub status: BoxRunStatus,
    /// The completed report; `None` when quarantined.
    pub report: Option<OnlineReport>,
    /// Run attempts used (1 = no restarts).
    pub attempts: usize,
    /// Attempts that ended in a panic (caught, not propagated).
    pub panics: usize,
    /// Attempts that ended with a blown per-window deadline.
    pub deadline_misses: usize,
    /// Times the circuit breaker tripped open.
    pub breaker_trips: usize,
    /// Checkpoint-recovery events across attempts (corruption,
    /// fallbacks, resume points).
    pub recovery_events: Vec<RecoveryEvent>,
}

impl BoxRun {
    /// Whether the box was quarantined.
    pub fn is_quarantined(&self) -> bool {
        matches!(self.status, BoxRunStatus::Quarantined { .. })
    }
}

/// Fleet-level outcome of a supervised online run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Per-box records, in input order.
    pub boxes: Vec<BoxRun>,
    /// Merged degradation accounting over completed boxes.
    pub degradation: DegradationSummary,
    /// Deterministic metrics from the run's [`Obs`] handle (counters,
    /// gauges, integer histograms — never wall-clock timings). `None`
    /// unless the fleet ran through
    /// [`run_fleet_online_observed`] with an enabled handle; skipped
    /// from serialization in that case so unobserved reports keep their
    /// historical byte layout.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics: Option<MetricsReport>,
}

impl FleetReport {
    /// Boxes that completed.
    pub fn completed(&self) -> usize {
        self.boxes.len() - self.quarantined()
    }

    /// Boxes that were quarantined.
    pub fn quarantined(&self) -> usize {
        self.boxes.iter().filter(|b| b.is_quarantined()).count()
    }

    /// Total restarts across the fleet.
    pub fn total_restarts(&self) -> usize {
        self.boxes.iter().map(|b| b.attempts - 1).sum()
    }

    /// Every drift event across completed boxes, with the box it came
    /// from, in input order.
    pub fn drift_events(&self) -> Vec<(&str, &crate::online::DriftEvent)> {
        self.boxes
            .iter()
            .filter_map(|b| b.report.as_ref().map(|r| (b.box_name.as_str(), r)))
            .flat_map(|(name, r)| r.adaptation.events.iter().map(move |e| (name, e)))
            .collect()
    }

    /// Total adaptation re-fit budget spent across completed boxes.
    pub fn total_refits(&self) -> usize {
        self.boxes
            .iter()
            .filter_map(|b| b.report.as_ref())
            .map(|r| r.adaptation.refits_used)
            .fold(0, usize::saturating_add)
    }

    /// Every chronic-offender ticket event across completed boxes, with
    /// the box it came from, in input order.
    pub fn ticket_events(&self) -> Vec<(&str, &crate::tickets::TicketEvent)> {
        self.boxes
            .iter()
            .filter_map(|b| b.report.as_ref().map(|r| (b.box_name.as_str(), r)))
            .flat_map(|(name, r)| r.tickets.events.iter().map(move |e| (name, e)))
            .collect()
    }

    /// Names of completed boxes declared chronic offenders at least once
    /// during their run, in input order.
    pub fn chronic_boxes(&self) -> Vec<&str> {
        self.boxes
            .iter()
            .filter(|b| {
                b.report.as_ref().is_some_and(|r| {
                    !r.tickets
                        .events_of(crate::tickets::TicketEventKind::ChronicDeclared)
                        .is_empty()
                })
            })
            .map(|b| b.box_name.as_str())
            .collect()
    }

    /// Every recovery event across the fleet, with the box it came from.
    pub fn recovery_events(&self) -> Vec<(&str, &RecoveryEvent)> {
        self.boxes
            .iter()
            .flat_map(|b| {
                b.recovery_events
                    .iter()
                    .map(move |e| (b.box_name.as_str(), e))
            })
            .collect()
    }
}

/// Derives a per-box RNG seed from the supervisor seed (SplitMix64-style
/// mixing, matching the determinism idiom used by the trace generator).
fn box_seed(seed: u64, index: usize) -> u64 {
    let mut z = seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic claim order for the supervised worker pools:
/// chronic-offender priority weights first (highest weight wins, ties
/// broken by input index), the identity order when ticket intelligence
/// is off. Only the order in which idle workers *claim* boxes changes —
/// results are always reassembled by input index, so the report bytes
/// are identical for any order and any thread count.
fn claim_order(weights: Option<Vec<f64>>, n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    if let Some(w) = weights {
        debug_assert_eq!(w.len(), n);
        order.sort_by(|&a, &b| w[b].total_cmp(&w[a]).then(a.cmp(&b)));
    }
    order
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Records a finished box's supervision accounting on `obs`: the
/// `supervisor.*` counters plus a terminal `box_completed` /
/// `box_quarantined` event (and one `recovery` event per
/// checkpoint-recovery event) under the box's scope.
fn record_box_obs(obs: &Obs, run: &BoxRun) {
    match &run.status {
        BoxRunStatus::Completed => obs.add("supervisor.boxes_completed", 1),
        BoxRunStatus::Quarantined { .. } => obs.add("supervisor.boxes_quarantined", 1),
    }
    obs.add("supervisor.restarts", (run.attempts - 1) as u64);
    obs.add("supervisor.panics", run.panics as u64);
    obs.add("supervisor.deadline_misses", run.deadline_misses as u64);
    obs.add("supervisor.breaker_trips", run.breaker_trips as u64);
    obs.add(
        "supervisor.recovery_events",
        run.recovery_events.len() as u64,
    );
    for event in &run.recovery_events {
        obs.event(
            &run.box_name,
            "recovery",
            vec![("detail", FieldValue::from(format!("{event:?}")))],
        );
    }
    let mut fields = vec![
        ("attempts", FieldValue::from(run.attempts)),
        ("panics", FieldValue::from(run.panics)),
        ("deadline_misses", FieldValue::from(run.deadline_misses)),
        ("breaker_trips", FieldValue::from(run.breaker_trips)),
    ];
    let kind = match &run.status {
        BoxRunStatus::Completed => "box_completed",
        BoxRunStatus::Quarantined { error } => {
            fields.push(("error", FieldValue::from(error.clone())));
            "box_quarantined"
        }
    };
    obs.event(&run.box_name, kind, fields);
}

/// Drives one box to completion or quarantine.
///
/// With a checkpoint store, restart attempts resume from the last
/// durable window, and per-window `online.*` metrics are recorded only
/// after persistence — so a restarted box never double-counts a window.
/// Without a store a restart recomputes every window from scratch, and
/// the counters reflect that recomputed work.
fn supervise_box<F>(
    index: usize,
    box_trace: &BoxTrace,
    config: &AtmConfig,
    store: Option<&CheckpointStore>,
    make_actuator: &F,
    obs: &Obs,
) -> BoxRun
where
    F: Fn(usize, &BoxTrace) -> Box<dyn CapacityActuator + Send> + Sync,
{
    let durability = &config.durability;
    let mut breaker = CircuitBreaker::new(durability, box_seed(durability.supervisor_seed, index));
    let max_attempts = durability.max_restarts + 1;
    let mut attempts = 0;
    let mut panics = 0;
    let mut deadline_misses = 0;
    let mut recovery_events = Vec::new();
    let mut last_error = String::new();

    while attempts < max_attempts {
        attempts += 1;
        // A fresh actuator per attempt: a panic may have left the
        // previous one in an arbitrary state.
        let mut actuator = make_actuator(index, box_trace);
        let attempt = catch_unwind(AssertUnwindSafe(|| match store {
            Some(s) => {
                run_online_checkpointed_observed(box_trace, config, actuator.as_mut(), s, obs)
                    .map(|run| (run.report, run.recovery.events))
            }
            None => run_online_with_actuator_observed(box_trace, config, actuator.as_mut(), obs)
                .map(|report| (report, Vec::new())),
        }));
        match attempt {
            Ok(Ok((report, events))) => {
                breaker.on_success();
                recovery_events.extend(events);
                let run = BoxRun {
                    box_name: box_trace.name.clone(),
                    status: BoxRunStatus::Completed,
                    report: Some(report),
                    attempts,
                    panics,
                    deadline_misses,
                    breaker_trips: breaker.trips(),
                    recovery_events,
                };
                if obs.is_enabled() {
                    record_box_obs(obs, &run);
                }
                return run;
            }
            Ok(Err(e)) => {
                if matches!(e, AtmError::DeadlineExceeded { .. }) {
                    deadline_misses += 1;
                }
                last_error = e.to_string();
            }
            Err(payload) => {
                panics += 1;
                last_error = format!("panic: {}", panic_message(payload));
            }
        }
        if attempts < max_attempts {
            if let Some(backoff) = breaker.on_failure() {
                std::thread::sleep(backoff);
            }
        }
    }

    let run = BoxRun {
        box_name: box_trace.name.clone(),
        status: BoxRunStatus::Quarantined { error: last_error },
        report: None,
        attempts,
        panics,
        deadline_misses,
        breaker_trips: breaker.trips(),
        recovery_events,
    };
    if obs.is_enabled() {
        record_box_obs(obs, &run);
    }
    run
}

/// Runs the online management loop over every box with `threads` worker
/// threads (1 = sequential), supervising each box independently: caught
/// panics, checkpoint resumes, deadline misses, circuit-broken restarts.
/// A box that exhausts its restarts is quarantined in the report; the
/// rest of the fleet is unaffected.
///
/// `store` enables durability (`None` runs purely in memory);
/// `make_actuator` builds one enforcement backend per box per attempt.
/// Results are placed in input order regardless of thread interleaving,
/// so the report is deterministic for any `threads` value.
pub fn run_fleet_online<F>(
    boxes: &[BoxTrace],
    config: &AtmConfig,
    store: Option<&CheckpointStore>,
    threads: usize,
    make_actuator: F,
) -> FleetReport
where
    F: Fn(usize, &BoxTrace) -> Box<dyn CapacityActuator + Send> + Sync,
{
    run_fleet_online_observed(
        boxes,
        config,
        store,
        threads,
        make_actuator,
        &Obs::disabled(),
    )
}

/// [`run_fleet_online`] with an observability handle: every box's
/// pipeline, online-window, and supervision accounting lands on `obs`
/// (all commutative sums and per-scope event sequences, so the result
/// is byte-identical for any `threads` value), and the returned
/// [`FleetReport`] embeds the final deterministic [`MetricsReport`]
/// when the handle is enabled.
pub fn run_fleet_online_observed<F>(
    boxes: &[BoxTrace],
    config: &AtmConfig,
    store: Option<&CheckpointStore>,
    threads: usize,
    make_actuator: F,
    obs: &Obs,
) -> FleetReport
where
    F: Fn(usize, &BoxTrace) -> Box<dyn CapacityActuator + Send> + Sync,
{
    obs.set_gauge("fleet.boxes", boxes.len() as i64);
    let threads = threads.max(1).min(boxes.len().max(1));
    // Chronic-offender candidates are claimed first under contention;
    // see `claim_order` for why this never changes report bytes.
    let weights = config.tickets.enabled.then(|| {
        boxes
            .iter()
            .map(|b| crate::tickets::priority_weight(b, config))
            .collect()
    });
    let order = claim_order(weights, boxes.len());
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, BoxRun)>> = Mutex::new(Vec::with_capacity(boxes.len()));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let slot = next.fetch_add(1, Ordering::Relaxed);
                if slot >= order.len() {
                    break;
                }
                let i = order[slot];
                let run = supervise_box(i, &boxes[i], config, store, &make_actuator, obs);
                results
                    .lock()
                    .expect("no panics while holding the lock")
                    .push((i, run));
            });
        }
    });

    let mut collected = results.into_inner().expect("threads joined");
    collected.sort_by_key(|(i, _)| *i);

    let mut degradation = DegradationSummary::default();
    let boxes: Vec<BoxRun> = collected.into_iter().map(|(_, run)| run).collect();
    for run in &boxes {
        if let Some(report) = &run.report {
            degradation.merge(&report.degradation);
        }
    }
    let metrics = obs
        .is_enabled()
        .then(|| MetricsReport::from(&obs.metrics_snapshot()));
    FleetReport {
        boxes,
        degradation,
        metrics,
    }
}

/// [`run_fleet_online_observed`] over a [`TraceStore`]: each worker loads
/// its box from the store on demand and drops it when the box's run
/// completes, so peak memory is `O(threads × box)` instead of `O(fleet)`.
/// The `stream` budget clamps parallelism exactly like
/// [`crate::fleet::run_fleet_streamed`] and never changes results.
///
/// Consistent with the supervisor's degrade-don't-abort contract, a
/// storage failure (I/O error, CRC mismatch) **quarantines** that box —
/// the load error becomes its [`BoxRunStatus::Quarantined`] reason, named
/// from the store's metadata index — rather than aborting the fleet the
/// way the offline streamed runner does.
pub fn run_fleet_online_streamed<F>(
    trace_store: &dyn TraceStore,
    config: &AtmConfig,
    store: Option<&CheckpointStore>,
    stream: &crate::fleet::StreamConfig,
    make_actuator: F,
    obs: &Obs,
) -> FleetReport
where
    F: Fn(usize, &BoxTrace) -> Box<dyn CapacityActuator + Send> + Sync,
{
    let n = trace_store.box_count();
    obs.set_gauge("fleet.boxes", n as i64);
    let mut per_box_bytes = 0u64;
    for i in 0..n {
        if let Ok(meta) = trace_store.meta(i) {
            per_box_bytes = per_box_bytes.max(meta.sample_bytes());
        }
    }
    let threads = stream.effective_threads(per_box_bytes).min(n.max(1));
    // Chronic-offender candidates are claimed first under contention.
    // The sequential pre-pass loads one box at a time (peak memory stays
    // `O(threads × box)`); a box that fails to load weighs 0 here and is
    // quarantined by its worker below, exactly as without priorities.
    let weights = config.tickets.enabled.then(|| {
        (0..n)
            .map(|i| {
                trace_store
                    .load(i)
                    .map(|b| crate::tickets::priority_weight(b.as_ref(), config))
                    .unwrap_or(0.0)
            })
            .collect()
    });
    let order = claim_order(weights, n);
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, BoxRun)>> = Mutex::new(Vec::with_capacity(n));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let slot = next.fetch_add(1, Ordering::Relaxed);
                if slot >= order.len() {
                    break;
                }
                let i = order[slot];
                let run = match trace_store.load(i) {
                    Ok(b) => supervise_box(i, b.as_ref(), config, store, &make_actuator, obs),
                    Err(e) => {
                        obs.add("supervisor.boxes_quarantined", 1);
                        BoxRun {
                            box_name: trace_store
                                .meta(i)
                                .map(|m| m.name)
                                .unwrap_or_else(|_| format!("box[{i}]")),
                            status: BoxRunStatus::Quarantined {
                                error: e.to_string(),
                            },
                            report: None,
                            attempts: 0,
                            panics: 0,
                            deadline_misses: 0,
                            breaker_trips: 0,
                            recovery_events: Vec::new(),
                        }
                    }
                };
                results
                    .lock()
                    .expect("no panics while holding the lock")
                    .push((i, run));
            });
        }
    });

    let mut collected = results.into_inner().expect("threads joined");
    collected.sort_by_key(|(i, _)| *i);

    let mut degradation = DegradationSummary::default();
    let boxes: Vec<BoxRun> = collected.into_iter().map(|(_, run)| run).collect();
    for run in &boxes {
        if let Some(report) = &run.report {
            degradation.merge(&report.degradation);
        }
    }
    let metrics = obs
        .is_enabled()
        .then(|| MetricsReport::from(&obs.metrics_snapshot()));
    FleetReport {
        boxes,
        degradation,
        metrics,
    }
}

/// [`run_fleet_online`] driven entirely by the configuration: the
/// checkpoint store is opened from `config.durability.checkpoint_dir`
/// (empty = run without durability), the [`Obs`] handle is built from
/// `config.observability`, and — when
/// [`ObservabilityConfig::event_log`](crate::config::ObservabilityConfig)
/// names a path — the JSONL event log is written there atomically after
/// the run.
///
/// # Errors
///
/// [`AtmError`](crate::AtmError) when the configured checkpoint
/// directory cannot be created or the configured event log cannot be
/// written.
pub fn run_fleet_online_from_config<F>(
    boxes: &[BoxTrace],
    config: &AtmConfig,
    threads: usize,
    make_actuator: F,
) -> crate::AtmResult<FleetReport>
where
    F: Fn(usize, &BoxTrace) -> Box<dyn CapacityActuator + Send> + Sync,
{
    let store = CheckpointStore::from_config(&config.durability)?;
    let obs = config.observability.build_obs();
    let report =
        run_fleet_online_observed(boxes, config, store.as_ref(), threads, make_actuator, &obs);
    if obs.is_enabled() && !config.observability.event_log.is_empty() {
        obs.write_events(std::path::Path::new(&config.observability.event_log))
            .map_err(|e| AtmError::Checkpoint {
                path: config.observability.event_log.clone(),
                reason: format!("event log write failed: {e}"),
            })?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuate::test_support::CrashingActuator;
    use crate::actuate::NoopActuator;
    use crate::config::TemporalModel;
    use crate::online::run_online;
    use atm_tracegen::{generate_fleet, FleetConfig};

    fn small_fleet(n: usize) -> Vec<BoxTrace> {
        generate_fleet(&FleetConfig {
            num_boxes: n,
            days: 3,
            gap_probability: 0.0,
            ..FleetConfig::default()
        })
        .boxes
    }

    fn oracle_config() -> AtmConfig {
        let mut cfg = AtmConfig {
            temporal: TemporalModel::Oracle,
            train_windows: 96,
            horizon: 96,
            ..AtmConfig::fast_for_tests()
        };
        // Keep test backoffs instant.
        cfg.durability.breaker_base_ms = 0;
        cfg.durability.breaker_cap_ms = 0;
        cfg
    }

    fn noop_factory(_: usize, _: &BoxTrace) -> Box<dyn CapacityActuator + Send> {
        Box::new(NoopActuator::new())
    }

    fn temp_store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!(
            "atm-supervisor-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::open(dir).unwrap()
    }

    #[test]
    fn fleet_completes_and_matches_solo_runs() {
        let boxes = small_fleet(3);
        let cfg = oracle_config();
        let report = run_fleet_online(&boxes, &cfg, None, 2, noop_factory);
        assert_eq!(report.completed(), 3);
        assert_eq!(report.quarantined(), 0);
        assert_eq!(report.total_restarts(), 0);
        for (b, run) in boxes.iter().zip(&report.boxes) {
            assert_eq!(run.box_name, b.name);
            let solo = run_online(b, &cfg).unwrap();
            assert_eq!(run.report.as_ref().unwrap(), &solo);
        }
        // The merged summary adds up.
        assert_eq!(
            report.degradation.windows_total,
            report
                .boxes
                .iter()
                .filter_map(|b| b.report.as_ref())
                .map(|r| r.degradation.windows_total)
                .sum::<usize>()
        );
    }

    #[test]
    fn config_driven_fleet_run_opens_the_store_from_checkpoint_dir() {
        let boxes = small_fleet(2);
        let mut cfg = oracle_config();
        let dir = std::env::temp_dir().join(format!(
            "atm-supervisor-from-config-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        cfg.durability.checkpoint_dir = dir.display().to_string();

        let configured = run_fleet_online_from_config(&boxes, &cfg, 2, noop_factory).unwrap();
        assert_eq!(configured.completed(), 2);
        // Checkpoints actually landed in the configured directory.
        assert!(
            std::fs::read_dir(&dir).unwrap().next().is_some(),
            "checkpoint files written under the configured dir"
        );
        // Same bytes as an explicit-store run (fresh dir, same fleet).
        let explicit =
            run_fleet_online(&boxes, &cfg, Some(&temp_store("explicit")), 1, noop_factory);
        assert_eq!(
            serde_json::to_string(&configured).unwrap(),
            serde_json::to_string(&explicit).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_report_matches_sequential() {
        let boxes = small_fleet(4);
        let cfg = oracle_config();
        let seq = run_fleet_online(&boxes, &cfg, None, 1, noop_factory);
        let par = run_fleet_online(&boxes, &cfg, None, 4, noop_factory);
        assert_eq!(seq, par);
    }

    #[test]
    fn claim_order_sorts_by_weight_with_stable_ties() {
        assert_eq!(claim_order(None, 4), vec![0, 1, 2, 3]);
        assert_eq!(
            claim_order(Some(vec![0.0, 2.5, 0.0, 2.5]), 4),
            vec![1, 3, 0, 2]
        );
        assert_eq!(claim_order(None, 0), Vec::<usize>::new());
        // Positive NaN sorts above every finite weight in the total
        // order — deterministic, never a panic (priority_weight never
        // produces one, but the pool must not care).
        assert_eq!(
            claim_order(Some(vec![f64::NAN, 1.0, 0.0]), 3),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn ticket_priority_never_changes_report_bytes() {
        let boxes = small_fleet(4);
        let mut cfg = oracle_config();
        cfg.tickets = crate::config::TicketsConfig::fast();
        let seq = run_fleet_online(&boxes, &cfg, None, 1, noop_factory);
        let par = run_fleet_online(&boxes, &cfg, None, 4, noop_factory);
        assert_eq!(seq, par);
        assert_eq!(
            serde_json::to_string(&seq).unwrap(),
            serde_json::to_string(&par).unwrap()
        );
        // Boxes stay in input order no matter the claim order.
        for (b, run) in boxes.iter().zip(&seq.boxes) {
            assert_eq!(run.box_name, b.name);
        }
        // Helper surfaces stay consistent: every chronic box carries at
        // least one declared event.
        let chronic = seq.chronic_boxes();
        assert!(chronic.len() <= seq.completed());
        assert!(seq.ticket_events().len() >= chronic.len());
    }

    #[test]
    fn panicking_box_quarantines_without_aborting_fleet() {
        let boxes = small_fleet(3);
        let mut cfg = oracle_config();
        cfg.durability.max_restarts = 1;
        // Box 1's actuator panics on its first apply, every attempt.
        let factory = |i: usize, _: &BoxTrace| -> Box<dyn CapacityActuator + Send> {
            if i == 1 {
                Box::new(CrashingActuator::new(1))
            } else {
                Box::new(NoopActuator::new())
            }
        };
        let report = run_fleet_online(&boxes, &cfg, None, 2, factory);
        assert_eq!(report.quarantined(), 1);
        assert_eq!(report.completed(), 2);
        let bad = &report.boxes[1];
        assert!(bad.is_quarantined());
        assert_eq!(bad.attempts, 2);
        assert_eq!(bad.panics, 2);
        match &bad.status {
            BoxRunStatus::Quarantined { error } => {
                assert!(error.contains("panic"), "{error}");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        // Neighbours are untouched.
        for i in [0, 2] {
            assert!(!report.boxes[i].is_quarantined());
            assert_eq!(report.boxes[i].panics, 0);
        }
    }

    #[test]
    fn panicking_box_resumes_from_checkpoint_and_completes() {
        let boxes = small_fleet(1);
        let cfg = oracle_config();
        let store = temp_store("panic-resume");
        // 3 days, 1-day train, 1-day horizon -> 2 windows. The actuator
        // panics on its 2nd apply: attempt 1 persists window 0, dies in
        // window 1. Attempt 2's fresh actuator resumes at window 1 and
        // needs only 1 apply, so it completes.
        let factory = |_: usize, _: &BoxTrace| -> Box<dyn CapacityActuator + Send> {
            Box::new(CrashingActuator::new(2))
        };
        let report = run_fleet_online(&boxes, &cfg, Some(&store), 1, factory);
        let run = &report.boxes[0];
        assert!(!run.is_quarantined(), "{:?}", run.status);
        assert_eq!(run.attempts, 2);
        assert_eq!(run.panics, 1);
        assert!(run
            .recovery_events
            .iter()
            .any(|e| matches!(e, RecoveryEvent::Resumed { window: 1 })));
        // The resumed report equals an uninterrupted run's.
        let solo = run_online(&boxes[0], &cfg).unwrap();
        assert_eq!(run.report.as_ref().unwrap(), &solo);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn breaker_opens_after_threshold_and_recloses_on_success() {
        let cfg = DurabilityConfig {
            breaker_threshold: 2,
            breaker_base_ms: 0,
            breaker_cap_ms: 0,
            ..DurabilityConfig::default()
        };
        let mut breaker = CircuitBreaker::new(&cfg, 42);
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(breaker.on_failure(), None);
        let wait = breaker.on_failure();
        assert!(wait.is_some(), "threshold reached; breaker must open");
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert_eq!(breaker.trips(), 1);
        // Probe fails: stays open, no second trip counted.
        assert!(breaker.on_failure().is_some());
        assert_eq!(breaker.trips(), 1);
        // Probe succeeds: closed again, counter reset.
        breaker.on_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(breaker.on_failure(), None);
    }

    #[test]
    fn breaker_backoff_is_jittered_deterministic_and_capped() {
        let cfg = DurabilityConfig {
            breaker_threshold: 1,
            breaker_base_ms: 10,
            breaker_cap_ms: 50,
            ..DurabilityConfig::default()
        };
        let schedule = |seed: u64| -> Vec<u64> {
            let mut b = CircuitBreaker::new(&cfg, seed);
            (0..6)
                .map(|_| b.on_failure().expect("threshold 1 opens instantly"))
                .map(|d| u64::try_from(d.as_millis()).unwrap())
                .collect()
        };
        let a = schedule(7);
        assert_eq!(a, schedule(7), "same seed, same schedule");
        assert_ne!(a, schedule(8), "different seed, different jitter");
        for &wait in &a {
            assert!((10..=50).contains(&wait), "wait {wait} out of bounds");
        }
    }

    #[test]
    fn disabled_breaker_never_opens() {
        let cfg = DurabilityConfig {
            breaker_threshold: 0,
            ..DurabilityConfig::default()
        };
        let mut breaker = CircuitBreaker::new(&cfg, 1);
        for _ in 0..10 {
            assert_eq!(breaker.on_failure(), None);
        }
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(breaker.trips(), 0);
    }

    #[test]
    fn deadline_blown_box_quarantines_visibly() {
        let boxes = small_fleet(2);
        let mut cfg = oracle_config();
        // Nothing completes in 0 ms... except that 0 disables the
        // deadline, so use the smallest enforceable value with a store
        // (the deadline is only checked on the durable path).
        cfg.durability.window_deadline_ms = 1;
        cfg.durability.max_restarts = 1;
        let store = temp_store("deadline");
        let report = run_fleet_online(&boxes, &cfg, Some(&store), 1, noop_factory);
        // Every window persists before the deadline check, so even if a
        // fast machine sneaks windows under 1 ms, the accounting must be
        // consistent: a quarantined box has deadline misses recorded.
        for run in &report.boxes {
            if run.is_quarantined() {
                assert!(run.deadline_misses > 0, "{run:?}");
                match &run.status {
                    BoxRunStatus::Quarantined { error } => {
                        assert!(error.contains("deadline"), "{error}");
                    }
                    _ => unreachable!(),
                }
            } else {
                // Completed despite the 1 ms deadline — restarts resumed
                // from checkpoints window by window until done.
                assert!(run.report.is_some());
            }
        }
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn observed_fleet_records_supervision_counters() {
        let boxes = small_fleet(3);
        let mut cfg = oracle_config();
        cfg.durability.max_restarts = 1;
        let factory = |i: usize, _: &BoxTrace| -> Box<dyn CapacityActuator + Send> {
            if i == 1 {
                Box::new(CrashingActuator::new(1))
            } else {
                Box::new(NoopActuator::new())
            }
        };
        let obs = Obs::enabled(false);
        let report = run_fleet_online_observed(&boxes, &cfg, None, 2, factory, &obs);
        let m = report.metrics.as_ref().expect("observed fleet has metrics");
        assert_eq!(m.counter("supervisor.boxes_completed"), Some(2));
        assert_eq!(m.counter("supervisor.boxes_quarantined"), Some(1));
        assert_eq!(m.counter("supervisor.restarts"), Some(1));
        assert_eq!(m.counter("supervisor.panics"), Some(2));
        assert_eq!(m.gauge("fleet.boxes"), Some(3));
        assert!(obs
            .events()
            .iter()
            .any(|e| e.scope == boxes[1].name && e.kind == "box_quarantined"));
        assert_eq!(
            obs.events()
                .iter()
                .filter(|e| e.kind == "box_completed")
                .count(),
            2
        );

        // Unobserved runs embed no metrics and serialize without the key.
        let plain = run_fleet_online(&boxes, &oracle_config(), None, 1, noop_factory);
        assert!(plain.metrics.is_none());
        assert!(!serde_json::to_string(&plain)
            .unwrap()
            .contains("\"metrics\""));
    }

    #[test]
    fn fleet_report_aggregates_drift_accounting() {
        let boxes = small_fleet(2);
        let cfg = oracle_config();
        // Oracle forecasts on a clean fleet: adaptation is off by
        // default, so the aggregate must be empty.
        let report = run_fleet_online(&boxes, &cfg, None, 2, noop_factory);
        assert!(report.drift_events().is_empty());
        assert_eq!(report.total_refits(), 0);

        // Enabling adaptation on a drift-free fleet must not fire
        // either: the detector baselines and stays quiet.
        let mut adaptive = cfg.clone();
        adaptive.adaptation = crate::config::AdaptationConfig::fast();
        let report = run_fleet_online(&boxes, &adaptive, None, 1, noop_factory);
        assert!(report.drift_events().is_empty());
        assert_eq!(report.total_refits(), 0);
        for run in &report.boxes {
            assert!(run.report.as_ref().unwrap().adaptation.is_empty());
        }
    }

    #[test]
    fn box_seed_is_stable_and_spread() {
        assert_eq!(box_seed(1, 0), box_seed(1, 0));
        assert_ne!(box_seed(1, 0), box_seed(1, 1));
        assert_ne!(box_seed(1, 0), box_seed(2, 0));
    }
}
