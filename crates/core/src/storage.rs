//! Trace storage abstraction: the fleet as a random-access box store.
//!
//! `run_fleet` historically took `&[BoxTrace]` — the whole fleet resident in
//! RAM. At paper scale (~6K boxes / 80K VMs) that is ~850 MB of samples plus
//! allocator overhead, so the streaming pipeline instead consumes a
//! [`TraceStore`]: an indexed, thread-safe source of boxes that a worker can
//! load one at a time and drop as soon as its report is computed.
//!
//! Two backends:
//!
//! - [`InMemoryStore`] wraps a borrowed `&[BoxTrace]` and serves
//!   `Cow::Borrowed` boxes — zero-copy, the legacy behavior.
//! - [`ChunkStore`] wraps a [`tracegen::chunk::ChunkReader`] over a columnar
//!   chunk file and serves `Cow::Owned` boxes decoded (and CRC-verified) on
//!   demand, via `mmap` on Linux. Peak memory is the per-worker working set,
//!   not the fleet.
//!
//! Both backends expose cheap per-box metadata ([`TraceStore::meta`]) so a
//! scheduler can size its working-set estimate without loading samples.

use std::borrow::Cow;
use std::path::Path;

use atm_tracegen::chunk::{ChunkError, ChunkReader};
use atm_tracegen::BoxTrace;

use crate::error::{AtmError, AtmResult};

/// Cheap per-box metadata: enough to name failures and budget memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoxMeta {
    /// Box name, unique within the fleet.
    pub name: String,
    /// Number of co-located VMs.
    pub vm_count: usize,
    /// Windows per series.
    pub windows: usize,
}

impl BoxMeta {
    /// Raw sample bytes a loaded copy of this box holds
    /// (`vms × 2 series × windows × 8 bytes`).
    pub fn sample_bytes(&self) -> u64 {
        (self.vm_count * 2 * self.windows * 8) as u64
    }
}

/// An indexed, thread-safe source of box traces.
///
/// Implementations must be deterministic: `load(i)` returns the same box
/// every time, independent of call order or calling thread — the streaming
/// fleet runners rely on this for byte-identical reports at any thread
/// count.
pub trait TraceStore: Sync {
    /// Number of boxes in the store.
    fn box_count(&self) -> usize;

    /// Metadata for box `index` without loading its samples.
    fn meta(&self, index: usize) -> AtmResult<BoxMeta>;

    /// Load box `index`. Borrowed for resident backends, owned for
    /// on-disk backends.
    fn load(&self, index: usize) -> AtmResult<Cow<'_, BoxTrace>>;
}

/// The resident backend: a borrowed slice of already-materialized boxes.
pub struct InMemoryStore<'a> {
    boxes: &'a [BoxTrace],
}

impl<'a> InMemoryStore<'a> {
    /// Wrap a fleet slice.
    pub fn new(boxes: &'a [BoxTrace]) -> Self {
        InMemoryStore { boxes }
    }
}

impl TraceStore for InMemoryStore<'_> {
    fn box_count(&self) -> usize {
        self.boxes.len()
    }

    fn meta(&self, index: usize) -> AtmResult<BoxMeta> {
        let b = self.boxes.get(index).ok_or_else(|| AtmError::Storage {
            path: "<in-memory>".into(),
            reason: format!("box index {index} out of range ({})", self.boxes.len()),
        })?;
        Ok(BoxMeta {
            name: b.name.clone(),
            vm_count: b.vms.len(),
            windows: b.window_count(),
        })
    }

    fn load(&self, index: usize) -> AtmResult<Cow<'_, BoxTrace>> {
        self.boxes
            .get(index)
            .map(Cow::Borrowed)
            .ok_or_else(|| AtmError::Storage {
                path: "<in-memory>".into(),
                reason: format!("box index {index} out of range ({})", self.boxes.len()),
            })
    }
}

fn chunk_err(e: ChunkError) -> AtmError {
    let path = match &e {
        ChunkError::Io { path, .. } | ChunkError::Corrupt { path, .. } => {
            path.display().to_string()
        }
        _ => "<chunk>".into(),
    };
    AtmError::Storage {
        path,
        reason: e.to_string(),
    }
}

/// The out-of-core backend: a CRC-checked columnar chunk file.
pub struct ChunkStore {
    reader: ChunkReader,
}

impl ChunkStore {
    /// Open (and index) a chunk file written by
    /// `tracegen::chunk::ChunkWriter`; recovers from a torn tail.
    pub fn open(path: &Path) -> AtmResult<Self> {
        Ok(ChunkStore {
            reader: ChunkReader::open(path).map_err(chunk_err)?,
        })
    }

    /// Wrap an already-open reader (e.g. with `mmap` disabled for
    /// equivalence testing).
    pub fn from_reader(reader: ChunkReader) -> Self {
        ChunkStore { reader }
    }

    /// Bytes dropped from a torn tail when the file was opened.
    pub fn dropped_tail_bytes(&self) -> u64 {
        self.reader.dropped_tail_bytes()
    }
}

impl TraceStore for ChunkStore {
    fn box_count(&self) -> usize {
        self.reader.box_count()
    }

    fn meta(&self, index: usize) -> AtmResult<BoxMeta> {
        let h = self.reader.header(index).map_err(chunk_err)?;
        Ok(BoxMeta {
            name: h.name.clone(),
            vm_count: h.vms.len(),
            windows: h.windows,
        })
    }

    fn load(&self, index: usize) -> AtmResult<Cow<'_, BoxTrace>> {
        self.reader.load(index).map(Cow::Owned).map_err(chunk_err)
    }
}
