//! Ticket intelligence for the pipeline and the online loop: storm
//! collapse, inter-ticket-delay anomaly scoring, and chronic-offender
//! feedback (see `DESIGN.md` §17).
//!
//! Three layers build on [`atm_ticketing`]'s primitives:
//!
//! 1. **Per-box scoring** ([`box_ticket_report`]): every pipeline run
//!    with [`TicketsConfig::enabled`](crate::config::TicketsConfig)
//!    collapses the observed prefix's raw tickets into deduplicated
//!    storm incidents per resource and scores the box's inter-ticket
//!    delays, embedding a [`TicketReport`] in the
//!    [`BoxReport`](crate::pipeline::BoxReport).
//! 2. **Online feedback** ([`TicketState`]): the rolling loop feeds each
//!    completed window's ticketed-window indices through a robust
//!    anomaly scorer; a box that stays anomalous for
//!    [`chronic_after`](crate::config::TicketsConfig::chronic_after)
//!    consecutive evaluations becomes a *chronic offender* and the
//!    resizer sees its demands under an
//!    [`offender_headroom`](crate::config::TicketsConfig::offender_headroom)
//!    floor — bounded by the resizer's feasibility cap — until an equal
//!    calm streak clears it.
//! 3. **Fleet priority** ([`priority_weight`]): supervised fleet runners
//!    claim chronic-offender candidates first under thread contention.
//!    The weight only permutes claim order; results are reassembled by
//!    input index, so report bytes are identical for any weighting.
//!
//! Everything here is deterministic: scores are pure functions of the
//! trace and configuration, and all orderings are index-based.

use std::collections::BTreeSet;

use atm_ticketing::anomaly::{anomaly_score, is_anomalous};
use atm_ticketing::storm::collapse_from_sets;
use atm_ticketing::{StormSummary, ThresholdPolicy};
use atm_tracegen::{BoxTrace, Resource};
use serde::{Deserialize, Serialize};

use crate::config::{AtmConfig, TicketsConfig};
use crate::error::{AtmError, AtmResult};
use crate::pipeline::{scoped_resources, ticket_policy};

/// Storm-collapse digest for one resource of one box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceTicketReport {
    /// The resource the tickets fired on.
    pub resource: Resource,
    /// Raw `(vm, window)` tickets before collapsing.
    pub raw_tickets: usize,
    /// Deduplicated storm incidents.
    pub incidents: usize,
    /// Correlated VM groups that ticketed.
    pub correlated_groups: usize,
    /// Incidents spanning more than one VM.
    pub multi_vm_storms: usize,
    /// Largest single incident, in raw tickets.
    pub max_storm_tickets: usize,
    /// Raw tickets per incident; `None` when the resource never
    /// ticketed.
    pub collapse_ratio: Option<f64>,
}

/// Ticket-intelligence digest for one box: per-resource storm collapse
/// over the observed prefix plus the box's anomaly score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TicketReport {
    /// Per-resource storm digests, in scope order.
    pub per_resource: Vec<ResourceTicketReport>,
    /// Robust anomaly score of the box's inter-ticket delays; `None`
    /// with too little ticket history to score.
    pub anomaly_score: Option<f64>,
    /// Whether the score crossed the configured threshold.
    pub anomalous: bool,
}

impl TicketReport {
    /// The fleet-aggregable storm digest, merged over resources.
    pub fn storm_summary(&self) -> StormSummary {
        let mut summary = StormSummary::default();
        for r in &self.per_resource {
            summary.merge(&StormSummary {
                raw_tickets: r.raw_tickets,
                incidents: r.incidents,
                multi_vm_storms: r.multi_vm_storms,
                max_storm_tickets: r.max_storm_tickets,
            });
        }
        summary
    }

    /// Total raw tickets over the scoped resources.
    pub fn raw_tickets(&self) -> usize {
        self.per_resource
            .iter()
            .fold(0, |acc, r| acc.saturating_add(r.raw_tickets))
    }

    /// Total deduplicated incidents over the scoped resources.
    pub fn incidents(&self) -> usize {
        self.per_resource
            .iter()
            .fold(0, |acc, r| acc.saturating_add(r.incidents))
    }
}

/// Per-VM ticketed-window sets for `resource` within `[start, end)`,
/// under the VMs' original capacities. Window indices are global trace
/// indices. NaN (gap) demand samples never ticket.
fn vm_ticket_sets(
    trace: &BoxTrace,
    resource: Resource,
    start: usize,
    end: usize,
    policy: &ThresholdPolicy,
) -> Vec<BTreeSet<usize>> {
    trace
        .vms
        .iter()
        .map(|vm| {
            // Demand in capacity units, computed inline from the usage
            // series (`usage/100 × capacity`) to avoid allocating a
            // demand vector per VM per call.
            let capacity = vm.capacity(resource);
            let usage = vm.usage(resource);
            (start..end.min(usage.len()))
                .filter(|&t| policy.violates_demand_clamped(usage[t] / 100.0 * capacity, capacity))
                .collect()
        })
        .collect()
}

/// Sorted, distinct global window indices in `[start, end)` where any
/// VM ticketed on any of `resources`, under the per-resource capacity
/// overrides the online loop carries (`caps[ri] = None` means each VM's
/// original capacity for that resource). This is the per-window feed of
/// the online anomaly scorer, consistent with the loop's `tickets_after`
/// accounting.
pub(crate) fn ticketed_windows(
    trace: &BoxTrace,
    resources: &[Resource],
    start: usize,
    end: usize,
    caps: &[Option<Vec<f64>>],
    policy: &ThresholdPolicy,
) -> Vec<usize> {
    debug_assert_eq!(resources.len(), caps.len());
    let mut windows = BTreeSet::new();
    for (ri, &resource) in resources.iter().enumerate() {
        for (vi, vm) in trace.vms.iter().enumerate() {
            // Demand stays defined against the VM's *original* capacity
            // (resizing changes the cap, not the workload); only the
            // capacity side honors the override.
            let original = vm.capacity(resource);
            let capacity = caps[ri]
                .as_ref()
                .and_then(|c| c.get(vi).copied())
                .unwrap_or(original);
            let usage = vm.usage(resource);
            for t in start..end.min(usage.len()) {
                if policy.violates_demand_clamped(usage[t] / 100.0 * original, capacity) {
                    windows.insert(t);
                }
            }
        }
    }
    windows.into_iter().collect()
}

/// Scores one box's observed prefix — everything before the evaluation
/// horizon — for the pipeline report: per-resource storm collapse under
/// the VMs' original capacities (raw tickets as the operator would see
/// them, pre-resize) plus the robust anomaly score of the merged
/// inter-ticket delays.
///
/// # Errors
///
/// [`AtmError::InvalidConfig`] if the tickets configuration is invalid —
/// unreachable after [`AtmConfig::validate`], which every pipeline entry
/// point runs first.
pub(crate) fn box_ticket_report(
    trace: &BoxTrace,
    config: &AtmConfig,
    policy: &ThresholdPolicy,
) -> AtmResult<TicketReport> {
    let bad_config = |_| AtmError::InvalidConfig("tickets configuration");
    let observed_end = trace.window_count().saturating_sub(config.horizon);
    let storm_config = config.tickets.storm_config();
    let mut per_resource = Vec::new();
    let mut merged: BTreeSet<usize> = BTreeSet::new();
    for resource in scoped_resources(config.scope) {
        let sets = vm_ticket_sets(trace, resource, 0, observed_end, policy);
        for set in &sets {
            merged.extend(set.iter().copied());
        }
        let report = collapse_from_sets(&sets, &storm_config).map_err(bad_config)?;
        let summary = report.summary();
        per_resource.push(ResourceTicketReport {
            resource,
            raw_tickets: report.raw_tickets,
            incidents: report.incidents(),
            correlated_groups: report.correlated_groups,
            multi_vm_storms: summary.multi_vm_storms,
            max_storm_tickets: summary.max_storm_tickets,
            collapse_ratio: report.collapse_ratio(),
        });
    }
    let windows: Vec<usize> = merged.into_iter().collect();
    let anomaly = config.tickets.anomaly_config();
    let score = anomaly_score(&windows, &anomaly).map_err(bad_config)?;
    Ok(TicketReport {
        per_resource,
        anomalous: score.is_some_and(|s| is_anomalous(s, &anomaly)),
        anomaly_score: score,
    })
}

/// Deterministic claim-priority weight for supervised fleet runners:
/// the box's anomaly score over its training span (clamped at 0), so
/// chronic-offender candidates are processed first under contention.
/// Returns `0.0` when ticket intelligence is disabled, the box has too
/// little ticket history to score, or the configuration is invalid —
/// ties fall back to input-index order either way, and the weight never
/// affects report bytes (results are reassembled by input index).
pub fn priority_weight(trace: &BoxTrace, config: &AtmConfig) -> f64 {
    if !config.tickets.enabled {
        return 0.0;
    }
    let Ok(policy) = ticket_policy(config) else {
        return 0.0;
    };
    let end = trace.window_count().min(config.train_windows);
    let resources = scoped_resources(config.scope);
    let caps: Vec<Option<Vec<f64>>> = vec![None; resources.len()];
    let windows = ticketed_windows(trace, &resources, 0, end, &caps, &policy);
    match anomaly_score(&windows, &config.tickets.anomaly_config()) {
        Ok(Some(score)) if score > 0.0 => score,
        _ => 0.0,
    }
}

/// What a [`TicketEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum TicketEventKind {
    /// The anomalous streak reached
    /// [`chronic_after`](crate::config::TicketsConfig::chronic_after);
    /// the box is now a chronic offender and the resizer sees its
    /// demands under the offender-headroom floor from the next window.
    ChronicDeclared,
    /// An equal calm streak cleared the chronic flag; the headroom floor
    /// is dropped from the next window.
    ChronicCleared,
}

/// One structured chronic-offender transition. Events are part of
/// [`TicketState`] (and therefore of the checkpointed
/// [`OnlineState`](crate::online::OnlineState)), so a crash-resumed run
/// carries byte-identical history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TicketEvent {
    /// Window index (0 = first evaluable window) the transition fired
    /// on.
    pub window: usize,
    /// Transition kind.
    pub kind: TicketEventKind,
    /// The anomaly score that drove the transition.
    pub score: f64,
}

/// Aggregated chronic-offender accounting surfaced in an
/// [`OnlineReport`](crate::online::OnlineReport).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TicketFeedbackReport {
    /// Every chronic transition, in window order.
    pub events: Vec<TicketEvent>,
    /// Windows that produced an anomaly score (enough ticket history).
    pub windows_scored: usize,
    /// Scored windows whose score crossed the threshold.
    pub windows_anomalous: usize,
    /// Windows resized with the offender-headroom floor in force.
    pub chronic_windows: usize,
    /// The most recent anomaly score, if any window scored.
    pub last_score: Option<f64>,
}

impl TicketFeedbackReport {
    /// True when ticket feedback never scored anything (or was
    /// disabled) — the report then serializes without a `tickets` key,
    /// keeping the pre-tickets byte layout.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
            && self.windows_scored == 0
            && self.chronic_windows == 0
            && self.last_score.is_none()
    }

    /// Events of one kind, in window order.
    pub fn events_of(&self, kind: TicketEventKind) -> Vec<&TicketEvent> {
        self.events.iter().filter(|e| e.kind == kind).collect()
    }
}

/// Serializable chronic-offender state for one box's online run.
///
/// Lives inside [`OnlineState`](crate::online::OnlineState) so every
/// decision is replayed byte-identically after a crash-resume. The
/// state machine, evaluated once per completed window:
///
/// 1. the window's ticketed-window indices (under the caps in effect)
///    extend the box's merged ticket-window history;
/// 2. the history's log inter-ticket delays are scored with a robust
///    (median/MAD) Z-score — too little history produces no score and
///    leaves the streaks untouched;
/// 3. `chronic_after` consecutive anomalous scores declare the box a
///    chronic offender ([`TicketEventKind::ChronicDeclared`]); while
///    chronic, the loop resizes it under the offender-headroom floor;
/// 4. `chronic_after` consecutive calm scores clear the flag
///    ([`TicketEventKind::ChronicCleared`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TicketState {
    /// Merged ticketed-window indices observed so far (strictly
    /// increasing: each window's span starts after the previous one's).
    pub(crate) ticket_windows: Vec<usize>,
    /// Consecutive anomalous scores so far.
    pub(crate) anomalous_streak: usize,
    /// Consecutive calm scores so far.
    pub(crate) calm_streak: usize,
    /// Whether the box is currently a chronic offender.
    pub(crate) chronic: bool,
    /// Windows resized with the offender-headroom floor in force.
    pub(crate) chronic_windows: usize,
    /// Windows that produced an anomaly score.
    pub(crate) windows_scored: usize,
    /// Scored windows whose score crossed the threshold.
    pub(crate) windows_anomalous: usize,
    /// The most recent anomaly score.
    pub(crate) last_score: Option<f64>,
    /// Every chronic transition so far, in window order.
    pub(crate) events: Vec<TicketEvent>,
}

impl TicketState {
    /// Whether the box is currently a chronic offender.
    pub fn is_chronic(&self) -> bool {
        self.chronic
    }

    /// Feeds one completed window's ticketed-window indices through the
    /// state machine. Decisions take effect from the next window on.
    pub(crate) fn observe(
        &mut self,
        cfg: &TicketsConfig,
        window: usize,
        new_ticket_windows: &[usize],
    ) {
        debug_assert!(
            new_ticket_windows
                .first()
                .zip(self.ticket_windows.last())
                .is_none_or(|(new, last)| new > last),
            "window spans must advance monotonically"
        );
        self.ticket_windows.extend_from_slice(new_ticket_windows);
        let anomaly = cfg.anomaly_config();
        // The config is validated at every loop entry point, and window
        // indices produce finite log-delays, so scoring cannot fail;
        // degrade to "no score" defensively rather than panic.
        let score = anomaly_score(&self.ticket_windows, &anomaly).ok().flatten();
        self.last_score = score;
        let Some(score) = score else {
            return;
        };
        self.windows_scored += 1;
        if is_anomalous(score, &anomaly) {
            self.windows_anomalous += 1;
            self.anomalous_streak += 1;
            self.calm_streak = 0;
            if !self.chronic && self.anomalous_streak >= cfg.chronic_after {
                self.chronic = true;
                self.events.push(TicketEvent {
                    window,
                    kind: TicketEventKind::ChronicDeclared,
                    score,
                });
            }
        } else {
            self.calm_streak += 1;
            self.anomalous_streak = 0;
            if self.chronic && self.calm_streak >= cfg.chronic_after {
                self.chronic = false;
                self.events.push(TicketEvent {
                    window,
                    kind: TicketEventKind::ChronicCleared,
                    score,
                });
            }
        }
    }

    /// The feedback accounting for a finished run.
    pub(crate) fn into_report(self) -> TicketFeedbackReport {
        TicketFeedbackReport {
            events: self.events,
            windows_scored: self.windows_scored,
            windows_anomalous: self.windows_anomalous,
            chronic_windows: self.chronic_windows,
            last_score: self.last_score,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_tracegen::{generate_box, FleetConfig};

    fn fast_tickets_config() -> AtmConfig {
        AtmConfig {
            tickets: TicketsConfig::fast(),
            ..AtmConfig::fast_for_tests()
        }
    }

    /// A two-VM box where both VMs ticket together on the given windows
    /// (CPU demand above 60% of the VM capacity), quiet elsewhere.
    fn storm_box(ticket_windows: &[usize], total: usize) -> BoxTrace {
        let mut b = generate_box(
            &FleetConfig {
                num_boxes: 1,
                days: 1 + total / 96,
                gap_probability: 0.0,
                ..FleetConfig::default()
            },
            7,
        );
        b.vms.truncate(2);
        for vm in &mut b.vms {
            vm.cpu_usage = vec![10.0; total];
            vm.ram_usage = vec![10.0; total];
            for &w in ticket_windows {
                vm.cpu_usage[w] = 95.0;
            }
        }
        b
    }

    #[test]
    fn ticketed_windows_honor_cap_overrides() {
        let total = 300;
        let b = storm_box(&[5, 9], total);
        let policy = ThresholdPolicy::new(60.0).unwrap();
        let resources = [Resource::Cpu];
        let original: Vec<Option<Vec<f64>>> = vec![None];
        let w = ticketed_windows(&b, &resources, 0, total, &original, &policy);
        assert_eq!(w, vec![5, 9]);
        // A span excludes windows outside it.
        let w = ticketed_windows(&b, &resources, 6, total, &original, &policy);
        assert_eq!(w, vec![9]);
        // Generous cap overrides absorb the bursts entirely.
        let generous: Vec<Option<Vec<f64>>> = vec![Some(
            b.vms.iter().map(|vm| vm.cpu_capacity_ghz * 10.0).collect(),
        )];
        let w = ticketed_windows(&b, &resources, 0, total, &generous, &policy);
        assert!(w.is_empty());
    }

    #[test]
    fn box_report_collapses_synchronized_tickets() {
        let total = 300;
        // Both VMs ticket on the same 3 consecutive windows, inside the
        // observed prefix for horizon 96.
        let b = storm_box(&[10, 11, 12], total);
        let config = fast_tickets_config();
        let policy = ticket_policy(&config).unwrap();
        let report = box_ticket_report(&b, &config, &policy).unwrap();
        let cpu = report
            .per_resource
            .iter()
            .find(|r| r.resource == Resource::Cpu)
            .expect("CPU scoped");
        assert_eq!(cpu.raw_tickets, 6); // 2 VMs × 3 windows
        assert_eq!(cpu.incidents, 1); // one synchronized storm
        assert_eq!(cpu.correlated_groups, 1);
        assert_eq!(cpu.multi_vm_storms, 1);
        assert_eq!(cpu.collapse_ratio, Some(6.0));
        assert_eq!(report.raw_tickets(), 6);
        assert_eq!(report.incidents(), 1);
        assert_eq!(report.storm_summary().max_storm_tickets, 6);
        // 3 ticketed windows → 2 delays < fast() min_delays → no score.
        assert_eq!(report.anomaly_score, None);
        assert!(!report.anomalous);
    }

    #[test]
    fn chronic_state_machine_declares_and_clears() {
        let cfg = TicketsConfig::fast();
        let mut state = TicketState::default();
        // Calm history: a ticket every ~30 windows with mild jitter (the
        // jitter keeps the MAD nonzero, so the scorer has a spread to
        // measure against).
        state.observe(&cfg, 0, &[30, 60, 91, 123, 156]);
        assert!(state.last_score.is_some());
        assert!(!state.is_chronic());
        // A burst of consecutive-window tickets: delays crash to ln(1).
        state.observe(&cfg, 1, &[190, 191, 192, 193, 194]);
        assert!(state.is_chronic(), "score {:?}", state.last_score);
        assert_eq!(state.events.len(), 1);
        assert_eq!(state.events[0].kind, TicketEventKind::ChronicDeclared);
        assert_eq!(state.events[0].window, 1);
        // Calm again: slow delays pull the recent window back to normal.
        for (i, w) in (0..6).map(|i| (i, 240 + i * 30)) {
            state.observe(&cfg, 2 + i, &[w]);
        }
        assert!(!state.is_chronic());
        assert_eq!(state.events.len(), 2);
        assert_eq!(state.events[1].kind, TicketEventKind::ChronicCleared);
        let report = state.clone().into_report();
        assert_eq!(report.events_of(TicketEventKind::ChronicDeclared).len(), 1);
        assert_eq!(report.events_of(TicketEventKind::ChronicCleared).len(), 1);
        assert!(report.windows_scored >= report.windows_anomalous);
        assert!(!report.is_empty());
        assert!(TicketFeedbackReport::default().is_empty());
    }

    #[test]
    fn priority_weight_prefers_bursty_boxes() {
        let total = 300;
        // Bursty: a jittered calm cadence, then consecutive-window
        // tickets — all inside the training span.
        let bursty = storm_box(&[20, 50, 81, 113, 146, 170, 176, 177, 178, 179], total);
        // Steady: the same jittered cadence without the burst.
        let steady = storm_box(&[20, 50, 81, 113, 146, 180], total);
        let config = AtmConfig {
            train_windows: 192,
            ..fast_tickets_config()
        };
        let wb = priority_weight(&bursty, &config);
        let ws = priority_weight(&steady, &config);
        assert!(wb > ws, "bursty {wb} vs steady {ws}");
        assert!(ws >= 0.0);
        // Disabled feature always weighs zero.
        let off = AtmConfig {
            train_windows: 192,
            ..AtmConfig::fast_for_tests()
        };
        assert_eq!(priority_weight(&bursty, &off), 0.0);
    }
}
