use std::error::Error;
use std::fmt;

/// Errors produced by the ATM pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AtmError {
    /// The box trace is too short for the requested train/test split.
    TraceTooShort {
        /// Windows required (train + horizon).
        required: usize,
        /// Windows available.
        actual: usize,
    },
    /// The box has no VMs or no series.
    Empty,
    /// The trace contains gap (`NaN`) samples in the evaluation window
    /// and imputation is disabled; with imputation off, ATM runs only on
    /// gap-free boxes (the paper selects 400 such boxes).
    GappyTrace,
    /// A VM's series have inconsistent lengths — the trace is malformed
    /// and no window split is well-defined.
    RaggedTrace {
        /// Name of the offending VM.
        vm: String,
        /// Window count of the box (from its first VM).
        expected: usize,
        /// The offending series length.
        actual: usize,
    },
    /// A capacity actuation failed irrecoverably (after retries).
    Actuation(String),
    /// A configuration parameter is invalid.
    InvalidConfig(&'static str),
    /// The clustering step failed.
    Clustering(String),
    /// A regression step failed irrecoverably.
    Regression(String),
    /// A temporal forecaster failed irrecoverably.
    Forecast(String),
    /// The resizing optimizer failed.
    Resize(String),
    /// A checkpoint could not be written, read, or validated.
    Checkpoint {
        /// Filesystem path involved.
        path: String,
        /// What went wrong.
        reason: String,
    },
    /// An online window exceeded the configured wall-clock deadline.
    DeadlineExceeded {
        /// The window that blew the deadline.
        window: usize,
        /// Elapsed wall-clock milliseconds.
        elapsed_ms: u64,
        /// The configured per-window deadline in milliseconds.
        deadline_ms: u64,
    },
    /// A trace store failed to serve a box (I/O error, CRC mismatch,
    /// record out of range).
    Storage {
        /// Store path or description.
        path: String,
        /// What went wrong.
        reason: String,
    },
    /// A scripted crash-injection point was reached (chaos harness only).
    /// The kill fired just before this window was computed; every earlier
    /// window is durable, and resuming from the checkpoint continues
    /// here.
    SimulatedCrash {
        /// The first window the kill prevented from running.
        window: usize,
    },
}

impl fmt::Display for AtmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtmError::TraceTooShort { required, actual } => {
                write!(f, "trace too short: need {required} windows, have {actual}")
            }
            AtmError::Empty => write!(f, "box has no series"),
            AtmError::GappyTrace => write!(
                f,
                "trace contains gaps in the evaluation window and imputation is disabled"
            ),
            AtmError::RaggedTrace {
                vm,
                expected,
                actual,
            } => write!(
                f,
                "VM `{vm}` has a series of {actual} windows where the box has {expected}"
            ),
            AtmError::Actuation(e) => write!(f, "capacity actuation failed: {e}"),
            AtmError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            AtmError::Clustering(e) => write!(f, "clustering failed: {e}"),
            AtmError::Regression(e) => write!(f, "regression failed: {e}"),
            AtmError::Forecast(e) => write!(f, "forecast failed: {e}"),
            AtmError::Resize(e) => write!(f, "resize failed: {e}"),
            AtmError::Checkpoint { path, reason } => {
                write!(f, "checkpoint failure at {path}: {reason}")
            }
            AtmError::DeadlineExceeded {
                window,
                elapsed_ms,
                deadline_ms,
            } => write!(
                f,
                "window {window} exceeded its deadline: {elapsed_ms} ms elapsed, {deadline_ms} ms allowed"
            ),
            AtmError::Storage { path, reason } => {
                write!(f, "trace store failure at {path}: {reason}")
            }
            AtmError::SimulatedCrash { window } => {
                write!(f, "simulated crash after window {window}")
            }
        }
    }
}

impl Error for AtmError {}

impl From<atm_clustering::ClusteringError> for AtmError {
    fn from(e: atm_clustering::ClusteringError) -> Self {
        AtmError::Clustering(e.to_string())
    }
}

impl From<atm_stats::StatsError> for AtmError {
    fn from(e: atm_stats::StatsError) -> Self {
        AtmError::Regression(e.to_string())
    }
}

impl From<atm_forecast::ForecastError> for AtmError {
    fn from(e: atm_forecast::ForecastError) -> Self {
        AtmError::Forecast(e.to_string())
    }
}

impl From<atm_resize::ResizeError> for AtmError {
    fn from(e: atm_resize::ResizeError) -> Self {
        AtmError::Resize(e.to_string())
    }
}

/// Convenience alias for results in this crate.
pub type AtmResult<T> = Result<T, AtmError>;
