//! Windowing and resampling utilities.
//!
//! Data-center monitors record usage per *ticketing window* (15 minutes in
//! the paper); the resizing policy operates at a coarser *resizing window*
//! (one day = 96 ticketing windows). These helpers aggregate raw samples
//! into windows and extract lagged feature matrices for temporal models.

use crate::error::{SeriesError, SeriesResult};

/// How to aggregate samples that fall into the same window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregation {
    /// Arithmetic mean of samples in the window (the paper's monitors
    /// compare *average* usage in each window against the threshold).
    Mean,
    /// Maximum sample in the window (conservative aggregation).
    Max,
    /// Minimum sample in the window.
    Min,
    /// Last sample in the window.
    Last,
}

/// Aggregates `xs` into consecutive non-overlapping windows of `size`
/// samples. A trailing partial window is aggregated as-is.
///
/// # Errors
///
/// - [`SeriesError::InvalidParameter`] if `size == 0`.
/// - [`SeriesError::Empty`] if `xs` is empty.
pub fn downsample(xs: &[f64], size: usize, how: Aggregation) -> SeriesResult<Vec<f64>> {
    if size == 0 {
        return Err(SeriesError::InvalidParameter(
            "window size must be positive",
        ));
    }
    if xs.is_empty() {
        return Err(SeriesError::Empty);
    }
    Ok(xs
        .chunks(size)
        .map(|chunk| match how {
            Aggregation::Mean => chunk.iter().sum::<f64>() / chunk.len() as f64,
            Aggregation::Max => chunk.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Aggregation::Min => chunk.iter().copied().fold(f64::INFINITY, f64::min),
            Aggregation::Last => *chunk.last().expect("chunks are non-empty"),
        })
        .collect())
}

/// Sliding windows of length `len` with stride 1, as rows of a matrix.
/// Returns an empty vector when `xs.len() < len`.
pub fn sliding(xs: &[f64], len: usize) -> Vec<&[f64]> {
    if len == 0 || xs.len() < len {
        return Vec::new();
    }
    xs.windows(len).collect()
}

/// Builds a lagged supervised dataset for one-step-ahead prediction:
/// each row contains `lags` consecutive observations and the target is the
/// next observation. Returns `(inputs, targets)`.
///
/// # Errors
///
/// - [`SeriesError::InvalidParameter`] if `lags == 0`.
/// - [`SeriesError::TooShort`] if `xs.len() <= lags`.
pub fn lagged_dataset(xs: &[f64], lags: usize) -> SeriesResult<(Vec<Vec<f64>>, Vec<f64>)> {
    if lags == 0 {
        return Err(SeriesError::InvalidParameter("lags must be positive"));
    }
    if xs.len() <= lags {
        return Err(SeriesError::TooShort {
            required: lags + 1,
            actual: xs.len(),
        });
    }
    let mut inputs = Vec::with_capacity(xs.len() - lags);
    let mut targets = Vec::with_capacity(xs.len() - lags);
    for t in lags..xs.len() {
        inputs.push(xs[t - lags..t].to_vec());
        targets.push(xs[t]);
    }
    Ok((inputs, targets))
}

/// Moving average with a centered-as-possible trailing window of `size`.
/// The first `size − 1` outputs average only the available prefix.
///
/// # Errors
///
/// Returns [`SeriesError::InvalidParameter`] if `size == 0`.
pub fn moving_average(xs: &[f64], size: usize) -> SeriesResult<Vec<f64>> {
    if size == 0 {
        return Err(SeriesError::InvalidParameter(
            "window size must be positive",
        ));
    }
    let mut out = Vec::with_capacity(xs.len());
    let mut sum = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        sum += x;
        if i >= size {
            sum -= xs[i - size];
        }
        let n = (i + 1).min(size);
        out.push(sum / n as f64);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsample_mean() {
        let xs = [1.0, 3.0, 5.0, 7.0, 9.0];
        let out = downsample(&xs, 2, Aggregation::Mean).unwrap();
        assert_eq!(out, vec![2.0, 6.0, 9.0]);
    }

    #[test]
    fn downsample_max_min_last() {
        let xs = [1.0, 3.0, 2.0, 8.0];
        assert_eq!(
            downsample(&xs, 2, Aggregation::Max).unwrap(),
            vec![3.0, 8.0]
        );
        assert_eq!(
            downsample(&xs, 2, Aggregation::Min).unwrap(),
            vec![1.0, 2.0]
        );
        assert_eq!(
            downsample(&xs, 2, Aggregation::Last).unwrap(),
            vec![3.0, 8.0]
        );
    }

    #[test]
    fn downsample_errors() {
        assert!(downsample(&[1.0], 0, Aggregation::Mean).is_err());
        assert!(downsample(&[], 2, Aggregation::Mean).is_err());
    }

    #[test]
    fn downsample_preserves_total_for_exact_multiple() {
        let xs: Vec<f64> = (0..96).map(|i| i as f64).collect();
        let out = downsample(&xs, 4, Aggregation::Mean).unwrap();
        assert_eq!(out.len(), 24);
        let total_in: f64 = xs.iter().sum();
        let total_out: f64 = out.iter().map(|v| v * 4.0).sum();
        assert!((total_in - total_out).abs() < 1e-9);
    }

    #[test]
    fn sliding_windows() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let w = sliding(&xs, 2);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], &[1.0, 2.0]);
        assert!(sliding(&xs, 5).is_empty());
        assert!(sliding(&xs, 0).is_empty());
    }

    #[test]
    fn lagged_dataset_shapes() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let (inp, tgt) = lagged_dataset(&xs, 2).unwrap();
        assert_eq!(inp.len(), 3);
        assert_eq!(tgt, vec![3.0, 4.0, 5.0]);
        assert_eq!(inp[0], vec![1.0, 2.0]);
        assert!(lagged_dataset(&xs, 0).is_err());
        assert!(lagged_dataset(&xs, 5).is_err());
    }

    #[test]
    fn moving_average_warmup() {
        let xs = [2.0, 4.0, 6.0, 8.0];
        let out = moving_average(&xs, 2).unwrap();
        assert_eq!(out, vec![2.0, 3.0, 5.0, 7.0]);
        assert!(moving_average(&xs, 0).is_err());
    }
}
