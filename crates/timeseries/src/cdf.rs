//! Empirical cumulative distribution functions.
//!
//! The paper reports several results as CDFs across boxes: the correlation
//! CDFs of Fig. 3 and the prediction-error CDFs of Fig. 9. [`EmpiricalCdf`]
//! supports both evaluation `F(x)` and inverse evaluation (quantiles), and
//! can be sampled onto a grid for plotting/reporting.

use serde::{Deserialize, Serialize};

use crate::error::{SeriesError, SeriesResult};

/// An empirical CDF built from a finite sample.
///
/// # Example
///
/// ```
/// use atm_timeseries::EmpiricalCdf;
///
/// let cdf = EmpiricalCdf::from_samples(vec![1.0, 2.0, 2.0, 4.0]).unwrap();
/// assert_eq!(cdf.eval(0.0), 0.0);
/// assert_eq!(cdf.eval(2.0), 0.75);
/// assert_eq!(cdf.eval(9.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds a CDF from samples. Non-finite samples are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::Empty`] if no finite samples remain.
    pub fn from_samples(samples: Vec<f64>) -> SeriesResult<Self> {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return Err(SeriesError::Empty);
        }
        atm_num::sort_floats(&mut sorted);
        Ok(EmpiricalCdf { sorted })
    }

    /// Number of samples backing the CDF.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF is backed by zero samples (never true for a
    /// successfully constructed value).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evaluates `F(x) = P[X ≤ x]`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the count of samples <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: the smallest sample `x` with `F(x) ≥ p`.
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::InvalidParameter`] if `p` is outside `(0, 1]`.
    pub fn quantile(&self, p: f64) -> SeriesResult<f64> {
        if !(p > 0.0 && p <= 1.0) {
            return Err(SeriesError::InvalidParameter(
                "probability must be in (0, 1]",
            ));
        }
        let k = ((p * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        Ok(self.sorted[k.min(self.sorted.len() - 1)])
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Samples the CDF at `n` evenly spaced points over `[lo, hi]`,
    /// returning `(x, F(x))` pairs — a plottable curve like the paper's
    /// CDF figures.
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::InvalidParameter`] if `n < 2` or `lo >= hi`.
    pub fn curve(&self, lo: f64, hi: f64, n: usize) -> SeriesResult<Vec<(f64, f64)>> {
        if n < 2 {
            return Err(SeriesError::InvalidParameter("need at least 2 grid points"));
        }
        if lo >= hi {
            return Err(SeriesError::InvalidParameter("lo must be < hi"));
        }
        let step = (hi - lo) / (n - 1) as f64;
        Ok((0..n)
            .map(|i| {
                let x = lo + step * i as f64;
                (x, self.eval(x))
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_step_function() {
        let cdf = EmpiricalCdf::from_samples(vec![3.0, 1.0, 2.0]).unwrap();
        assert_eq!(cdf.eval(0.5), 0.0);
        assert!((cdf.eval(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((cdf.eval(2.5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cdf.eval(3.0), 1.0);
    }

    #[test]
    fn drops_nan_and_errors_when_empty() {
        let cdf = EmpiricalCdf::from_samples(vec![f64::NAN, 5.0]).unwrap();
        assert_eq!(cdf.len(), 1);
        assert!(EmpiricalCdf::from_samples(vec![f64::NAN]).is_err());
        assert!(EmpiricalCdf::from_samples(vec![]).is_err());
    }

    #[test]
    fn quantile_inverse() {
        let cdf = EmpiricalCdf::from_samples((1..=100).map(|i| i as f64).collect()).unwrap();
        assert_eq!(cdf.quantile(0.5).unwrap(), 50.0);
        assert_eq!(cdf.quantile(1.0).unwrap(), 100.0);
        assert_eq!(cdf.quantile(0.01).unwrap(), 1.0);
        assert!(cdf.quantile(0.0).is_err());
        assert!(cdf.quantile(1.5).is_err());
    }

    #[test]
    fn quantile_eval_roundtrip() {
        let cdf = EmpiricalCdf::from_samples(vec![1.0, 5.0, 9.0, 13.0]).unwrap();
        for p in [0.25, 0.5, 0.75, 1.0] {
            let x = cdf.quantile(p).unwrap();
            assert!(cdf.eval(x) >= p);
        }
    }

    #[test]
    fn curve_is_monotone() {
        let cdf = EmpiricalCdf::from_samples(vec![0.1, 0.4, 0.4, 0.9]).unwrap();
        let pts = cdf.curve(0.0, 1.0, 11).unwrap();
        assert_eq!(pts.len(), 11);
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(pts[0].1, 0.0);
        assert_eq!(pts[10].1, 1.0);
        assert!(cdf.curve(1.0, 0.0, 5).is_err());
        assert!(cdf.curve(0.0, 1.0, 1).is_err());
    }

    #[test]
    fn min_max() {
        let cdf = EmpiricalCdf::from_samples(vec![2.0, -1.0, 8.0]).unwrap();
        assert_eq!(cdf.min(), -1.0);
        assert_eq!(cdf.max(), 8.0);
    }
}
