//! Summary statistics and correlation measures over raw `&[f64]` slices.
//!
//! These are the primitives behind the paper's Section II characterization
//! (Pearson correlation CDFs across co-located VM series) and the
//! correlation-based clustering (CBC) of Section III.

use crate::error::{SeriesError, SeriesResult};

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`SeriesError::Empty`] if `xs` is empty.
pub fn mean(xs: &[f64]) -> SeriesResult<f64> {
    if xs.is_empty() {
        return Err(SeriesError::Empty);
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Sample variance (n − 1 denominator).
///
/// # Errors
///
/// Returns [`SeriesError::TooShort`] if fewer than two observations.
pub fn variance(xs: &[f64]) -> SeriesResult<f64> {
    if xs.len() < 2 {
        return Err(SeriesError::TooShort {
            required: 2,
            actual: xs.len(),
        });
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|&x| (x - m) * (x - m)).sum();
    Ok(ss / (xs.len() - 1) as f64)
}

/// Sample standard deviation (n − 1 denominator).
///
/// # Errors
///
/// Returns [`SeriesError::TooShort`] if fewer than two observations.
pub fn std_dev(xs: &[f64]) -> SeriesResult<f64> {
    variance(xs).map(f64::sqrt)
}

/// Population mean and standard deviation in one pass (n denominator).
///
/// # Errors
///
/// Returns [`SeriesError::Empty`] if `xs` is empty.
pub fn mean_std_population(xs: &[f64]) -> SeriesResult<(f64, f64)> {
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|&x| (x - m) * (x - m)).sum();
    Ok((m, (ss / xs.len() as f64).sqrt()))
}

/// Sample covariance between `xs` and `ys` (n − 1 denominator).
///
/// # Errors
///
/// Returns [`SeriesError::LengthMismatch`] on unequal lengths and
/// [`SeriesError::TooShort`] on fewer than two observations.
pub fn covariance(xs: &[f64], ys: &[f64]) -> SeriesResult<f64> {
    if xs.len() != ys.len() {
        return Err(SeriesError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(SeriesError::TooShort {
            required: 2,
            actual: xs.len(),
        });
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let s: f64 = xs.iter().zip(ys).map(|(&x, &y)| (x - mx) * (y - my)).sum();
    Ok(s / (xs.len() - 1) as f64)
}

/// Pearson's linear correlation coefficient ρ ∈ [−1, 1].
///
/// This is the spatial-dependency measure used throughout the paper:
/// intra-CPU, intra-RAM and inter-CPU/RAM correlations of co-located VMs
/// (Fig. 3) and the ranking criterion of CBC (ρ_Th = 0.7).
///
/// # Errors
///
/// - [`SeriesError::LengthMismatch`] on unequal lengths.
/// - [`SeriesError::TooShort`] on fewer than two observations.
/// - [`SeriesError::NonFinite`] if either input carries a NaN or infinity
///   (a NaN-gapped series would otherwise yield a silent NaN correlation);
///   impute gaps or pre-filter complete pairs first.
/// - [`SeriesError::ZeroVariance`] if either input is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> SeriesResult<f64> {
    if xs.len() != ys.len() {
        return Err(SeriesError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(SeriesError::TooShort {
            required: 2,
            actual: xs.len(),
        });
    }
    ensure_finite(xs)?;
    ensure_finite(ys)?;
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(SeriesError::ZeroVariance);
    }
    // Clamp to guard against floating-point drift slightly outside [-1, 1].
    Ok((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

/// Spearman's rank correlation coefficient.
///
/// Robust alternative to [`pearson`] for monotone but non-linear dependency;
/// used in ablation studies of the clustering step.
///
/// # Errors
///
/// Same conditions as [`pearson`]; non-finite inputs are rejected *before*
/// ranking (ranks would silently place NaNs as the largest values).
pub fn spearman(xs: &[f64], ys: &[f64]) -> SeriesResult<f64> {
    ensure_finite(xs)?;
    ensure_finite(ys)?;
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

/// Maps the first non-finite value to a structured error.
fn ensure_finite(xs: &[f64]) -> SeriesResult<()> {
    match atm_num::first_non_finite(xs) {
        Some((index, _)) => Err(SeriesError::NonFinite { index }),
        None => Ok(()),
    }
}

/// Fractional ranks (average rank for ties), 1-based.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    // total_cmp: a stable total order even if a caller ever feeds NaNs
    // through a future entry point — they rank last, deterministically.
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Average rank over the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// The `q`-quantile (0 ≤ q ≤ 1) using linear interpolation between order
/// statistics (type-7, the R/numpy default).
///
/// # Errors
///
/// - [`SeriesError::Empty`] if `xs` is empty.
/// - [`SeriesError::InvalidParameter`] if `q` is outside `[0, 1]` or NaN.
/// - [`SeriesError::NonFinite`] if `xs` carries a NaN or infinity — an
///   order statistic over non-finite data has no meaningful value, and the
///   old `unwrap_or(Equal)` sort made it depend on input order.
pub fn quantile(xs: &[f64], q: f64) -> SeriesResult<f64> {
    if xs.is_empty() {
        return Err(SeriesError::Empty);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(SeriesError::InvalidParameter("quantile must be in [0, 1]"));
    }
    ensure_finite(xs)?;
    let mut sorted = xs.to_vec();
    atm_num::sort_floats(&mut sorted);
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        Ok(sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo]))
    }
}

/// Median (the 0.5-quantile).
///
/// # Errors
///
/// Returns [`SeriesError::Empty`] if `xs` is empty and
/// [`SeriesError::NonFinite`] if it carries a NaN or infinity.
pub fn median(xs: &[f64]) -> SeriesResult<f64> {
    quantile(xs, 0.5)
}

/// Mean and sample standard deviation of a collection, ignoring NaNs.
///
/// Convenience for aggregating per-box statistics into the paper's
/// "mean ± std" bar charts (Figs. 2b, 8, 10). Returns `(mean, std)`;
/// `std` is 0 when fewer than two finite values exist.
///
/// # Errors
///
/// Returns [`SeriesError::Empty`] if no finite values exist.
pub fn mean_std_finite(xs: &[f64]) -> SeriesResult<(f64, f64)> {
    let finite: Vec<f64> = xs.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return Err(SeriesError::Empty);
    }
    let m = mean(&finite)?;
    let s = if finite.len() < 2 {
        0.0
    } else {
        std_dev(&finite)?
    };
    Ok((m, s))
}

/// Lag-`k` sample autocorrelation.
///
/// # Errors
///
/// - [`SeriesError::TooShort`] if `xs.len() <= k + 1`.
/// - [`SeriesError::ZeroVariance`] if `xs` is constant.
pub fn autocorrelation(xs: &[f64], k: usize) -> SeriesResult<f64> {
    if xs.len() <= k + 1 {
        return Err(SeriesError::TooShort {
            required: k + 2,
            actual: xs.len(),
        });
    }
    let m = mean(xs)?;
    let denom: f64 = xs.iter().map(|&x| (x - m) * (x - m)).sum();
    if denom == 0.0 {
        return Err(SeriesError::ZeroVariance);
    }
    let num: f64 = xs.windows(k + 1).map(|w| (w[0] - m) * (w[k] - m)).sum();
    Ok(num / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]).unwrap(), 2.0);
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn variance_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs).unwrap() - 4.571428571).abs() < 1e-8);
        assert!(variance(&[1.0]).is_err());
    }

    #[test]
    fn pearson_perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y_pos = [2.0, 4.0, 6.0, 8.0];
        let y_neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y_pos).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &y_neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_shift_scale_invariant() {
        let x = [1.0, 5.0, 2.0, 8.0, 3.0];
        let y = [0.3, 2.0, 1.1, 4.0, 1.0];
        let base = pearson(&x, &y).unwrap();
        let x2: Vec<f64> = x.iter().map(|v| 3.0 * v + 10.0).collect();
        assert!((pearson(&x2, &y).unwrap() - base).abs() < 1e-12);
    }

    #[test]
    fn pearson_errors() {
        assert_eq!(
            pearson(&[1.0, 2.0], &[1.0]),
            Err(SeriesError::LengthMismatch { left: 2, right: 1 })
        );
        assert_eq!(
            pearson(&[1.0, 1.0], &[2.0, 3.0]),
            Err(SeriesError::ZeroVariance)
        );
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert!((quantile(&xs, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!(quantile(&xs, 1.5).is_err());
        assert!(quantile(&[], 0.5).is_err());
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert!((median(&[4.0, 1.0, 2.0, 3.0]).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn non_finite_inputs_are_structured_errors() {
        assert_eq!(
            quantile(&[1.0, f64::NAN, 3.0], 0.5),
            Err(SeriesError::NonFinite { index: 1 })
        );
        assert_eq!(
            median(&[f64::INFINITY]),
            Err(SeriesError::NonFinite { index: 0 })
        );
        assert_eq!(
            pearson(&[1.0, f64::NAN], &[1.0, 2.0]),
            Err(SeriesError::NonFinite { index: 1 })
        );
        assert_eq!(
            spearman(&[1.0, 2.0], &[f64::NEG_INFINITY, 2.0]),
            Err(SeriesError::NonFinite { index: 0 })
        );
    }

    #[test]
    fn quantile_deterministic_under_permutation() {
        // Duplicate-heavy input in two different orders must give
        // bit-identical quantiles at every probe point.
        let a = [2.0, 1.0, 2.0, 1.0, 2.0, 3.0, 1.0];
        let b = [3.0, 2.0, 2.0, 2.0, 1.0, 1.0, 1.0];
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let qa = quantile(&a, q).unwrap();
            let qb = quantile(&b, q).unwrap();
            assert_eq!(qa.to_bits(), qb.to_bits(), "q={q}");
        }
    }

    #[test]
    fn covariance_matches_variance() {
        let xs = [1.0, 3.0, 5.0, 7.0];
        assert!((covariance(&xs, &xs).unwrap() - variance(&xs).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn mean_std_finite_ignores_nan() {
        let (m, s) = mean_std_finite(&[1.0, f64::NAN, 3.0]).unwrap();
        assert_eq!(m, 2.0);
        assert!(s > 0.0);
        assert!(mean_std_finite(&[f64::NAN]).is_err());
        let (m1, s1) = mean_std_finite(&[5.0]).unwrap();
        assert_eq!((m1, s1), (5.0, 0.0));
    }

    #[test]
    fn autocorrelation_of_periodic_signal() {
        // Period-4 signal: lag-4 autocorrelation should be strongly positive.
        let xs: Vec<f64> = (0..64).map(|i| (i % 4) as f64).collect();
        let r4 = autocorrelation(&xs, 4).unwrap();
        let r2 = autocorrelation(&xs, 2).unwrap();
        assert!(r4 > 0.8, "lag-4 acf {r4}");
        assert!(r4 > r2);
        assert!(autocorrelation(&[1.0, 1.0, 1.0], 1).is_err());
    }
}
