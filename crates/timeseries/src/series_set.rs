//! A labeled, length-aligned collection of series — the "frame" shape the
//! spatial models operate on (`M × N` equal-length demand series per box).

use serde::{Deserialize, Serialize};

use crate::error::{SeriesError, SeriesResult};
use crate::series::Series;
use crate::stats;

/// A set of equal-length named series.
///
/// # Example
///
/// ```
/// use atm_timeseries::SeriesSet;
///
/// let mut set = SeriesSet::new();
/// set.insert("cpu", vec![1.0, 2.0, 3.0])?;
/// set.insert("ram", vec![2.0, 4.0, 6.0])?;
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.window_count(), 3);
/// let rho = set.correlation_matrix()?;
/// assert!((rho[0][1] - 1.0).abs() < 1e-12);
/// # Ok::<(), atm_timeseries::SeriesError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SeriesSet {
    names: Vec<String>,
    columns: Vec<Vec<f64>>,
}

impl SeriesSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the set holds no series.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Observations per series (0 for an empty set).
    pub fn window_count(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Adds a named series.
    ///
    /// # Errors
    ///
    /// - [`SeriesError::Empty`] for an empty series.
    /// - [`SeriesError::LengthMismatch`] if its length differs from the
    ///   set's.
    pub fn insert(&mut self, name: impl Into<String>, values: Vec<f64>) -> SeriesResult<()> {
        if values.is_empty() {
            return Err(SeriesError::Empty);
        }
        if !self.columns.is_empty() && values.len() != self.window_count() {
            return Err(SeriesError::LengthMismatch {
                left: self.window_count(),
                right: values.len(),
            });
        }
        self.names.push(name.into());
        self.columns.push(values);
        Ok(())
    }

    /// The series names, in insertion order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The values of series `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn column(&self, i: usize) -> &[f64] {
        &self.columns[i]
    }

    /// All columns, aligned with [`SeriesSet::names`].
    pub fn columns(&self) -> &[Vec<f64>] {
        &self.columns
    }

    /// Looks up a series by name.
    pub fn get(&self, name: &str) -> Option<&[f64]> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.columns[i].as_slice())
    }

    /// Extracts the series as owned [`Series`] values.
    pub fn to_series(&self) -> Vec<Series> {
        self.names
            .iter()
            .zip(&self.columns)
            .map(|(n, c)| Series::from_values(n.clone(), c.clone()))
            .collect()
    }

    /// Splits every series at `train_len`, returning (train, test) sets.
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::TooShort`] if `train_len >= window_count`.
    pub fn split_at(&self, train_len: usize) -> SeriesResult<(SeriesSet, SeriesSet)> {
        if train_len >= self.window_count() {
            return Err(SeriesError::TooShort {
                required: train_len + 1,
                actual: self.window_count(),
            });
        }
        let mut train = SeriesSet::new();
        let mut test = SeriesSet::new();
        for (n, c) in self.names.iter().zip(&self.columns) {
            train.insert(n.clone(), c[..train_len].to_vec())?;
            test.insert(n.clone(), c[train_len..].to_vec())?;
        }
        Ok((train, test))
    }

    /// Keeps only the series at the given indices (in the given order).
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::InvalidParameter`] for out-of-range indices.
    pub fn select(&self, indices: &[usize]) -> SeriesResult<SeriesSet> {
        let mut out = SeriesSet::new();
        for &i in indices {
            if i >= self.len() {
                return Err(SeriesError::InvalidParameter("index out of range"));
            }
            out.insert(self.names[i].clone(), self.columns[i].clone())?;
        }
        Ok(out)
    }

    /// Pairwise Pearson correlation matrix; undefined pairs (constant
    /// series) are reported as 0 and the diagonal is 1.
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::Empty`] for an empty set.
    pub fn correlation_matrix(&self) -> SeriesResult<Vec<Vec<f64>>> {
        if self.is_empty() {
            return Err(SeriesError::Empty);
        }
        let n = self.len();
        let mut out = vec![vec![0.0; n]; n];
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            out[i][i] = 1.0;
            for j in i + 1..n {
                let r = stats::pearson(&self.columns[i], &self.columns[j]).unwrap_or(0.0);
                out[i][j] = r;
                out[j][i] = r;
            }
        }
        Ok(out)
    }
}

impl FromIterator<(String, Vec<f64>)> for SeriesSet {
    /// Collects `(name, values)` pairs, skipping entries that violate the
    /// alignment invariant (use [`SeriesSet::insert`] for error handling).
    fn from_iter<I: IntoIterator<Item = (String, Vec<f64>)>>(iter: I) -> Self {
        let mut set = SeriesSet::new();
        for (name, values) in iter {
            let _ = set.insert(name, values);
        }
        set
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    fn sample() -> SeriesSet {
        let mut s = SeriesSet::new();
        s.insert("a", vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        s.insert("b", vec![2.0, 4.0, 6.0, 8.0]).unwrap();
        s.insert("c", vec![4.0, 3.0, 2.0, 1.0]).unwrap();
        s
    }

    #[test]
    fn construction_and_access() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s.window_count(), 4);
        assert_eq!(s.get("b").unwrap(), &[2.0, 4.0, 6.0, 8.0]);
        assert!(s.get("zzz").is_none());
        assert_eq!(s.names(), &["a", "b", "c"]);
        assert_eq!(s.column(0)[0], 1.0);
    }

    #[test]
    fn alignment_enforced() {
        let mut s = sample();
        assert_eq!(
            s.insert("bad", vec![1.0]),
            Err(SeriesError::LengthMismatch { left: 4, right: 1 })
        );
        assert_eq!(s.insert("empty", vec![]), Err(SeriesError::Empty));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn split() {
        let s = sample();
        let (train, test) = s.split_at(3).unwrap();
        assert_eq!(train.window_count(), 3);
        assert_eq!(test.window_count(), 1);
        assert_eq!(test.get("a").unwrap(), &[4.0]);
        assert!(s.split_at(4).is_err());
    }

    #[test]
    fn select_reorders() {
        let s = sample();
        let sub = s.select(&[2, 0]).unwrap();
        assert_eq!(sub.names(), &["c", "a"]);
        assert!(s.select(&[9]).is_err());
    }

    #[test]
    fn correlation_matrix_properties() {
        let s = sample();
        let m = s.correlation_matrix().unwrap();
        for i in 0..3 {
            assert_eq!(m[i][i], 1.0);
            for j in 0..3 {
                assert!((m[i][j] - m[j][i]).abs() < 1e-12);
            }
        }
        assert!((m[0][1] - 1.0).abs() < 1e-12); // b = 2a
        assert!((m[0][2] + 1.0).abs() < 1e-12); // c = reversed a
        assert!(SeriesSet::new().correlation_matrix().is_err());
    }

    #[test]
    fn constant_series_correlate_as_zero() {
        let mut s = SeriesSet::new();
        s.insert("flat", vec![5.0; 4]).unwrap();
        s.insert("a", vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let m = s.correlation_matrix().unwrap();
        assert_eq!(m[0][1], 0.0);
    }

    #[test]
    fn to_series_and_from_iterator() {
        let s = sample();
        let series = s.to_series();
        assert_eq!(series.len(), 3);
        assert_eq!(series[1].name(), "b");
        let rebuilt: SeriesSet = s
            .names()
            .iter()
            .zip(s.columns())
            .map(|(n, c)| (n.clone(), c.clone()))
            .collect();
        assert_eq!(rebuilt, s);
        // Misaligned entries are skipped by the collector.
        let skipped: SeriesSet = vec![
            ("x".to_string(), vec![1.0, 2.0]),
            ("bad".to_string(), vec![1.0]),
        ]
        .into_iter()
        .collect();
        assert_eq!(skipped.len(), 1);
    }
}
