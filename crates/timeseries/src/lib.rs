//! # atm-timeseries
//!
//! Foundational time-series types and statistics for the ATM (Active Ticket
//! Managing) reproduction of *"Managing Data Center Tickets: Prediction and
//! Active Sizing"* (DSN 2016).
//!
//! Everything in ATM operates on regularly sampled, fixed-interval series of
//! resource usage or demand: 15-minute samples of CPU/RAM utilization in the
//! paper. This crate provides:
//!
//! - [`Series`]: an owned, regularly sampled series with an optional name.
//! - [`SeriesSet`]: a labeled, length-aligned collection of series (the
//!   `M × N` frame the spatial models operate on).
//! - [`stats`]: summary statistics, Pearson/Spearman correlation,
//!   covariance — the building blocks of the paper's Section II
//!   characterization and of correlation-based clustering.
//! - [`cdf`]: empirical cumulative distribution functions (used to reproduce
//!   the paper's CDF figures).
//! - [`metrics`]: prediction error metrics — absolute percentage error as
//!   defined in the paper (footnote 3), MAPE, peak-restricted errors, RMSE.
//! - [`window`]: resampling and sliding-window utilities (ticketing windows).
//! - [`transform`]: z-normalization, differencing, usage↔demand conversion.
//! - [`decompose`]: simple seasonal decomposition for diagnostics.
//!
//! # Example
//!
//! ```
//! use atm_timeseries::{Series, stats};
//!
//! let a = Series::from_values("vm1-cpu", vec![10.0, 20.0, 30.0, 40.0]);
//! let b = Series::from_values("vm2-cpu", vec![12.0, 19.0, 33.0, 41.0]);
//! let rho = stats::pearson(a.values(), b.values()).unwrap();
//! assert!(rho > 0.95);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod decompose;
mod error;
pub mod metrics;
mod series;
mod series_set;
pub mod stats;
pub mod transform;
pub mod window;

pub use cdf::EmpiricalCdf;
pub use error::{SeriesError, SeriesResult};
pub use series::Series;
pub use series_set::SeriesSet;
