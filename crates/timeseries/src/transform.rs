//! Element-wise and whole-series transforms.
//!
//! Includes the usage↔demand conversion at the heart of the paper's
//! footnote 2: *"demand series is the product of usage series and the
//! allocated virtual capacity"*. ATM predicts demand series directly so the
//! resizing policy can reason in capacity units (GHz, GB).

use crate::error::{SeriesError, SeriesResult};
use crate::stats;

/// Z-normalizes a series: `(x − mean) / std` (population std).
///
/// Commonly applied before DTW so that clusters reflect *shape* rather than
/// level. Returns the normalized values plus the `(mean, std)` used, so the
/// transform can be inverted.
///
/// # Errors
///
/// - [`SeriesError::Empty`] on empty input.
/// - [`SeriesError::ZeroVariance`] if the series is constant.
pub fn znorm(xs: &[f64]) -> SeriesResult<(Vec<f64>, f64, f64)> {
    let (m, s) = stats::mean_std_population(xs)?;
    if s == 0.0 {
        return Err(SeriesError::ZeroVariance);
    }
    Ok((xs.iter().map(|&x| (x - m) / s).collect(), m, s))
}

/// Inverts [`znorm`] given the original mean and std.
pub fn znorm_inverse(zs: &[f64], mean: f64, std: f64) -> Vec<f64> {
    zs.iter().map(|&z| z * std + mean).collect()
}

/// First difference: `y[t] = x[t] − x[t−1]`, length `n − 1`.
///
/// # Errors
///
/// Returns [`SeriesError::TooShort`] for fewer than two observations.
pub fn diff(xs: &[f64]) -> SeriesResult<Vec<f64>> {
    if xs.len() < 2 {
        return Err(SeriesError::TooShort {
            required: 2,
            actual: xs.len(),
        });
    }
    Ok(xs.windows(2).map(|w| w[1] - w[0]).collect())
}

/// Inverts [`diff`] given the first original value.
pub fn undiff(dys: &[f64], first: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(dys.len() + 1);
    out.push(first);
    let mut acc = first;
    for &d in dys {
        acc += d;
        out.push(acc);
    }
    out
}

/// Converts a utilization-percent series (0–100) into a demand series in
/// capacity units, given the allocated virtual capacity.
///
/// # Errors
///
/// Returns [`SeriesError::InvalidParameter`] if `capacity` is not positive
/// and finite.
pub fn usage_to_demand(usage_pct: &[f64], capacity: f64) -> SeriesResult<Vec<f64>> {
    if !(capacity > 0.0 && capacity.is_finite()) {
        return Err(SeriesError::InvalidParameter(
            "capacity must be positive and finite",
        ));
    }
    Ok(usage_pct.iter().map(|&u| u / 100.0 * capacity).collect())
}

/// Converts a demand series back into utilization percent for a given
/// allocated capacity.
///
/// # Errors
///
/// Returns [`SeriesError::InvalidParameter`] if `capacity` is not positive
/// and finite.
pub fn demand_to_usage(demand: &[f64], capacity: f64) -> SeriesResult<Vec<f64>> {
    if !(capacity > 0.0 && capacity.is_finite()) {
        return Err(SeriesError::InvalidParameter(
            "capacity must be positive and finite",
        ));
    }
    Ok(demand.iter().map(|&d| d / capacity * 100.0).collect())
}

/// Clamps every value into `[lo, hi]`.
///
/// # Errors
///
/// Returns [`SeriesError::InvalidParameter`] if `lo > hi`.
pub fn clamp(xs: &[f64], lo: f64, hi: f64) -> SeriesResult<Vec<f64>> {
    if lo > hi {
        return Err(SeriesError::InvalidParameter("clamp bounds inverted"));
    }
    Ok(xs.iter().map(|&x| x.clamp(lo, hi)).collect())
}

/// Min-max scales a series into `[0, 1]`, returning the values plus the
/// original `(min, max)` for inversion.
///
/// # Errors
///
/// - [`SeriesError::Empty`] on empty input.
/// - [`SeriesError::ZeroVariance`] if all values are equal.
pub fn minmax_scale(xs: &[f64]) -> SeriesResult<(Vec<f64>, f64, f64)> {
    if xs.is_empty() {
        return Err(SeriesError::Empty);
    }
    let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if lo == hi {
        return Err(SeriesError::ZeroVariance);
    }
    Ok((xs.iter().map(|&x| (x - lo) / (hi - lo)).collect(), lo, hi))
}

/// Inverts [`minmax_scale`].
pub fn minmax_inverse(zs: &[f64], lo: f64, hi: f64) -> Vec<f64> {
    zs.iter().map(|&z| z * (hi - lo) + lo).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn znorm_roundtrip() {
        let xs = [3.0, 7.0, 11.0, 1.0];
        let (zs, m, s) = znorm(&xs).unwrap();
        let mean_z: f64 = zs.iter().sum::<f64>() / zs.len() as f64;
        assert!(mean_z.abs() < 1e-12);
        let back = znorm_inverse(&zs, m, s);
        for (a, b) in xs.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(znorm(&[5.0, 5.0]), Err(SeriesError::ZeroVariance));
        assert!(znorm(&[]).is_err());
    }

    #[test]
    fn diff_undiff_roundtrip() {
        let xs = [1.0, 4.0, 2.0, 8.0];
        let d = diff(&xs).unwrap();
        assert_eq!(d, vec![3.0, -2.0, 6.0]);
        assert_eq!(undiff(&d, xs[0]), xs.to_vec());
        assert!(diff(&[1.0]).is_err());
    }

    #[test]
    fn usage_demand_roundtrip() {
        let usage = [0.0, 50.0, 100.0];
        let demand = usage_to_demand(&usage, 8.0).unwrap();
        assert_eq!(demand, vec![0.0, 4.0, 8.0]);
        let back = demand_to_usage(&demand, 8.0).unwrap();
        assert_eq!(back, usage.to_vec());
        assert!(usage_to_demand(&usage, 0.0).is_err());
        assert!(usage_to_demand(&usage, f64::NAN).is_err());
        assert!(demand_to_usage(&demand, -1.0).is_err());
    }

    #[test]
    fn clamp_bounds() {
        assert_eq!(
            clamp(&[-5.0, 50.0, 150.0], 0.0, 100.0).unwrap(),
            vec![0.0, 50.0, 100.0]
        );
        assert!(clamp(&[1.0], 2.0, 1.0).is_err());
    }

    #[test]
    fn minmax_roundtrip() {
        let xs = [10.0, 20.0, 15.0];
        let (zs, lo, hi) = minmax_scale(&xs).unwrap();
        assert_eq!(zs[0], 0.0);
        assert_eq!(zs[1], 1.0);
        let back = minmax_inverse(&zs, lo, hi);
        for (a, b) in xs.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(minmax_scale(&[2.0, 2.0]).is_err());
        assert!(minmax_scale(&[]).is_err());
    }
}
