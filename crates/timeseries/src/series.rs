use serde::{Deserialize, Serialize};

use crate::error::{SeriesError, SeriesResult};
use crate::stats;

/// A regularly sampled, fixed-interval time series.
///
/// In the ATM paper every series is a CPU or RAM usage (percent) or demand
/// (GHz/GB) series sampled every 15 minutes. `Series` keeps only the values
/// and a human-readable name; sampling interval bookkeeping lives with the
/// owner (e.g. a trace), since all series of a box share it.
///
/// # Example
///
/// ```
/// use atm_timeseries::Series;
///
/// let s = Series::from_values("vm3-cpu", vec![55.0, 61.0, 58.5]);
/// assert_eq!(s.len(), 3);
/// assert_eq!(s.name(), "vm3-cpu");
/// assert!(s.max().unwrap() > 60.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Series {
    name: String,
    values: Vec<f64>,
}

impl Series {
    /// Creates an empty series with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            values: Vec::new(),
        }
    }

    /// Creates a series from a name and raw values.
    pub fn from_values(name: impl Into<String>, values: Vec<f64>) -> Self {
        Series {
            name: name.into(),
            values,
        }
    }

    /// The series name (e.g. `"box12/vm3/cpu"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the series.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The observations, in time order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the observations.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consumes the series and returns its raw values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series has no observations.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends one observation.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Returns the observation at `t`, if present.
    pub fn get(&self, t: usize) -> Option<f64> {
        self.values.get(t).copied()
    }

    /// Arithmetic mean.
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::Empty`] for an empty series.
    pub fn mean(&self) -> SeriesResult<f64> {
        stats::mean(&self.values)
    }

    /// Sample standard deviation (n − 1 denominator).
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::TooShort`] for fewer than two observations.
    pub fn std_dev(&self) -> SeriesResult<f64> {
        stats::std_dev(&self.values)
    }

    /// Minimum value.
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::Empty`] for an empty series.
    pub fn min(&self) -> SeriesResult<f64> {
        self.values
            .iter()
            .copied()
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            })
            .ok_or(SeriesError::Empty)
    }

    /// Maximum value.
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::Empty`] for an empty series.
    pub fn max(&self) -> SeriesResult<f64> {
        self.values
            .iter()
            .copied()
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
            .ok_or(SeriesError::Empty)
    }

    /// Returns a sub-series for the half-open index range `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    pub fn slice(&self, start: usize, end: usize) -> Series {
        Series {
            name: self.name.clone(),
            values: self.values[start..end].to_vec(),
        }
    }

    /// Splits the series into a training prefix of `train_len` observations
    /// and the remaining test suffix.
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::TooShort`] if `train_len > self.len()`.
    pub fn split_at(&self, train_len: usize) -> SeriesResult<(Series, Series)> {
        if train_len > self.len() {
            return Err(SeriesError::TooShort {
                required: train_len,
                actual: self.len(),
            });
        }
        Ok((self.slice(0, train_len), self.slice(train_len, self.len())))
    }

    /// Fraction of observations strictly above `threshold`.
    ///
    /// Used throughout ticket characterization: a usage sample above the
    /// ticket threshold triggers a ticket in its ticketing window.
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let above = self.values.iter().filter(|&&v| v > threshold).count();
        above as f64 / self.values.len() as f64
    }

    /// Applies `f` element-wise and returns a new series with the same name.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Series {
        Series {
            name: self.name.clone(),
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }
}

impl FromIterator<f64> for Series {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Series {
            name: String::new(),
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<f64> for Series {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

impl AsRef<[f64]> for Series {
    fn as_ref(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let s = Series::from_values("x", vec![1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.get(1), Some(2.0));
        assert_eq!(s.get(3), None);
        assert_eq!(s.values(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn empty_series_statistics_error() {
        let s = Series::new("empty");
        assert_eq!(s.mean(), Err(SeriesError::Empty));
        assert_eq!(s.min(), Err(SeriesError::Empty));
        assert_eq!(s.max(), Err(SeriesError::Empty));
    }

    #[test]
    fn mean_and_std() {
        let s = Series::from_values("x", vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        // Sample std dev of this classic data set is ~2.138.
        assert!((s.std_dev().unwrap() - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn min_max() {
        let s = Series::from_values("x", vec![3.0, -1.0, 7.5, 0.0]);
        assert_eq!(s.min().unwrap(), -1.0);
        assert_eq!(s.max().unwrap(), 7.5);
    }

    #[test]
    fn slice_and_split() {
        let s = Series::from_values("x", (0..10).map(|i| i as f64).collect());
        let mid = s.slice(2, 5);
        assert_eq!(mid.values(), &[2.0, 3.0, 4.0]);
        let (train, test) = s.split_at(7).unwrap();
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        assert_eq!(test.values()[0], 7.0);
        assert!(s.split_at(11).is_err());
    }

    #[test]
    fn fraction_above_counts_strictly() {
        let s = Series::from_values("x", vec![59.0, 60.0, 61.0, 80.0]);
        assert!((s.fraction_above(60.0) - 0.5).abs() < 1e-12);
        assert_eq!(Series::new("e").fraction_above(60.0), 0.0);
    }

    #[test]
    fn map_preserves_name() {
        let s = Series::from_values("n", vec![1.0, 2.0]);
        let doubled = s.map(|v| v * 2.0);
        assert_eq!(doubled.name(), "n");
        assert_eq!(doubled.values(), &[2.0, 4.0]);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut s: Series = (0..3).map(|i| i as f64).collect();
        s.extend([3.0, 4.0]);
        assert_eq!(s.values(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }
}
