use std::error::Error;
use std::fmt;

/// Errors produced by time-series operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SeriesError {
    /// The operation requires a non-empty series.
    Empty,
    /// Two series were expected to have equal length but did not.
    LengthMismatch {
        /// Length of the left-hand series.
        left: usize,
        /// Length of the right-hand series.
        right: usize,
    },
    /// The operation requires at least this many observations.
    TooShort {
        /// Observations required.
        required: usize,
        /// Observations available.
        actual: usize,
    },
    /// A statistic is undefined because the input has zero variance.
    ZeroVariance,
    /// A parameter was outside its valid domain (e.g. a quantile not in `[0, 1]`).
    InvalidParameter(&'static str),
    /// The input contains a NaN or infinite value at an entry point that
    /// requires finite data (order statistics, correlations). Gap-tolerant
    /// callers should impute or filter first (e.g. `mean_std_finite`).
    NonFinite {
        /// Index of the first offending observation.
        index: usize,
    },
}

impl fmt::Display for SeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeriesError::Empty => write!(f, "series is empty"),
            SeriesError::LengthMismatch { left, right } => {
                write!(f, "series length mismatch: {left} vs {right}")
            }
            SeriesError::TooShort { required, actual } => {
                write!(f, "series too short: need {required}, have {actual}")
            }
            SeriesError::ZeroVariance => write!(f, "statistic undefined for zero variance input"),
            SeriesError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            SeriesError::NonFinite { index } => {
                write!(f, "non-finite value at index {index}")
            }
        }
    }
}

impl Error for SeriesError {}

/// Convenience alias for results in this crate.
pub type SeriesResult<T> = Result<T, SeriesError>;
