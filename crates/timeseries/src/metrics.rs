//! Prediction-error metrics.
//!
//! The paper's accuracy metric is the absolute percentage error
//! (footnote 3): `APE = |actual − fitted| / actual`, averaged over the
//! evaluation horizon (reported as "Mean Abs. PCT Error"). Fig. 9
//! additionally reports *peak* errors — the APE restricted to ticketing
//! windows whose actual usage exceeds the ticket threshold (60%).

use crate::error::{SeriesError, SeriesResult};

/// Absolute percentage error of a single point, as defined in the paper.
///
/// Returns `None` when `actual == 0`, where the metric is undefined; the
/// aggregate functions below skip such points (matching common practice for
/// utilization series, which are positive almost everywhere).
pub fn ape(actual: f64, predicted: f64) -> Option<f64> {
    if actual == 0.0 {
        None
    } else {
        Some((actual - predicted).abs() / actual.abs())
    }
}

/// Mean absolute percentage error over a horizon, in *fraction* (0.2 = 20%).
///
/// Points with `actual == 0` are skipped.
///
/// # Errors
///
/// - [`SeriesError::LengthMismatch`] on unequal lengths.
/// - [`SeriesError::Empty`] if no point has non-zero actual value.
pub fn mape(actual: &[f64], predicted: &[f64]) -> SeriesResult<f64> {
    check_lengths(actual, predicted)?;
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&a, &p) in actual.iter().zip(predicted) {
        if let Some(e) = ape(a, p) {
            sum += e;
            n += 1;
        }
    }
    if n == 0 {
        return Err(SeriesError::Empty);
    }
    Ok(sum / n as f64)
}

/// Mean APE restricted to points where `actual > threshold`
/// (paper Fig. 9's "Peak" curves; threshold is the ticket threshold, e.g.
/// 60 for utilization-percent series).
///
/// # Errors
///
/// - [`SeriesError::LengthMismatch`] on unequal lengths.
/// - [`SeriesError::Empty`] if no point exceeds the threshold.
pub fn peak_mape(actual: &[f64], predicted: &[f64], threshold: f64) -> SeriesResult<f64> {
    check_lengths(actual, predicted)?;
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&a, &p) in actual.iter().zip(predicted) {
        if a > threshold {
            if let Some(e) = ape(a, p) {
                sum += e;
                n += 1;
            }
        }
    }
    if n == 0 {
        return Err(SeriesError::Empty);
    }
    Ok(sum / n as f64)
}

/// Root mean squared error.
///
/// # Errors
///
/// - [`SeriesError::LengthMismatch`] on unequal lengths.
/// - [`SeriesError::Empty`] on empty input.
pub fn rmse(actual: &[f64], predicted: &[f64]) -> SeriesResult<f64> {
    check_lengths(actual, predicted)?;
    if actual.is_empty() {
        return Err(SeriesError::Empty);
    }
    let ss: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(&a, &p)| (a - p) * (a - p))
        .sum();
    Ok((ss / actual.len() as f64).sqrt())
}

/// Mean absolute error.
///
/// # Errors
///
/// - [`SeriesError::LengthMismatch`] on unequal lengths.
/// - [`SeriesError::Empty`] on empty input.
pub fn mae(actual: &[f64], predicted: &[f64]) -> SeriesResult<f64> {
    check_lengths(actual, predicted)?;
    if actual.is_empty() {
        return Err(SeriesError::Empty);
    }
    let s: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(&a, &p)| (a - p).abs())
        .sum();
    Ok(s / actual.len() as f64)
}

/// Symmetric MAPE, bounded in `[0, 2]`; robust when actuals approach zero.
/// Provided for ablation comparisons against the paper's APE.
///
/// # Errors
///
/// - [`SeriesError::LengthMismatch`] on unequal lengths.
/// - [`SeriesError::Empty`] if every point has `|actual| + |predicted| == 0`.
pub fn smape(actual: &[f64], predicted: &[f64]) -> SeriesResult<f64> {
    check_lengths(actual, predicted)?;
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&a, &p) in actual.iter().zip(predicted) {
        let denom = (a.abs() + p.abs()) / 2.0;
        if denom > 0.0 {
            sum += (a - p).abs() / denom;
            n += 1;
        }
    }
    if n == 0 {
        return Err(SeriesError::Empty);
    }
    Ok(sum / n as f64)
}

fn check_lengths(a: &[f64], b: &[f64]) -> SeriesResult<()> {
    if a.len() != b.len() {
        return Err(SeriesError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ape_pointwise() {
        assert_eq!(ape(100.0, 80.0), Some(0.2));
        assert_eq!(ape(50.0, 60.0), Some(0.2));
        assert_eq!(ape(0.0, 5.0), None);
    }

    #[test]
    fn mape_basic() {
        let a = [100.0, 100.0];
        let p = [90.0, 120.0];
        assert!((mape(&a, &p).unwrap() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let a = [0.0, 100.0];
        let p = [10.0, 80.0];
        assert!((mape(&a, &p).unwrap() - 0.2).abs() < 1e-12);
        assert!(mape(&[0.0], &[1.0]).is_err());
    }

    #[test]
    fn perfect_prediction_is_zero_error() {
        let a = [10.0, 20.0, 30.0];
        assert_eq!(mape(&a, &a).unwrap(), 0.0);
        assert_eq!(rmse(&a, &a).unwrap(), 0.0);
        assert_eq!(mae(&a, &a).unwrap(), 0.0);
        assert_eq!(smape(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn peak_mape_restricts_to_threshold() {
        let a = [50.0, 70.0, 90.0];
        let p = [10.0, 63.0, 81.0]; // errors: skipped, 0.1, 0.1
        assert!((peak_mape(&a, &p, 60.0).unwrap() - 0.1).abs() < 1e-12);
        assert!(peak_mape(&a, &p, 95.0).is_err());
    }

    #[test]
    fn rmse_and_mae() {
        let a = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 5.0];
        assert!((mae(&a, &p).unwrap() - 1.0).abs() < 1e-12);
        assert!((rmse(&a, &p).unwrap() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(mape(&[1.0], &[1.0, 2.0]).is_err());
        assert!(rmse(&[1.0], &[]).is_err());
        assert!(mae(&[], &[1.0]).is_err());
        assert!(smape(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn smape_bounded() {
        let a = [1.0, 100.0];
        let p = [100.0, 1.0];
        let s = smape(&a, &p).unwrap();
        assert!(s > 0.0 && s <= 2.0);
        assert!(smape(&[0.0], &[0.0]).is_err());
    }
}
