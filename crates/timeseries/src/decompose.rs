//! Simple seasonal decomposition.
//!
//! Data-center usage exhibits strong diurnal seasonality (Section I of the
//! paper; Fig. 1). This module provides an additive decomposition into a
//! periodic seasonal profile plus residual, used by the forecasting crate's
//! seasonal features and by the trace generator's self-checks.

use serde::{Deserialize, Serialize};

use crate::error::{SeriesError, SeriesResult};

/// Result of an additive seasonal decomposition with period `p`:
/// `x[t] = level + seasonal[t mod p] + residual[t]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeasonalDecomposition {
    /// Overall mean level of the series.
    pub level: f64,
    /// Zero-mean seasonal profile of length `period`.
    pub seasonal: Vec<f64>,
    /// Residual after removing level and seasonality; same length as input.
    pub residual: Vec<f64>,
}

impl SeasonalDecomposition {
    /// Reconstructs the fitted (level + seasonal) component at index `t`.
    pub fn fitted(&self, t: usize) -> f64 {
        self.level + self.seasonal[t % self.seasonal.len()]
    }

    /// Fraction of total variance explained by the seasonal component,
    /// in `[0, 1]`. Returns 0 for a constant series.
    pub fn seasonal_strength(&self) -> f64 {
        let n = self.residual.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let var_res: f64 = self.residual.iter().map(|r| r * r).sum::<f64>() / n;
        let var_seas: f64 = (0..self.residual.len())
            .map(|t| {
                let s = self.seasonal[t % self.seasonal.len()];
                s * s
            })
            .sum::<f64>()
            / n;
        let total = var_res + var_seas;
        if total == 0.0 {
            0.0
        } else {
            var_seas / total
        }
    }
}

/// Decomposes `xs` additively with the given period using seasonal means.
///
/// # Errors
///
/// - [`SeriesError::InvalidParameter`] if `period == 0`.
/// - [`SeriesError::TooShort`] if fewer than `2 * period` observations
///   (at least two full cycles are needed for a meaningful profile).
pub fn seasonal_decompose(xs: &[f64], period: usize) -> SeriesResult<SeasonalDecomposition> {
    if period == 0 {
        return Err(SeriesError::InvalidParameter("period must be positive"));
    }
    if xs.len() < 2 * period {
        return Err(SeriesError::TooShort {
            required: 2 * period,
            actual: xs.len(),
        });
    }
    let level = xs.iter().sum::<f64>() / xs.len() as f64;

    // Seasonal means per phase, then centered to zero mean.
    let mut sums = vec![0.0; period];
    let mut counts = vec![0usize; period];
    for (t, &x) in xs.iter().enumerate() {
        sums[t % period] += x - level;
        counts[t % period] += 1;
    }
    let mut seasonal: Vec<f64> = sums
        .iter()
        .zip(&counts)
        .map(|(&s, &c)| s / c as f64)
        .collect();
    let seas_mean = seasonal.iter().sum::<f64>() / period as f64;
    for s in &mut seasonal {
        *s -= seas_mean;
    }

    let residual: Vec<f64> = xs
        .iter()
        .enumerate()
        .map(|(t, &x)| x - level - seasonal[t % period])
        .collect();

    Ok(SeasonalDecomposition {
        level,
        seasonal,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_pure_seasonal_signal() {
        let profile = [0.0, 10.0, 5.0, -15.0];
        let xs: Vec<f64> = (0..40).map(|t| 50.0 + profile[t % 4]).collect();
        let d = seasonal_decompose(&xs, 4).unwrap();
        assert!((d.level - 50.0).abs() < 1e-9);
        for (a, b) in d.seasonal.iter().zip(&profile) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        for r in &d.residual {
            assert!(r.abs() < 1e-9);
        }
        assert!((d.seasonal_strength() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fitted_reconstruction() {
        let xs: Vec<f64> = (0..20)
            .map(|t| if t % 2 == 0 { 10.0 } else { 30.0 })
            .collect();
        let d = seasonal_decompose(&xs, 2).unwrap();
        assert!((d.fitted(0) - 10.0).abs() < 1e-9);
        assert!((d.fitted(1) - 30.0).abs() < 1e-9);
        assert!((d.fitted(7) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn white_noise_has_weak_seasonality() {
        // Deterministic pseudo-noise (no rand dependency here).
        let xs: Vec<f64> = (0..96)
            .map(|t| ((t as f64 * 12.9898).sin() * 43758.5453).fract())
            .collect();
        let d = seasonal_decompose(&xs, 24).unwrap();
        assert!(d.seasonal_strength() < 0.7);
    }

    #[test]
    fn errors() {
        assert!(seasonal_decompose(&[1.0; 10], 0).is_err());
        assert!(seasonal_decompose(&[1.0; 5], 4).is_err());
    }

    #[test]
    fn seasonal_component_is_zero_mean() {
        let xs: Vec<f64> = (0..30)
            .map(|t| (t % 5) as f64 * 2.0 + t as f64 * 0.01)
            .collect();
        let d = seasonal_decompose(&xs, 5).unwrap();
        let m: f64 = d.seasonal.iter().sum::<f64>() / d.seasonal.len() as f64;
        assert!(m.abs() < 1e-12);
    }
}
