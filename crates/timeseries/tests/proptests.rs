//! Property-based tests for the time-series primitives.

use atm_timeseries::{decompose, metrics, stats, transform, window};
use proptest::prelude::*;

fn values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, 2..100)
}

/// Proptest case count: `default`, rescaled by `ATM_PROPTEST_CASES`
/// relative to proptest's own default of 256 (the nightly CI deep run
/// sets 1024, i.e. 4x cases for every suite).
fn proptest_cases(default: u32) -> u32 {
    match std::env::var("ATM_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        Some(cases) => (u64::from(default) * cases).div_ceil(256).max(1) as u32,
        None => default,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases(256)))]
    #[test]
    fn mean_within_bounds(xs in values()) {
        let m = stats::mean(&xs).unwrap();
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn variance_nonnegative(xs in values()) {
        prop_assert!(stats::variance(&xs).unwrap() >= 0.0);
    }

    #[test]
    fn pearson_self_is_one(xs in values()) {
        match stats::pearson(&xs, &xs) {
            Ok(r) => prop_assert!((r - 1.0).abs() < 1e-9),
            Err(_) => prop_assert!(xs.iter().all(|&v| v == xs[0])), // constant
        }
    }

    #[test]
    fn spearman_bounded(xs in values(), ys in values()) {
        let n = xs.len().min(ys.len());
        if let Ok(r) = stats::spearman(&xs[..n], &ys[..n]) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }

    #[test]
    fn quantile_within_range_and_monotone(xs in values(), a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo_p, hi_p) = if a <= b { (a, b) } else { (b, a) };
        let q_lo = stats::quantile(&xs, lo_p).unwrap();
        let q_hi = stats::quantile(&xs, hi_p).unwrap();
        prop_assert!(q_lo <= q_hi + 1e-12);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(q_lo >= min && q_hi <= max);
    }

    #[test]
    fn znorm_roundtrip(xs in values()) {
        if let Ok((zs, m, s)) = transform::znorm(&xs) {
            let back = transform::znorm_inverse(&zs, m, s);
            for (a, b) in xs.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
            }
            // Normalized series has ~zero mean, ~unit std.
            let zm = stats::mean(&zs).unwrap();
            prop_assert!(zm.abs() < 1e-9);
        }
    }

    #[test]
    fn diff_undiff_roundtrip(xs in values()) {
        let d = transform::diff(&xs).unwrap();
        let back = transform::undiff(&d, xs[0]);
        for (a, b) in xs.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn usage_demand_roundtrip(xs in prop::collection::vec(0.0f64..100.0, 1..50), cap in 0.1f64..100.0) {
        let demand = transform::usage_to_demand(&xs, cap).unwrap();
        let back = transform::demand_to_usage(&demand, cap).unwrap();
        for (a, b) in xs.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        for (&d, &u) in demand.iter().zip(&xs) {
            prop_assert!(d >= 0.0 && d <= cap * 1.0001);
            prop_assert!((d - u / 100.0 * cap).abs() < 1e-9);
        }
    }

    #[test]
    fn downsample_mean_preserves_total_on_exact_multiples(
        xs in prop::collection::vec(-100.0f64..100.0, 1..20),
        reps in 1usize..6,
    ) {
        // Build a series whose length is an exact multiple of `reps`.
        let series: Vec<f64> = xs.iter().flat_map(|&v| std::iter::repeat_n(v, reps)).collect();
        let down = window::downsample(&series, reps, window::Aggregation::Mean).unwrap();
        let total_in: f64 = series.iter().sum();
        let total_out: f64 = down.iter().map(|v| v * reps as f64).sum();
        prop_assert!((total_in - total_out).abs() < 1e-6);
    }

    #[test]
    fn moving_average_within_bounds(xs in values(), size in 1usize..20) {
        let ma = window::moving_average(&xs, size).unwrap();
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for &v in &ma {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
        prop_assert_eq!(ma.len(), xs.len());
    }

    #[test]
    fn mape_zero_iff_equal(xs in prop::collection::vec(1.0f64..1e3, 1..50)) {
        prop_assert_eq!(metrics::mape(&xs, &xs).unwrap(), 0.0);
        let shifted: Vec<f64> = xs.iter().map(|v| v * 1.1).collect();
        let e = metrics::mape(&xs, &shifted).unwrap();
        prop_assert!((e - 0.1).abs() < 1e-9);
    }

    #[test]
    fn rmse_at_least_mae(xs in values(), ys in values()) {
        let n = xs.len().min(ys.len());
        let rmse = metrics::rmse(&xs[..n], &ys[..n]).unwrap();
        let mae = metrics::mae(&xs[..n], &ys[..n]).unwrap();
        prop_assert!(rmse >= mae - 1e-9);
    }

    #[test]
    fn seasonal_decomposition_reconstructs(xs in prop::collection::vec(-50.0f64..50.0, 8..80), period in 2usize..4) {
        if xs.len() >= 2 * period {
            let d = decompose::seasonal_decompose(&xs, period).unwrap();
            for (t, &x) in xs.iter().enumerate() {
                let rebuilt = d.fitted(t) + d.residual[t];
                prop_assert!((rebuilt - x).abs() < 1e-6);
            }
            let strength = d.seasonal_strength();
            prop_assert!((0.0..=1.0 + 1e-9).contains(&strength));
        }
    }
}
