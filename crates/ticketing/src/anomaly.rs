//! Robust anomaly scoring on inter-ticket delays.
//!
//! A box that suddenly tickets much faster than its own history is
//! worth flagging — it is either drifting into chronic overload or
//! suffering a correlated event. This module scores boxes with a
//! robust Z-score (median / MAD — immune to the very outliers it is
//! looking for) over **log-transformed inter-ticket delays**: delays
//! are multiplicative (a box going from one ticket a day to one an
//! hour is the same *relative* change as hour → 2.5 min), so the log
//! turns ratio shifts into additive ones the Z-score can see.
//!
//! All float handling is NaN-safe via `atm-num` total-order
//! primitives; non-finite inputs are structured errors, never panics.

use atm_num::sort_floats;
use serde::{Deserialize, Serialize};

use crate::error::{TicketingError, TicketingResult};

/// Consistency constant making the MAD estimate the standard deviation
/// for normally distributed data (1 / Φ⁻¹(3/4)).
pub const MAD_SCALE: f64 = 1.4826;

/// Configuration for inter-ticket-delay anomaly scoring.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnomalyConfig {
    /// Score at or above which a box is flagged anomalous (a robust
    /// Z-score; 3.5 is the classic Iglewicz–Hoaglin cutoff).
    pub z_threshold: f64,
    /// Minimum number of inter-ticket delays before scoring; below
    /// this the box has no usable history and is never flagged.
    pub min_delays: usize,
    /// How many of the most recent delays form the "now" the history
    /// is compared against.
    pub recent_delays: usize,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            z_threshold: 3.5,
            min_delays: 6,
            recent_delays: 3,
        }
    }
}

impl AnomalyConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TicketingError::InvalidThreshold`] unless `z_threshold`
    /// is positive and finite, or [`TicketingError::Empty`] when
    /// `recent_delays` is zero.
    pub fn validate(&self) -> TicketingResult<()> {
        if !(self.z_threshold > 0.0 && self.z_threshold.is_finite()) {
            return Err(TicketingError::InvalidThreshold(self.z_threshold));
        }
        if self.recent_delays == 0 {
            return Err(TicketingError::Empty);
        }
        Ok(())
    }
}

/// Median of a non-empty slice under the IEEE total order.
fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sort_floats(&mut sorted);
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Robust Z-scores: `(x − median) / (MAD_SCALE · MAD)` per element.
///
/// When the MAD is zero (at least half the values identical) the
/// distribution has no robust spread to score against, and every
/// element scores `0.0` — a degenerate series is *typical of itself*,
/// not anomalous.
///
/// # Errors
///
/// Returns [`TicketingError::Empty`] on empty input and
/// [`TicketingError::NonFinite`] on the first NaN or infinity.
pub fn robust_zscores(values: &[f64]) -> TicketingResult<Vec<f64>> {
    if values.is_empty() {
        return Err(TicketingError::Empty);
    }
    if let Some(&bad) = values.iter().find(|v| !v.is_finite()) {
        return Err(TicketingError::NonFinite(bad));
    }
    let med = median(values);
    let deviations: Vec<f64> = values.iter().map(|&v| (v - med).abs()).collect();
    let mad = median(&deviations);
    let scale = MAD_SCALE * mad;
    if scale == 0.0 {
        return Ok(vec![0.0; values.len()]);
    }
    Ok(values.iter().map(|&v| (v - med) / scale).collect())
}

/// Natural logs of the gaps between consecutive ticketed windows.
/// `windows` must be strictly increasing (ticket-window indices in
/// order, as [`ticket_windows`](crate::ticket::ticket_windows) and the
/// co-occurrence sets produce them); gaps are ≥ 1 window, so every log
/// is finite and ≥ 0.
pub fn log_inter_ticket_delays(windows: &[usize]) -> Vec<f64> {
    debug_assert!(
        windows.windows(2).all(|p| p[0] < p[1]),
        "ticket windows must be strictly increasing"
    );
    windows
        .windows(2)
        .map(|p| ((p[1] - p[0]) as f64).ln())
        .collect()
}

/// Scores a box's ticket-window sequence against its own history.
///
/// The score is the negated mean robust Z-score of the most recent
/// [`AnomalyConfig::recent_delays`] log-delays: recent delays far
/// *below* the box's typical delay (a ticket burst) push the score up.
/// Returns `None` when there are fewer than
/// [`AnomalyConfig::min_delays`] delays — too little history to call
/// anything anomalous.
///
/// # Errors
///
/// Returns [`TicketingError::InvalidThreshold`] /
/// [`TicketingError::Empty`] if `config` is invalid.
pub fn anomaly_score(windows: &[usize], config: &AnomalyConfig) -> TicketingResult<Option<f64>> {
    config.validate()?;
    let delays = log_inter_ticket_delays(windows);
    if delays.len() < config.min_delays.max(1) {
        return Ok(None);
    }
    let z = robust_zscores(&delays)?;
    let k = config.recent_delays.min(z.len());
    let recent = &z[z.len() - k..];
    Ok(Some(-(recent.iter().sum::<f64>() / k as f64)))
}

/// Whether a score from [`anomaly_score`] crosses the configured
/// threshold.
pub fn is_anomalous(score: f64, config: &AnomalyConfig) -> bool {
    score >= config.z_threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(AnomalyConfig::default().validate().is_ok());
        assert!(AnomalyConfig {
            z_threshold: 0.0,
            ..AnomalyConfig::default()
        }
        .validate()
        .is_err());
        assert!(AnomalyConfig {
            z_threshold: f64::NAN,
            ..AnomalyConfig::default()
        }
        .validate()
        .is_err());
        assert!(AnomalyConfig {
            recent_delays: 0,
            ..AnomalyConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn zscores_reject_bad_input() {
        assert_eq!(robust_zscores(&[]), Err(TicketingError::Empty));
        assert!(matches!(
            robust_zscores(&[1.0, f64::NAN]),
            Err(TicketingError::NonFinite(_))
        ));
        assert!(robust_zscores(&[1.0, f64::INFINITY]).is_err());
    }

    #[test]
    fn degenerate_distribution_scores_zero() {
        // MAD 0: all-identical values are typical of themselves.
        assert_eq!(robust_zscores(&[5.0; 8]).unwrap(), vec![0.0; 8]);
    }

    #[test]
    fn outlier_gets_large_magnitude_zscore() {
        let mut values = vec![10.0; 9];
        values.push(30.0);
        let z = robust_zscores(&values).unwrap();
        // Median and MAD come from the bulk, so the bulk scores 0 and
        // only the outlier is displaced... but MAD of 9×0,1×20
        // deviations is 0 → degenerate. Perturb the bulk slightly.
        assert_eq!(z[..9], vec![0.0; 9][..]);
        let values2 = [9.0, 10.0, 11.0, 9.5, 10.5, 10.0, 9.8, 10.2, 30.0];
        let z2 = robust_zscores(&values2).unwrap();
        assert!(z2[8] > 3.5, "outlier z {}", z2[8]);
        assert!(z2[..8].iter().all(|v| v.abs() < 3.5));
    }

    #[test]
    fn log_delays_are_gaps() {
        let d = log_inter_ticket_delays(&[3, 4, 6, 14]);
        assert_eq!(d.len(), 3);
        assert!((d[0] - 1f64.ln()).abs() < 1e-12);
        assert!((d[1] - 2f64.ln()).abs() < 1e-12);
        assert!((d[2] - 8f64.ln()).abs() < 1e-12);
        assert!(log_inter_ticket_delays(&[7]).is_empty());
        assert!(log_inter_ticket_delays(&[]).is_empty());
    }

    #[test]
    fn burst_after_slow_history_is_anomalous() {
        // History: a ticket every ~32 windows with mild jitter. Then a
        // burst: consecutive-window tickets. Recent log-delays crash
        // from ln(32) to ln(1) = 0 → large positive score.
        let mut windows = Vec::new();
        let mut w = 0usize;
        for i in 0..12 {
            w += 30 + (i % 5);
            windows.push(w);
        }
        let calm = anomaly_score(&windows, &AnomalyConfig::default())
            .unwrap()
            .expect("enough history");
        assert!(calm < 3.5, "steady cadence scored anomalous: {calm}");
        for _ in 0..3 {
            w += 1;
            windows.push(w);
        }
        let burst = anomaly_score(&windows, &AnomalyConfig::default())
            .unwrap()
            .expect("enough history");
        assert!(
            is_anomalous(burst, &AnomalyConfig::default()),
            "burst scored {burst}, expected ≥ 3.5"
        );
        assert!(burst > calm);
    }

    #[test]
    fn short_history_is_never_flagged() {
        let cfg = AnomalyConfig::default();
        assert_eq!(anomaly_score(&[], &cfg).unwrap(), None);
        assert_eq!(anomaly_score(&[1, 2, 3], &cfg).unwrap(), None);
    }
}
