//! # atm-ticketing
//!
//! Usage-ticket semantics and the paper's Section II characterization.
//!
//! A *usage ticket* is issued for a VM in a ticketing window when its
//! average utilization in that window exceeds a threshold (60%, 70% or 80%
//! in the paper, with 60% the evaluation default). This crate provides:
//!
//! - [`ticket`]: threshold policies and NaN-safe ticket counting over
//!   usage and demand series;
//! - [`characterize`]: per-box and fleet-level ticket statistics — the
//!   percentage of boxes with tickets, the distribution of tickets per
//!   box, and the number of "culprit" VMs covering the majority of
//!   tickets (paper Fig. 2);
//! - [`correlation`]: the four spatial-dependency measures of paper
//!   Fig. 3 (intra-CPU, intra-RAM, inter-all, inter-pair);
//! - [`cooccurrence`]: how synchronously co-located VMs' tickets fire
//!   (the Fig. 1 "tickets are triggered together" observation);
//! - [`storm`]: collapses correlated ticket bursts into deduplicated
//!   [`TicketStorm`](storm::TicketStorm) incidents via Jaccard
//!   co-occurrence grouping;
//! - [`anomaly`]: robust (median/MAD) Z-scores on log inter-ticket
//!   delays, flagging boxes that ticket anomalously fast.
//!
//! # Example
//!
//! ```
//! use atm_ticketing::ticket::{ThresholdPolicy, count_usage_tickets};
//!
//! let policy = ThresholdPolicy::new(60.0).unwrap();
//! let usage = [55.0, 62.0, 80.0, 59.9];
//! assert_eq!(count_usage_tickets(&usage, &policy), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod characterize;
pub mod cooccurrence;
pub mod correlation;
mod error;
pub mod storm;
pub mod ticket;

pub use anomaly::AnomalyConfig;
pub use error::{TicketingError, TicketingResult};
pub use storm::{StormConfig, StormReport, StormSummary, TicketStorm};
pub use ticket::ThresholdPolicy;
