//! Ticket thresholds and counting.
//!
//! The monitoring system checks, every ticketing window, whether a VM's
//! average utilization exceeds the threshold `α` of its allocated capacity
//! (paper Section IV: demand `D_{i,t} > α·C_i` ⇔ usage `> α·100%`).
//! Gap samples (`NaN`) never generate tickets.

use serde::{Deserialize, Serialize};

use crate::error::{TicketingError, TicketingResult};

/// The threshold levels studied in the paper's characterization (Fig. 2).
pub const PAPER_THRESHOLDS: [f64; 3] = [60.0, 70.0, 80.0];

/// The paper's evaluation default (Sections IV-B and V).
pub const DEFAULT_THRESHOLD: f64 = 60.0;

/// A usage-ticket threshold policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdPolicy {
    threshold_pct: f64,
}

impl ThresholdPolicy {
    /// Creates a policy issuing tickets above `threshold_pct` percent
    /// utilization.
    ///
    /// # Errors
    ///
    /// Returns [`TicketingError::InvalidThreshold`] unless
    /// `0 < threshold_pct < 100`.
    pub fn new(threshold_pct: f64) -> TicketingResult<Self> {
        if !(threshold_pct > 0.0 && threshold_pct < 100.0) {
            return Err(TicketingError::InvalidThreshold(threshold_pct));
        }
        Ok(ThresholdPolicy { threshold_pct })
    }

    /// The threshold in percent (e.g. 60.0).
    pub fn threshold_pct(&self) -> f64 {
        self.threshold_pct
    }

    /// The threshold as a fraction α ∈ (0, 1) — the `α` of the paper's
    /// constraint `D_{i,t} − αC_i ≤ D_{i,t} I_{i,t}`.
    pub fn alpha(&self) -> f64 {
        self.threshold_pct / 100.0
    }

    /// Whether a single utilization-percent sample triggers a ticket.
    /// `NaN` (gap) samples never do.
    pub fn violates_usage(&self, usage_pct: f64) -> bool {
        usage_pct > self.threshold_pct
    }

    /// Whether a demand sample triggers a ticket under an allocated
    /// capacity: `demand > α·capacity`.
    ///
    /// # Errors
    ///
    /// Returns [`TicketingError::InvalidCapacity`] unless `capacity` is
    /// positive and finite. (An unvalidated `capacity` of `0.0` would
    /// silently ticket every positive sample, and a negative one would
    /// ticket even zero demand — solver hot loops that have already
    /// normalized their capacities use
    /// [`violates_demand_clamped`](Self::violates_demand_clamped)
    /// instead.)
    pub fn violates_demand(&self, demand: f64, capacity: f64) -> TicketingResult<bool> {
        if !(capacity > 0.0 && capacity.is_finite()) {
            return Err(TicketingError::InvalidCapacity(capacity));
        }
        Ok(self.violates_demand_clamped(demand, capacity))
    }

    /// Total (never-failing) form of [`violates_demand`] for solver hot
    /// loops: `capacity` is clamped up to [`f64::MIN_POSITIVE`], so
    /// zero, negative, and NaN capacities all mean "effectively no
    /// capacity" — every positive demand tickets, and zero or negative
    /// demand never does. A `+∞` capacity never tickets. NaN demand
    /// never tickets (gap samples).
    #[inline]
    pub fn violates_demand_clamped(&self, demand: f64, capacity: f64) -> bool {
        demand > self.alpha() * capacity.max(f64::MIN_POSITIVE)
    }
}

impl Default for ThresholdPolicy {
    fn default() -> Self {
        ThresholdPolicy {
            threshold_pct: DEFAULT_THRESHOLD,
        }
    }
}

/// Counts tickets over a utilization-percent series. `NaN` samples are
/// skipped.
pub fn count_usage_tickets(usage_pct: &[f64], policy: &ThresholdPolicy) -> usize {
    usage_pct
        .iter()
        .filter(|&&u| policy.violates_usage(u))
        .count()
}

/// Counts tickets over a demand series for a given allocated capacity.
/// `NaN` samples are skipped.
///
/// # Errors
///
/// Returns [`TicketingError::InvalidCapacity`] unless `capacity` is
/// positive and finite.
pub fn count_demand_tickets(
    demand: &[f64],
    capacity: f64,
    policy: &ThresholdPolicy,
) -> TicketingResult<usize> {
    if !(capacity > 0.0 && capacity.is_finite()) {
        return Err(TicketingError::InvalidCapacity(capacity));
    }
    Ok(demand
        .iter()
        .filter(|&&d| policy.violates_demand_clamped(d, capacity))
        .count())
}

/// Indices of the ticketing windows in which a usage series violates the
/// policy.
pub fn ticket_windows(usage_pct: &[f64], policy: &ThresholdPolicy) -> Vec<usize> {
    usage_pct
        .iter()
        .enumerate()
        .filter(|&(_, &u)| policy.violates_usage(u))
        .map(|(t, _)| t)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_validation() {
        assert!(ThresholdPolicy::new(60.0).is_ok());
        assert!(ThresholdPolicy::new(0.0).is_err());
        assert!(ThresholdPolicy::new(100.0).is_err());
        assert!(ThresholdPolicy::new(-5.0).is_err());
        assert!(ThresholdPolicy::new(f64::NAN).is_err());
        assert_eq!(ThresholdPolicy::default().threshold_pct(), 60.0);
        assert!((ThresholdPolicy::new(70.0).unwrap().alpha() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn strict_inequality_at_threshold() {
        let p = ThresholdPolicy::new(60.0).unwrap();
        assert!(!p.violates_usage(60.0));
        assert!(p.violates_usage(60.0001));
    }

    #[test]
    fn nan_never_tickets() {
        let p = ThresholdPolicy::default();
        assert!(!p.violates_usage(f64::NAN));
        assert_eq!(count_usage_tickets(&[f64::NAN, 90.0, f64::NAN], &p), 1);
    }

    #[test]
    fn count_usage() {
        let p = ThresholdPolicy::new(70.0).unwrap();
        let usage = [65.0, 71.0, 90.0, 70.0, 100.0];
        assert_eq!(count_usage_tickets(&usage, &p), 3);
        assert_eq!(count_usage_tickets(&[], &p), 0);
    }

    #[test]
    fn demand_tickets_match_paper_example() {
        // Paper Section IV-A example: capacity 70, threshold 60% -> demands
        // above 42 ticket. D = {30,30,40,40,23,25,60,60,60,60} -> 4 tickets.
        let p = ThresholdPolicy::new(60.0).unwrap();
        let d = [30.0, 30.0, 40.0, 40.0, 23.0, 25.0, 60.0, 60.0, 60.0, 60.0];
        assert_eq!(count_demand_tickets(&d, 70.0, &p).unwrap(), 4);
        // Capacity 100: threshold 60 -> none of the demands exceed 60.
        assert_eq!(count_demand_tickets(&d, 100.0, &p).unwrap(), 0);
        assert!(count_demand_tickets(&d, 0.0, &p).is_err());
        assert!(count_demand_tickets(&d, f64::INFINITY, &p).is_err());
    }

    #[test]
    fn violates_demand_rejects_invalid_capacity() {
        // Regression: the unvalidated form accepted capacity 0.0 (every
        // positive sample ticketed) and negative capacity (even zero
        // demand ticketed). The validating entry point must reject all
        // non-positive and non-finite capacities.
        let p = ThresholdPolicy::default();
        assert!(matches!(
            p.violates_demand(1.0, 0.0),
            Err(TicketingError::InvalidCapacity(c)) if c == 0.0
        ));
        assert!(p.violates_demand(0.0, -5.0).is_err());
        assert!(p.violates_demand(1.0, f64::NAN).is_err());
        assert!(p.violates_demand(1.0, f64::INFINITY).is_err());
        assert!(p.violates_demand(1.0, f64::NEG_INFINITY).is_err());
        assert_eq!(p.violates_demand(61.0, 100.0), Ok(true));
        assert_eq!(p.violates_demand(60.0, 100.0), Ok(false));
    }

    #[test]
    fn violates_demand_clamped_contract() {
        let p = ThresholdPolicy::default();
        // Zero/negative/NaN capacity: "no capacity" — positive demand
        // tickets, zero and negative demand never do. (The old unguarded
        // form returned `true` for `(0.0, -5.0)`.)
        assert!(p.violates_demand_clamped(0.5, 0.0));
        assert!(!p.violates_demand_clamped(0.0, 0.0));
        assert!(!p.violates_demand_clamped(0.0, -5.0));
        assert!(!p.violates_demand_clamped(-1.0, -5.0));
        assert!(p.violates_demand_clamped(1.0, f64::NAN));
        // Infinite capacity never tickets; NaN demand (gap) never does.
        assert!(!p.violates_demand_clamped(1e300, f64::INFINITY));
        assert!(!p.violates_demand_clamped(f64::NAN, 10.0));
        // Positive finite capacity agrees with the validating form.
        assert_eq!(
            p.violates_demand_clamped(61.0, 100.0),
            p.violates_demand(61.0, 100.0).unwrap()
        );
    }

    #[test]
    fn windows_listed_in_order() {
        let p = ThresholdPolicy::default();
        let usage = [61.0, 10.0, 75.0];
        assert_eq!(ticket_windows(&usage, &p), vec![0, 2]);
    }

    #[test]
    fn usage_and_demand_counting_agree() {
        // usage > 60%  <=>  demand > 0.6 * capacity for any capacity.
        let p = ThresholdPolicy::default();
        let usage = [10.0, 59.0, 61.0, 95.0];
        let capacity = 7.5;
        let demand: Vec<f64> = usage.iter().map(|u| u / 100.0 * capacity).collect();
        assert_eq!(
            count_usage_tickets(&usage, &p),
            count_demand_tickets(&demand, capacity, &p).unwrap()
        );
    }
}
