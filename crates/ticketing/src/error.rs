use std::error::Error;
use std::fmt;

/// Errors produced by ticketing operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TicketingError {
    /// A threshold outside `(0, 100)` percent was supplied.
    InvalidThreshold(f64),
    /// A coverage fraction outside `(0, 1]` was supplied.
    InvalidCoverage(f64),
    /// The operation requires non-empty input.
    Empty,
    /// A capacity must be positive and finite.
    InvalidCapacity(f64),
    /// A windows-per-day count that is not a positive multiple of 24 was
    /// supplied to an hourly binning.
    InvalidWindowsPerDay(usize),
    /// A sampling interval (minutes) that does not evenly divide an hour
    /// was supplied where whole-hour binning is required.
    InvalidInterval(u32),
    /// A non-finite value reached a computation that requires finite
    /// input.
    NonFinite(f64),
}

impl fmt::Display for TicketingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TicketingError::InvalidThreshold(t) => {
                write!(f, "threshold {t} must be in (0, 100) percent")
            }
            TicketingError::InvalidCoverage(c) => {
                write!(f, "coverage {c} must be in (0, 1]")
            }
            TicketingError::Empty => write!(f, "input is empty"),
            TicketingError::InvalidCapacity(c) => {
                write!(f, "capacity {c} must be positive and finite")
            }
            TicketingError::InvalidWindowsPerDay(w) => {
                write!(f, "windows per day {w} must be a positive multiple of 24")
            }
            TicketingError::InvalidInterval(m) => {
                write!(
                    f,
                    "sampling interval {m} min must evenly divide 60 for hourly binning"
                )
            }
            TicketingError::NonFinite(v) => {
                write!(f, "non-finite value {v} in input")
            }
        }
    }
}

impl Error for TicketingError {}

/// Convenience alias for results in this crate.
pub type TicketingResult<T> = Result<T, TicketingError>;
