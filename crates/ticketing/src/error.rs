use std::error::Error;
use std::fmt;

/// Errors produced by ticketing operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TicketingError {
    /// A threshold outside `(0, 100)` percent was supplied.
    InvalidThreshold(f64),
    /// A coverage fraction outside `(0, 1]` was supplied.
    InvalidCoverage(f64),
    /// The operation requires non-empty input.
    Empty,
    /// A capacity must be positive and finite.
    InvalidCapacity(f64),
}

impl fmt::Display for TicketingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TicketingError::InvalidThreshold(t) => {
                write!(f, "threshold {t} must be in (0, 100) percent")
            }
            TicketingError::InvalidCoverage(c) => {
                write!(f, "coverage {c} must be in (0, 1]")
            }
            TicketingError::Empty => write!(f, "input is empty"),
            TicketingError::InvalidCapacity(c) => {
                write!(f, "capacity {c} must be positive and finite")
            }
        }
    }
}

impl Error for TicketingError {}

/// Convenience alias for results in this crate.
pub type TicketingResult<T> = Result<T, TicketingError>;
