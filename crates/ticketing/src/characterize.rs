//! Per-box and fleet-level ticket characterization — the machinery behind
//! paper Fig. 2: how many boxes have tickets, how tickets distribute across
//! boxes, and how many "culprit" VMs account for the majority of tickets.

use atm_tracegen::{BoxTrace, FleetTrace, Resource};
use serde::{Deserialize, Serialize};

use crate::error::{TicketingError, TicketingResult};
use crate::ticket::{count_usage_tickets, ThresholdPolicy};

/// The paper's "majority" definition for culprit VMs: the VMs that account
/// for 80% of usage tickets per box ("this is an ad-hoc value").
pub const CULPRIT_COVERAGE: f64 = 0.8;

/// Ticket statistics for one box and one resource under one threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxTicketStats {
    /// Tickets per VM, indexed by VM position in the box.
    pub per_vm: Vec<usize>,
    /// Total tickets on the box.
    pub total: usize,
    /// Minimum number of VMs covering [`CULPRIT_COVERAGE`] of all tickets
    /// (0 when the box has no tickets).
    pub culprit_vms: usize,
}

impl BoxTicketStats {
    /// Whether the box issued at least one ticket.
    pub fn has_tickets(&self) -> bool {
        self.total > 0
    }
}

/// Computes per-box ticket statistics for a resource under a policy.
///
/// The culprit count is the smallest `k` such that the `k` VMs with the
/// most tickets cover at least `coverage` of the box's tickets.
///
/// # Errors
///
/// Returns [`TicketingError::InvalidCoverage`] unless `0 < coverage <= 1`.
pub fn box_ticket_stats(
    box_trace: &BoxTrace,
    resource: Resource,
    policy: &ThresholdPolicy,
    coverage: f64,
) -> TicketingResult<BoxTicketStats> {
    if !(coverage > 0.0 && coverage <= 1.0) {
        return Err(TicketingError::InvalidCoverage(coverage));
    }
    let per_vm: Vec<usize> = box_trace
        .vms
        .iter()
        .map(|vm| count_usage_tickets(vm.usage(resource), policy))
        .collect();
    let total: usize = per_vm.iter().sum();
    let culprit_vms = if total == 0 {
        0
    } else {
        let mut sorted = per_vm.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let target = (total as f64 * coverage).ceil() as usize;
        let mut acc = 0usize;
        let mut k = 0usize;
        for c in sorted {
            acc += c;
            k += 1;
            if acc >= target {
                break;
            }
        }
        k
    };
    Ok(BoxTicketStats {
        per_vm,
        total,
        culprit_vms,
    })
}

/// Fleet-level summary for one resource and one threshold — one group of
/// bars in paper Figs. 2a–2c.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTicketSummary {
    /// The resource characterized.
    pub resource: Resource,
    /// The ticket threshold in percent.
    pub threshold_pct: f64,
    /// Percentage of boxes with at least one ticket (Fig. 2a).
    pub pct_boxes_with_tickets: f64,
    /// Mean tickets per box (Fig. 2b).
    pub mean_tickets_per_box: f64,
    /// Standard deviation of tickets per box (Fig. 2b).
    pub std_tickets_per_box: f64,
    /// Mean culprit-VM count over boxes *with* tickets (Fig. 2c).
    pub mean_culprit_vms: f64,
    /// Standard deviation of the culprit-VM count over boxes with tickets.
    pub std_culprit_vms: f64,
}

/// Characterizes the whole fleet for one resource and threshold.
///
/// # Errors
///
/// - [`TicketingError::Empty`] if the fleet has no boxes.
/// - [`TicketingError::InvalidCoverage`] for a bad coverage.
pub fn fleet_ticket_summary(
    fleet: &FleetTrace,
    resource: Resource,
    policy: &ThresholdPolicy,
    coverage: f64,
) -> TicketingResult<FleetTicketSummary> {
    if fleet.boxes.is_empty() {
        return Err(TicketingError::Empty);
    }
    let stats: Vec<BoxTicketStats> = fleet
        .boxes
        .iter()
        .map(|b| box_ticket_stats(b, resource, policy, coverage))
        .collect::<TicketingResult<_>>()?;

    let with_tickets = stats.iter().filter(|s| s.has_tickets()).count();
    let pct = with_tickets as f64 / stats.len() as f64 * 100.0;

    let totals: Vec<f64> = stats.iter().map(|s| s.total as f64).collect();
    let (mean_t, std_t) =
        atm_timeseries::stats::mean_std_finite(&totals).map_err(|_| TicketingError::Empty)?;

    let culprits: Vec<f64> = stats
        .iter()
        .filter(|s| s.has_tickets())
        .map(|s| s.culprit_vms as f64)
        .collect();
    let (mean_c, std_c) = if culprits.is_empty() {
        (0.0, 0.0)
    } else {
        atm_timeseries::stats::mean_std_finite(&culprits).map_err(|_| TicketingError::Empty)?
    };

    Ok(FleetTicketSummary {
        resource,
        threshold_pct: policy.threshold_pct(),
        pct_boxes_with_tickets: pct,
        mean_tickets_per_box: mean_t,
        std_tickets_per_box: std_t,
        mean_culprit_vms: mean_c,
        std_culprit_vms: std_c,
    })
}

/// Runs [`fleet_ticket_summary`] for both resources across a set of
/// thresholds — the full input for paper Figs. 2a–2c.
///
/// # Errors
///
/// Propagates the errors of [`fleet_ticket_summary`] and threshold
/// construction.
pub fn characterize_fleet(
    fleet: &FleetTrace,
    thresholds_pct: &[f64],
) -> TicketingResult<Vec<FleetTicketSummary>> {
    let mut out = Vec::with_capacity(thresholds_pct.len() * 2);
    for &th in thresholds_pct {
        let policy = ThresholdPolicy::new(th)?;
        for resource in Resource::ALL {
            out.push(fleet_ticket_summary(
                fleet,
                resource,
                &policy,
                CULPRIT_COVERAGE,
            )?);
        }
    }
    Ok(out)
}

/// Distribution of tickets across the time of day: fraction of all
/// tickets falling in each of the 24 hours (index 0 = windows starting at
/// midnight). `windows_per_day` is 96 for 15-minute sampling.
///
/// The diurnal shape explains why the paper's one-day resizing window is
/// safe: tickets cluster in business hours, so a day-ahead plan covers a
/// full cycle.
///
/// Callers holding a sampled fleet should prefer
/// [`hourly_ticket_profile_for_interval`], which derives
/// `windows_per_day` from the traces' `interval_minutes` and rejects
/// intervals that cannot bin into whole hours instead of silently
/// misbinning them.
///
/// # Errors
///
/// Returns [`TicketingError::Empty`] for an empty fleet or
/// [`TicketingError::InvalidWindowsPerDay`] if `windows_per_day` is not
/// a positive multiple of 24.
pub fn hourly_ticket_profile(
    fleet: &FleetTrace,
    resource: Resource,
    policy: &ThresholdPolicy,
    windows_per_day: usize,
) -> TicketingResult<[f64; 24]> {
    if fleet.boxes.is_empty() {
        return Err(TicketingError::Empty);
    }
    if windows_per_day == 0 || !windows_per_day.is_multiple_of(24) {
        return Err(TicketingError::InvalidWindowsPerDay(windows_per_day));
    }
    let per_hour = windows_per_day / 24;
    let mut counts = [0usize; 24];
    for b in &fleet.boxes {
        for vm in &b.vms {
            for (t, &u) in vm.usage(resource).iter().enumerate() {
                if policy.violates_usage(u) {
                    counts[(t % windows_per_day) / per_hour] += 1;
                }
            }
        }
    }
    let total: usize = counts.iter().sum();
    if total == 0 {
        return Ok([0.0; 24]);
    }
    let mut out = [0.0; 24];
    for (o, &c) in out.iter_mut().zip(&counts) {
        *o = c as f64 / total as f64;
    }
    Ok(out)
}

/// [`hourly_ticket_profile`] with `windows_per_day` derived from the
/// traces' own `interval_minutes`.
///
/// Deriving `windows_per_day` by hand from an interval that does not
/// divide 60 (e.g. `60 / 25 * 24` for 25-minute sampling) truncates to
/// a value the binning silently accepts but misbins — window 2 of a
/// 25-minute trace starts at minute 50 of hour 0, yet a hand-derived
/// `windows_per_day` of 48 files it under hour 1. This entry point
/// rejects such intervals with a structured error instead.
///
/// # Errors
///
/// Returns [`TicketingError::Empty`] for an empty fleet,
/// [`TicketingError::InvalidInterval`] if any box's `interval_minutes`
/// is zero, does not evenly divide 60, or disagrees with the other
/// boxes' interval.
pub fn hourly_ticket_profile_for_interval(
    fleet: &FleetTrace,
    resource: Resource,
    policy: &ThresholdPolicy,
) -> TicketingResult<[f64; 24]> {
    if fleet.boxes.is_empty() {
        return Err(TicketingError::Empty);
    }
    let interval = fleet.boxes[0].interval_minutes;
    if interval == 0 || !60u32.is_multiple_of(interval) {
        return Err(TicketingError::InvalidInterval(interval));
    }
    for b in &fleet.boxes {
        if b.interval_minutes != interval {
            return Err(TicketingError::InvalidInterval(b.interval_minutes));
        }
    }
    let windows_per_day = 24 * (60 / interval) as usize;
    hourly_ticket_profile(fleet, resource, policy, windows_per_day)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_tracegen::VmTrace;

    fn make_box(cpu_per_vm: Vec<Vec<f64>>) -> BoxTrace {
        let vms = cpu_per_vm
            .into_iter()
            .enumerate()
            .map(|(i, cpu)| {
                let n = cpu.len();
                VmTrace {
                    name: format!("vm{i}"),
                    cpu_capacity_ghz: 4.0,
                    ram_capacity_gb: 8.0,
                    cpu_usage: cpu,
                    ram_usage: vec![30.0; n],
                }
            })
            .collect();
        BoxTrace {
            name: "b".into(),
            cpu_capacity_ghz: 32.0,
            ram_capacity_gb: 64.0,
            vms,
            interval_minutes: 15,
        }
    }

    #[test]
    fn per_vm_counts_and_total() {
        let b = make_box(vec![
            vec![70.0, 70.0, 10.0], // 2 tickets
            vec![10.0, 10.0, 10.0], // 0
            vec![65.0, 10.0, 10.0], // 1
        ]);
        let s = box_ticket_stats(&b, Resource::Cpu, &ThresholdPolicy::default(), 0.8).unwrap();
        assert_eq!(s.per_vm, vec![2, 0, 1]);
        assert_eq!(s.total, 3);
        assert!(s.has_tickets());
    }

    #[test]
    fn culprit_count_concentrated() {
        // VM0 has 8 of 10 tickets: one culprit covers 80%.
        let mut vm0 = vec![70.0; 8];
        vm0.extend([10.0, 10.0]);
        let mut vm1 = vec![70.0; 2];
        vm1.extend(vec![10.0; 8]);
        let b = make_box(vec![vm0, vm1]);
        let s = box_ticket_stats(&b, Resource::Cpu, &ThresholdPolicy::default(), 0.8).unwrap();
        assert_eq!(s.total, 10);
        assert_eq!(s.culprit_vms, 1);
    }

    #[test]
    fn culprit_count_even_distribution() {
        // 4 VMs with equal tickets: need ceil(0.8*4)=4 of 4 covered by
        // 4 tickets -> 4 VMs... each VM has 1 ticket, target = 4*0.8=3.2 ->
        // ceil 4, so 4 VMs needed.
        let b = make_box(vec![
            vec![70.0, 1.0],
            vec![70.0, 1.0],
            vec![70.0, 1.0],
            vec![70.0, 1.0],
        ]);
        let s = box_ticket_stats(&b, Resource::Cpu, &ThresholdPolicy::default(), 0.8).unwrap();
        assert_eq!(s.culprit_vms, 4);
    }

    #[test]
    fn no_tickets_zero_culprits() {
        let b = make_box(vec![vec![10.0; 4], vec![20.0; 4]]);
        let s = box_ticket_stats(&b, Resource::Cpu, &ThresholdPolicy::default(), 0.8).unwrap();
        assert_eq!(s.total, 0);
        assert_eq!(s.culprit_vms, 0);
        assert!(!s.has_tickets());
    }

    #[test]
    fn coverage_validation() {
        let b = make_box(vec![vec![70.0]]);
        assert!(box_ticket_stats(&b, Resource::Cpu, &ThresholdPolicy::default(), 0.0).is_err());
        assert!(box_ticket_stats(&b, Resource::Cpu, &ThresholdPolicy::default(), 1.5).is_err());
        assert!(box_ticket_stats(&b, Resource::Cpu, &ThresholdPolicy::default(), 1.0).is_ok());
    }

    #[test]
    fn fleet_summary_percentages() {
        let fleet = FleetTrace {
            boxes: vec![
                make_box(vec![vec![70.0, 70.0]]), // tickets
                make_box(vec![vec![10.0, 10.0]]), // none
            ],
        };
        let s = fleet_ticket_summary(
            &fleet,
            Resource::Cpu,
            &ThresholdPolicy::default(),
            CULPRIT_COVERAGE,
        )
        .unwrap();
        assert_eq!(s.pct_boxes_with_tickets, 50.0);
        assert_eq!(s.mean_tickets_per_box, 1.0);
        assert_eq!(s.mean_culprit_vms, 1.0);
        let empty = FleetTrace { boxes: vec![] };
        assert!(fleet_ticket_summary(
            &empty,
            Resource::Cpu,
            &ThresholdPolicy::default(),
            CULPRIT_COVERAGE
        )
        .is_err());
    }

    #[test]
    fn hourly_profile_sums_to_one_and_peaks_in_business_hours() {
        use atm_tracegen::{generate_fleet, FleetConfig};
        let fleet = generate_fleet(&FleetConfig {
            num_boxes: 30,
            days: 2,
            gap_probability: 0.0,
            ..FleetConfig::default()
        });
        let profile =
            hourly_ticket_profile(&fleet, Resource::Cpu, &ThresholdPolicy::default(), 96).unwrap();
        let total: f64 = profile.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Business hours (9-17) should carry clearly more tickets than the
        // small hours (0-5).
        let day: f64 = profile[9..18].iter().sum();
        let night: f64 = profile[0..6].iter().sum();
        assert!(day > night, "day {day} vs night {night}");
    }

    #[test]
    fn hourly_profile_validation() {
        let fleet = FleetTrace {
            boxes: vec![make_box(vec![vec![10.0; 96]])],
        };
        let p = ThresholdPolicy::default();
        // No tickets -> all-zero profile.
        let profile = hourly_ticket_profile(&fleet, Resource::Cpu, &p, 96).unwrap();
        assert!(profile.iter().all(|&v| v == 0.0));
        assert_eq!(
            hourly_ticket_profile(&fleet, Resource::Cpu, &p, 95),
            Err(TicketingError::InvalidWindowsPerDay(95))
        );
        assert!(hourly_ticket_profile(&fleet, Resource::Cpu, &p, 0).is_err());
        let empty = FleetTrace { boxes: vec![] };
        assert!(hourly_ticket_profile(&empty, Resource::Cpu, &p, 96).is_err());
    }

    #[test]
    fn interval_entry_point_matches_hand_derived_windows() {
        // 15-minute sampling: 96 windows/day; the derived path must agree
        // with the hand-computed one exactly.
        let fleet = FleetTrace {
            boxes: vec![make_box(vec![vec![70.0; 96], vec![10.0; 96]])],
        };
        let p = ThresholdPolicy::default();
        assert_eq!(
            hourly_ticket_profile_for_interval(&fleet, Resource::Cpu, &p).unwrap(),
            hourly_ticket_profile(&fleet, Resource::Cpu, &p, 96).unwrap()
        );
    }

    #[test]
    fn interval_entry_point_rejects_nondivisor_intervals() {
        // Regression: hand-deriving windows_per_day from a 25-minute
        // interval truncates (60/25 = 2) to 48 — a value the binning
        // accepts but misbins. The interval-aware entry point must
        // reject 7- and 25-minute sampling with a structured error.
        let p = ThresholdPolicy::default();
        for bad in [7u32, 25, 0] {
            let mut b = make_box(vec![vec![70.0; 48]]);
            b.interval_minutes = bad;
            let fleet = FleetTrace { boxes: vec![b] };
            assert_eq!(
                hourly_ticket_profile_for_interval(&fleet, Resource::Cpu, &p),
                Err(TicketingError::InvalidInterval(bad)),
                "interval {bad} must be rejected"
            );
        }
        // Mixed intervals across boxes are rejected too, naming the
        // offending box's interval.
        let a = make_box(vec![vec![70.0; 96]]);
        let mut b = make_box(vec![vec![70.0; 48]]);
        b.interval_minutes = 30;
        let fleet = FleetTrace { boxes: vec![a, b] };
        assert_eq!(
            hourly_ticket_profile_for_interval(&fleet, Resource::Cpu, &p),
            Err(TicketingError::InvalidInterval(30))
        );
    }

    #[test]
    fn characterize_covers_all_combinations() {
        let fleet = FleetTrace {
            boxes: vec![make_box(vec![vec![70.0, 50.0]])],
        };
        let all = characterize_fleet(&fleet, &crate::ticket::PAPER_THRESHOLDS).unwrap();
        assert_eq!(all.len(), 6); // 3 thresholds x 2 resources
                                  // Higher thresholds can only reduce ticket percentages.
        let cpu_60 = &all[0];
        let cpu_80 = &all[4];
        assert_eq!(cpu_60.resource, Resource::Cpu);
        assert!(cpu_60.pct_boxes_with_tickets >= cpu_80.pct_boxes_with_tickets);
    }
}
