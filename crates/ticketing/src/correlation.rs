//! Spatial-dependency characterization — paper Fig. 3.
//!
//! For each box, four families of Pearson correlations are computed over
//! the co-located VMs' usage series:
//!
//! 1. **intra-CPU**: every pair of CPU series;
//! 2. **intra-RAM**: every pair of RAM series;
//! 3. **inter-all**: every CPU×RAM pair across any two VMs;
//! 4. **inter-pair**: CPU×RAM of the *same* VM.
//!
//! The per-box *median* of each family is collected across the fleet into
//! CDFs. The paper reports means of 0.26, 0.24, 0.30 and 0.62 respectively
//! and concludes that inter-resource dependency exceeds intra-resource —
//! the motivation for mixing CPU and RAM signatures in one spatial model.

use atm_timeseries::stats::{median, pearson};
use atm_timeseries::EmpiricalCdf;
use atm_tracegen::{BoxTrace, FleetTrace};
use serde::{Deserialize, Serialize};

use crate::error::{TicketingError, TicketingResult};

/// The four correlation families of paper Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CorrelationKind {
    /// Any pair of CPU usage series.
    IntraCpu,
    /// Any pair of RAM usage series.
    IntraRam,
    /// Any CPU×RAM pair (from any pair of VMs, same VM excluded).
    InterAll,
    /// CPU×RAM of the same VM.
    InterPair,
}

impl CorrelationKind {
    /// All four kinds in the paper's presentation order.
    pub const ALL: [CorrelationKind; 4] = [
        CorrelationKind::IntraCpu,
        CorrelationKind::IntraRam,
        CorrelationKind::InterAll,
        CorrelationKind::InterPair,
    ];
}

/// Pearson correlation over pairwise-complete (both finite) samples,
/// tolerating trace gaps. Returns `None` for degenerate inputs.
pub fn pearson_complete(a: &[f64], b: &[f64]) -> Option<f64> {
    let mut xs = Vec::with_capacity(a.len());
    let mut ys = Vec::with_capacity(b.len());
    for (&x, &y) in a.iter().zip(b) {
        if x.is_finite() && y.is_finite() {
            xs.push(x);
            ys.push(y);
        }
    }
    pearson(&xs, &ys).ok()
}

/// Median correlation of each family for one box. Entries are `None` when
/// the box has too few VMs for the family (e.g. a 1-VM box has no intra
/// pairs) or every pair was degenerate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxCorrelations {
    /// Median intra-CPU ρ.
    pub intra_cpu: Option<f64>,
    /// Median intra-RAM ρ.
    pub intra_ram: Option<f64>,
    /// Median inter-all ρ.
    pub inter_all: Option<f64>,
    /// Median inter-pair ρ.
    pub inter_pair: Option<f64>,
}

impl BoxCorrelations {
    /// The median for a given family.
    pub fn get(&self, kind: CorrelationKind) -> Option<f64> {
        match kind {
            CorrelationKind::IntraCpu => self.intra_cpu,
            CorrelationKind::IntraRam => self.intra_ram,
            CorrelationKind::InterAll => self.inter_all,
            CorrelationKind::InterPair => self.inter_pair,
        }
    }
}

/// Computes the four per-box median correlations (paper Fig. 3 inputs).
pub fn box_correlations(box_trace: &BoxTrace) -> BoxCorrelations {
    let m = box_trace.vm_count();
    let mut intra_cpu = Vec::new();
    let mut intra_ram = Vec::new();
    let mut inter_all = Vec::new();
    let mut inter_pair = Vec::new();

    for i in 0..m {
        let vi = &box_trace.vms[i];
        if let Some(r) = pearson_complete(&vi.cpu_usage, &vi.ram_usage) {
            inter_pair.push(r);
        }
        for j in i + 1..m {
            let vj = &box_trace.vms[j];
            if let Some(r) = pearson_complete(&vi.cpu_usage, &vj.cpu_usage) {
                intra_cpu.push(r);
            }
            if let Some(r) = pearson_complete(&vi.ram_usage, &vj.ram_usage) {
                intra_ram.push(r);
            }
            if let Some(r) = pearson_complete(&vi.cpu_usage, &vj.ram_usage) {
                inter_all.push(r);
            }
            if let Some(r) = pearson_complete(&vi.ram_usage, &vj.cpu_usage) {
                inter_all.push(r);
            }
        }
    }

    BoxCorrelations {
        intra_cpu: median(&intra_cpu).ok(),
        intra_ram: median(&intra_ram).ok(),
        inter_all: median(&inter_all).ok(),
        inter_pair: median(&inter_pair).ok(),
    }
}

/// The fleet-level CDFs of per-box median correlations — exactly what
/// paper Fig. 3 plots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelationCdfs {
    /// CDF of per-box intra-CPU medians.
    pub intra_cpu: EmpiricalCdf,
    /// CDF of per-box intra-RAM medians.
    pub intra_ram: EmpiricalCdf,
    /// CDF of per-box inter-all medians.
    pub inter_all: EmpiricalCdf,
    /// CDF of per-box inter-pair medians.
    pub inter_pair: EmpiricalCdf,
}

impl CorrelationCdfs {
    /// The CDF for a given family.
    pub fn get(&self, kind: CorrelationKind) -> &EmpiricalCdf {
        match kind {
            CorrelationKind::IntraCpu => &self.intra_cpu,
            CorrelationKind::IntraRam => &self.intra_ram,
            CorrelationKind::InterAll => &self.inter_all,
            CorrelationKind::InterPair => &self.inter_pair,
        }
    }

    /// Mean per-box median correlation for a family (the paper quotes
    /// means of 0.26 / 0.24 / 0.30 / 0.62).
    pub fn mean(&self, kind: CorrelationKind) -> f64 {
        let cdf = self.get(kind);
        // Mean of an empirical distribution = average of its samples;
        // reconstruct via quantiles at each sample step.
        let n = cdf.len();
        (1..=n)
            .map(|k| cdf.quantile(k as f64 / n as f64).expect("valid p"))
            .sum::<f64>()
            / n as f64
    }
}

/// Builds the Fig. 3 correlation CDFs over a fleet.
///
/// # Errors
///
/// Returns [`TicketingError::Empty`] if no box yields a defined median for
/// some family.
pub fn fleet_correlation_cdfs(fleet: &FleetTrace) -> TicketingResult<CorrelationCdfs> {
    let per_box: Vec<BoxCorrelations> = fleet.boxes.iter().map(box_correlations).collect();
    let collect = |kind: CorrelationKind| -> TicketingResult<EmpiricalCdf> {
        let samples: Vec<f64> = per_box.iter().filter_map(|b| b.get(kind)).collect();
        EmpiricalCdf::from_samples(samples).map_err(|_| TicketingError::Empty)
    };
    Ok(CorrelationCdfs {
        intra_cpu: collect(CorrelationKind::IntraCpu)?,
        intra_ram: collect(CorrelationKind::IntraRam)?,
        inter_all: collect(CorrelationKind::InterAll)?,
        inter_pair: collect(CorrelationKind::InterPair)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_tracegen::{generate_fleet, FleetConfig, VmTrace};

    #[test]
    fn pearson_complete_skips_nan() {
        let a = [1.0, f64::NAN, 3.0, 4.0, 5.0];
        let b = [2.0, 100.0, 6.0, 8.0, 10.0];
        let r = pearson_complete(&a, &b).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
        assert!(pearson_complete(&[f64::NAN], &[1.0]).is_none());
        assert!(pearson_complete(&[1.0, 1.0], &[2.0, 3.0]).is_none());
    }

    #[test]
    fn single_vm_box_has_only_inter_pair() {
        let b = BoxTrace {
            name: "b".into(),
            cpu_capacity_ghz: 8.0,
            ram_capacity_gb: 16.0,
            vms: vec![VmTrace {
                name: "vm0".into(),
                cpu_capacity_ghz: 2.0,
                ram_capacity_gb: 4.0,
                cpu_usage: vec![10.0, 20.0, 30.0],
                ram_usage: vec![11.0, 19.0, 31.0],
            }],
            interval_minutes: 15,
        };
        let c = box_correlations(&b);
        assert!(c.intra_cpu.is_none());
        assert!(c.intra_ram.is_none());
        assert!(c.inter_all.is_none());
        assert!(c.inter_pair.unwrap() > 0.9);
    }

    #[test]
    fn fleet_cdfs_reproduce_fig3_ordering() {
        // The headline property of Fig. 3: inter-pair correlation clearly
        // dominates the cross-VM families.
        let fleet = generate_fleet(&FleetConfig {
            num_boxes: 40,
            days: 2,
            gap_probability: 0.2,
            ..FleetConfig::default()
        });
        let cdfs = fleet_correlation_cdfs(&fleet).unwrap();
        let pair = cdfs.mean(CorrelationKind::InterPair);
        let cpu = cdfs.mean(CorrelationKind::IntraCpu);
        let ram = cdfs.mean(CorrelationKind::IntraRam);
        assert!(
            pair > cpu + 0.15 && pair > ram + 0.15,
            "inter-pair {pair} must dominate intra-CPU {cpu} / intra-RAM {ram}"
        );
        // All means are positive but below 1 — sane correlation levels.
        for kind in CorrelationKind::ALL {
            let m = cdfs.mean(kind);
            assert!((-0.2..1.0).contains(&m), "{kind:?} mean {m}");
        }
    }

    #[test]
    fn cdfs_are_valid_distributions() {
        let fleet = generate_fleet(&FleetConfig {
            num_boxes: 10,
            days: 1,
            gap_probability: 0.0,
            ..FleetConfig::default()
        });
        let cdfs = fleet_correlation_cdfs(&fleet).unwrap();
        let cdf = cdfs.get(CorrelationKind::InterPair);
        assert_eq!(cdf.eval(1.0), 1.0);
        assert_eq!(cdf.eval(-1.01), 0.0);
    }

    #[test]
    fn empty_fleet_rejected() {
        let fleet = FleetTrace { boxes: vec![] };
        assert!(fleet_correlation_cdfs(&fleet).is_err());
    }
}
