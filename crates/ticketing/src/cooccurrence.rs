//! Ticket co-occurrence analysis.
//!
//! The paper's motivating example (Fig. 1) observes that spatially
//! dependent VMs' *"respective tickets are triggered together"* — which is
//! what makes correlated tickets expensive to root-cause. This module
//! quantifies that: for each pair of co-located VMs, the [Jaccard
//! similarity] of their ticket-window sets, plus box-level burstiness
//! (how many tickets share a window).
//!
//! [Jaccard similarity]: https://en.wikipedia.org/wiki/Jaccard_index

use std::collections::BTreeSet;

use atm_tracegen::{BoxTrace, Resource};
use serde::{Deserialize, Serialize};

use crate::ticket::{ticket_windows, ThresholdPolicy};

/// Co-occurrence statistics for one box and resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoOccurrence {
    /// Jaccard similarity of ticket windows for every VM pair that both
    /// have tickets, as `(vm_a, vm_b, jaccard)`.
    pub pair_jaccard: Vec<(usize, usize, f64)>,
    /// Number of distinct windows with at least one ticket.
    pub ticketed_windows: usize,
    /// Total tickets across VMs.
    pub total_tickets: usize,
}

impl CoOccurrence {
    /// Mean pairwise Jaccard over pairs where both VMs ticket;
    /// `None` when fewer than two VMs have tickets.
    pub fn mean_jaccard(&self) -> Option<f64> {
        if self.pair_jaccard.is_empty() {
            return None;
        }
        Some(
            self.pair_jaccard.iter().map(|&(_, _, j)| j).sum::<f64>()
                / self.pair_jaccard.len() as f64,
        )
    }

    /// Ticket *burstiness*: mean tickets per ticketed window (1.0 = every
    /// ticket alone in its window; higher = tickets arrive together).
    /// `None` when the box never ticketed — a ticketless box has no
    /// burstiness, and folding a `0.0` sentinel into fleet averages
    /// would drag them below the 1.0 floor every real ratio respects.
    pub fn burstiness(&self) -> Option<f64> {
        if self.ticketed_windows == 0 {
            None
        } else {
            Some(self.total_tickets as f64 / self.ticketed_windows as f64)
        }
    }
}

/// Per-VM ticket-window sets for one box and resource — the shared
/// substrate of co-occurrence analysis and storm collapse.
pub fn ticket_window_sets(
    box_trace: &BoxTrace,
    resource: Resource,
    policy: &ThresholdPolicy,
) -> Vec<BTreeSet<usize>> {
    box_trace
        .vms
        .iter()
        .map(|vm| {
            ticket_windows(vm.usage(resource), policy)
                .into_iter()
                .collect()
        })
        .collect()
}

/// Pairwise Jaccard similarity of ticket-window sets, for every VM pair
/// in which both VMs ticket, as `(vm_a, vm_b, jaccard)` with `a < b` in
/// index order.
pub fn pair_jaccard_from_sets(windows_per_vm: &[BTreeSet<usize>]) -> Vec<(usize, usize, f64)> {
    let mut pair_jaccard = Vec::new();
    for a in 0..windows_per_vm.len() {
        if windows_per_vm[a].is_empty() {
            continue;
        }
        for b in a + 1..windows_per_vm.len() {
            if windows_per_vm[b].is_empty() {
                continue;
            }
            let intersection = windows_per_vm[a].intersection(&windows_per_vm[b]).count();
            let union = windows_per_vm[a].union(&windows_per_vm[b]).count();
            pair_jaccard.push((a, b, intersection as f64 / union as f64));
        }
    }
    pair_jaccard
}

/// Computes ticket co-occurrence for one box and resource.
pub fn box_co_occurrence(
    box_trace: &BoxTrace,
    resource: Resource,
    policy: &ThresholdPolicy,
) -> CoOccurrence {
    let windows_per_vm = ticket_window_sets(box_trace, resource, policy);
    let pair_jaccard = pair_jaccard_from_sets(&windows_per_vm);

    let mut all_windows = BTreeSet::new();
    let mut total = 0usize;
    for w in &windows_per_vm {
        total += w.len();
        all_windows.extend(w.iter().copied());
    }

    CoOccurrence {
        pair_jaccard,
        ticketed_windows: all_windows.len(),
        total_tickets: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_tracegen::VmTrace;

    fn make_box(cpu: Vec<Vec<f64>>) -> BoxTrace {
        let vms = cpu
            .into_iter()
            .enumerate()
            .map(|(i, u)| {
                let n = u.len();
                VmTrace {
                    name: format!("vm{i}"),
                    cpu_capacity_ghz: 4.0,
                    ram_capacity_gb: 8.0,
                    cpu_usage: u,
                    ram_usage: vec![10.0; n],
                }
            })
            .collect();
        BoxTrace {
            name: "b".into(),
            cpu_capacity_ghz: 32.0,
            ram_capacity_gb: 64.0,
            vms,
            interval_minutes: 15,
        }
    }

    #[test]
    fn synchronized_tickets_have_jaccard_one() {
        let hot = vec![70.0, 10.0, 70.0, 10.0];
        let b = make_box(vec![hot.clone(), hot]);
        let c = box_co_occurrence(&b, Resource::Cpu, &ThresholdPolicy::default());
        assert_eq!(c.pair_jaccard.len(), 1);
        assert_eq!(c.pair_jaccard[0], (0, 1, 1.0));
        assert_eq!(c.mean_jaccard(), Some(1.0));
        // 4 tickets over 2 windows: burstiness 2.
        assert_eq!(c.total_tickets, 4);
        assert_eq!(c.ticketed_windows, 2);
        assert!((c.burstiness().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_tickets_have_jaccard_zero() {
        let b = make_box(vec![
            vec![70.0, 10.0, 10.0, 10.0],
            vec![10.0, 10.0, 70.0, 10.0],
        ]);
        let c = box_co_occurrence(&b, Resource::Cpu, &ThresholdPolicy::default());
        assert_eq!(c.pair_jaccard[0].2, 0.0);
        assert!((c.burstiness().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ticketless_vms_excluded_from_pairs() {
        let b = make_box(vec![vec![70.0, 70.0], vec![10.0, 10.0], vec![70.0, 10.0]]);
        let c = box_co_occurrence(&b, Resource::Cpu, &ThresholdPolicy::default());
        // Only the (0, 2) pair qualifies.
        assert_eq!(c.pair_jaccard.len(), 1);
        assert_eq!((c.pair_jaccard[0].0, c.pair_jaccard[0].1), (0, 2));
    }

    #[test]
    fn no_tickets_is_empty() {
        let b = make_box(vec![vec![10.0; 4], vec![20.0; 4]]);
        let c = box_co_occurrence(&b, Resource::Cpu, &ThresholdPolicy::default());
        assert!(c.pair_jaccard.is_empty());
        assert_eq!(c.mean_jaccard(), None);
        // Regression: ticketless boxes used to report a 0.0 sentinel,
        // conflating "no data" with a sub-floor real ratio.
        assert_eq!(c.burstiness(), None);
        assert_eq!(c.total_tickets, 0);
    }

    #[test]
    fn coupled_generated_vms_cooccur_more_than_chance() {
        // The generator's shared-factor design should produce visibly
        // correlated ticket timing on hot boxes.
        use atm_tracegen::{generate_fleet, FleetConfig};
        let fleet = generate_fleet(&FleetConfig {
            num_boxes: 30,
            days: 1,
            gap_probability: 0.0,
            hot_cpu_vm_probabilities: [0.0, 0.0, 1.0], // always 2 hot VMs
            ..FleetConfig::default()
        });
        let policy = ThresholdPolicy::default();
        let mut jaccards = Vec::new();
        for b in &fleet.boxes {
            let c = box_co_occurrence(b, Resource::Cpu, &policy);
            if let Some(j) = c.mean_jaccard() {
                jaccards.push(j);
            }
        }
        assert!(!jaccards.is_empty());
        let mean: f64 = jaccards.iter().sum::<f64>() / jaccards.len() as f64;
        assert!(
            mean > 0.05,
            "co-located hot VMs show no ticket co-occurrence: {mean}"
        );
    }
}
