//! Storm collapse: dedupe correlated ticket bursts into incidents.
//!
//! The paper's motivating observation (Fig. 1) is that co-located VMs'
//! tickets "are triggered together" — a single underlying event (a surge
//! on a shared box) fans out into one ticket per VM per window, burying
//! the operator in duplicates. This module collapses the raw ticket
//! stream back into [`TicketStorm`] incidents:
//!
//! 1. VM pairs whose ticket-window sets have Jaccard similarity at or
//!    above [`StormConfig::jaccard_threshold`] (reusing
//!    [`cooccurrence`](crate::cooccurrence) pairs) are unioned into
//!    correlated groups;
//! 2. each group's `(window, vm)` ticket events are merged in window
//!    order and split wherever consecutive ticketed windows are more
//!    than [`StormConfig::max_gap_windows`] apart.
//!
//! Every raw ticket lands in exactly one storm, so the collapse ratio
//! `raw_tickets / incidents` measures how much duplicate volume the
//! operator is spared. All orderings are index-based and deterministic.

use std::collections::BTreeSet;

use atm_tracegen::{BoxTrace, Resource};
use serde::{Deserialize, Serialize};

use crate::cooccurrence::{pair_jaccard_from_sets, ticket_window_sets};
use crate::error::{TicketingError, TicketingResult};
use crate::ticket::ThresholdPolicy;

/// Configuration for storm collapse.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StormConfig {
    /// Minimum pairwise Jaccard similarity of two VMs' ticket-window
    /// sets for their tickets to be considered the same storm.
    pub jaccard_threshold: f64,
    /// Maximum number of quiet windows between two ticketed windows of
    /// the same group before the storm is split in two. `0` requires
    /// consecutive windows.
    pub max_gap_windows: usize,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            jaccard_threshold: 0.5,
            max_gap_windows: 1,
        }
    }
}

impl StormConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TicketingError::InvalidCoverage`] unless
    /// `jaccard_threshold` lies in `[0, 1]`.
    pub fn validate(&self) -> TicketingResult<()> {
        if !(self.jaccard_threshold >= 0.0 && self.jaccard_threshold <= 1.0) {
            return Err(TicketingError::InvalidCoverage(self.jaccard_threshold));
        }
        Ok(())
    }
}

/// One deduplicated incident: a maximal run of correlated tickets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TicketStorm {
    /// Sorted, distinct indices of the VMs that ticketed in this storm.
    pub vms: Vec<usize>,
    /// First ticketed window of the storm (inclusive).
    pub start_window: usize,
    /// Last ticketed window of the storm (inclusive).
    pub end_window: usize,
    /// Raw `(vm, window)` tickets collapsed into this storm (≥ 1).
    pub tickets: usize,
}

/// Storm-collapse outcome for one box and resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StormReport {
    /// Deduplicated incidents, ordered by `(start_window, first vm)`.
    pub storms: Vec<TicketStorm>,
    /// Total raw tickets before collapsing.
    pub raw_tickets: usize,
    /// Number of correlated VM groups that ticketed (a group may spawn
    /// several storms when its bursts are separated in time).
    pub correlated_groups: usize,
}

impl StormReport {
    /// Number of deduplicated incidents.
    pub fn incidents(&self) -> usize {
        self.storms.len()
    }

    /// Raw tickets per incident (≥ 1.0); `None` when the box never
    /// ticketed — like
    /// [`burstiness`](crate::cooccurrence::CoOccurrence::burstiness),
    /// a ticketless box has no ratio to report.
    pub fn collapse_ratio(&self) -> Option<f64> {
        if self.storms.is_empty() {
            None
        } else {
            Some(self.raw_tickets as f64 / self.storms.len() as f64)
        }
    }

    /// The fleet-aggregable digest of this report.
    pub fn summary(&self) -> StormSummary {
        StormSummary {
            raw_tickets: self.raw_tickets,
            incidents: self.storms.len(),
            multi_vm_storms: self.storms.iter().filter(|s| s.vms.len() > 1).count(),
            max_storm_tickets: self.storms.iter().map(|s| s.tickets).max().unwrap_or(0),
        }
    }
}

/// Saturating, commutative storm digest — fleet runners fold these in
/// arbitrary order, so `merge` must commute (every field saturates or
/// maxes independently).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StormSummary {
    /// Total raw tickets before collapsing.
    pub raw_tickets: usize,
    /// Total deduplicated incidents.
    pub incidents: usize,
    /// Incidents spanning more than one VM.
    pub multi_vm_storms: usize,
    /// Largest single incident, in raw tickets.
    pub max_storm_tickets: usize,
}

impl StormSummary {
    /// Folds another summary into this one.
    pub fn merge(&mut self, other: &StormSummary) {
        self.raw_tickets = self.raw_tickets.saturating_add(other.raw_tickets);
        self.incidents = self.incidents.saturating_add(other.incidents);
        self.multi_vm_storms = self.multi_vm_storms.saturating_add(other.multi_vm_storms);
        self.max_storm_tickets = self.max_storm_tickets.max(other.max_storm_tickets);
    }

    /// Raw tickets per incident across the fold; `None` when nothing
    /// ticketed.
    pub fn collapse_ratio(&self) -> Option<f64> {
        if self.incidents == 0 {
            None
        } else {
            Some(self.raw_tickets as f64 / self.incidents as f64)
        }
    }
}

/// Collapses one box's tickets on `resource` into storms.
///
/// # Errors
///
/// Returns [`TicketingError::InvalidCoverage`] if `config` is invalid.
pub fn collapse_storms(
    box_trace: &BoxTrace,
    resource: Resource,
    policy: &ThresholdPolicy,
    config: &StormConfig,
) -> TicketingResult<StormReport> {
    let sets = ticket_window_sets(box_trace, resource, policy);
    collapse_from_sets(&sets, config)
}

/// Collapses pre-computed per-VM ticket-window sets into storms — the
/// allocation-light entry point the streamed pipeline uses.
///
/// # Errors
///
/// Returns [`TicketingError::InvalidCoverage`] if `config` is invalid.
pub fn collapse_from_sets(
    windows_per_vm: &[BTreeSet<usize>],
    config: &StormConfig,
) -> TicketingResult<StormReport> {
    config.validate()?;

    // Union-find over VM indices: a qualifying Jaccard pair puts both
    // VMs' tickets in the same correlated group.
    let n = windows_per_vm.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for (a, b, j) in pair_jaccard_from_sets(windows_per_vm) {
        if j >= config.jaccard_threshold {
            let ra = find(&mut parent, a);
            let rb = find(&mut parent, b);
            if ra != rb {
                // Smaller root wins so group identity is index-stable.
                parent[ra.max(rb)] = ra.min(rb);
            }
        }
    }

    // Gather each group's (window, vm) events in ascending VM order so
    // group enumeration — and therefore storm order — is deterministic.
    let mut groups: Vec<(usize, Vec<(usize, usize)>)> = Vec::new();
    for vm in 0..n {
        if windows_per_vm[vm].is_empty() {
            continue;
        }
        let root = find(&mut parent, vm);
        let slot = match groups.iter().position(|(r, _)| *r == root) {
            Some(i) => i,
            None => {
                groups.push((root, Vec::new()));
                groups.len() - 1
            }
        };
        groups[slot]
            .1
            .extend(windows_per_vm[vm].iter().map(|&w| (w, vm)));
    }

    let correlated_groups = groups.len();
    let mut raw_tickets = 0usize;
    let mut storms = Vec::new();
    for (_, mut events) in groups {
        events.sort_unstable();
        raw_tickets += events.len();
        let mut start = 0usize;
        for i in 1..=events.len() {
            let split = i == events.len() || {
                let gap = events[i].0 - events[i - 1].0;
                gap > config.max_gap_windows + 1
            };
            if split {
                let run = &events[start..i];
                let mut vms: Vec<usize> = run.iter().map(|&(_, vm)| vm).collect();
                vms.sort_unstable();
                vms.dedup();
                storms.push(TicketStorm {
                    vms,
                    start_window: run[0].0,
                    end_window: run[run.len() - 1].0,
                    tickets: run.len(),
                });
                start = i;
            }
        }
    }
    storms.sort_by(|a, b| {
        (a.start_window, a.end_window, a.vms[0]).cmp(&(b.start_window, b.end_window, b.vms[0]))
    });

    Ok(StormReport {
        storms,
        raw_tickets,
        correlated_groups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sets(raw: &[&[usize]]) -> Vec<BTreeSet<usize>> {
        raw.iter().map(|s| s.iter().copied().collect()).collect()
    }

    #[test]
    fn invalid_config_rejected() {
        let bad = StormConfig {
            jaccard_threshold: 1.5,
            max_gap_windows: 0,
        };
        assert!(collapse_from_sets(&sets(&[&[0]]), &bad).is_err());
        assert!(StormConfig {
            jaccard_threshold: f64::NAN,
            max_gap_windows: 0
        }
        .validate()
        .is_err());
        assert!(StormConfig::default().validate().is_ok());
    }

    #[test]
    fn synchronized_vms_collapse_into_one_storm() {
        // Two VMs ticketing in the same windows: Jaccard 1 ≥ 0.5, one
        // group; windows 3,4,5 are one run → a single 6-ticket storm.
        let report =
            collapse_from_sets(&sets(&[&[3, 4, 5], &[3, 4, 5]]), &StormConfig::default()).unwrap();
        assert_eq!(report.raw_tickets, 6);
        assert_eq!(report.incidents(), 1);
        assert_eq!(report.correlated_groups, 1);
        let s = &report.storms[0];
        assert_eq!((s.start_window, s.end_window, s.tickets), (3, 5, 6));
        assert_eq!(s.vms, vec![0, 1]);
        assert_eq!(report.collapse_ratio(), Some(6.0));
    }

    #[test]
    fn disjoint_vms_stay_separate_storms() {
        // Jaccard 0 < threshold: two singleton groups, two storms.
        let report =
            collapse_from_sets(&sets(&[&[0, 1], &[10, 11]]), &StormConfig::default()).unwrap();
        assert_eq!(report.incidents(), 2);
        assert_eq!(report.correlated_groups, 2);
        assert!(report.storms.iter().all(|s| s.vms.len() == 1));
        assert_eq!(report.collapse_ratio(), Some(2.0));
    }

    #[test]
    fn gap_splits_a_group_into_two_storms() {
        // One VM, quiet stretch of 3 windows > max_gap 1 → two storms.
        let cfg = StormConfig::default();
        let report = collapse_from_sets(&sets(&[&[0, 1, 2, 6, 7]]), &cfg).unwrap();
        assert_eq!(report.incidents(), 2);
        assert_eq!(report.storms[0].tickets, 3);
        assert_eq!(report.storms[1].tickets, 2);
        // max_gap 1 means one quiet window between tickets still chains:
        // 0,2,4 is a single storm.
        let chained = collapse_from_sets(&sets(&[&[0, 2, 4]]), &cfg).unwrap();
        assert_eq!(chained.incidents(), 1);
        // max_gap 0 requires consecutive windows.
        let strict = StormConfig {
            max_gap_windows: 0,
            ..cfg
        };
        let split = collapse_from_sets(&sets(&[&[0, 2, 4]]), &strict).unwrap();
        assert_eq!(split.incidents(), 3);
    }

    #[test]
    fn ticketless_box_has_no_storms() {
        let report = collapse_from_sets(&sets(&[&[], &[]]), &StormConfig::default()).unwrap();
        assert_eq!(report.incidents(), 0);
        assert_eq!(report.raw_tickets, 0);
        assert_eq!(report.collapse_ratio(), None);
        assert_eq!(report.summary(), StormSummary::default());
    }

    #[test]
    fn transitive_correlation_unions_across_pairs() {
        // A~B and B~C qualify but A~C alone would not: union-find still
        // puts all three in one group (storms chain through B).
        let a: &[usize] = &[0, 1, 2, 3];
        let b: &[usize] = &[2, 3, 4, 5];
        let c: &[usize] = &[4, 5, 6, 7];
        let cfg = StormConfig {
            jaccard_threshold: 0.3,
            max_gap_windows: 1,
        };
        let report = collapse_from_sets(&sets(&[a, b, c]), &cfg).unwrap();
        assert_eq!(report.correlated_groups, 1);
        assert_eq!(report.incidents(), 1);
        assert_eq!(report.storms[0].vms, vec![0, 1, 2]);
    }

    #[test]
    fn summary_folds_reports() {
        let r1 = collapse_from_sets(&sets(&[&[0, 1], &[0, 1]]), &StormConfig::default()).unwrap();
        let r2 = collapse_from_sets(&sets(&[&[9]]), &StormConfig::default()).unwrap();
        let mut total = r1.summary();
        total.merge(&r2.summary());
        assert_eq!(total.raw_tickets, 5);
        assert_eq!(total.incidents, 2);
        assert_eq!(total.multi_vm_storms, 1);
        assert_eq!(total.max_storm_tickets, 4);
        assert_eq!(total.collapse_ratio(), Some(2.5));
    }
}
