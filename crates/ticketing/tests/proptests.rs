//! Property-based tests for ticket counting and characterization.

use atm_ticketing::characterize::box_ticket_stats;
use atm_ticketing::ticket::{count_demand_tickets, count_usage_tickets, ticket_windows};
use atm_ticketing::ThresholdPolicy;
use atm_tracegen::{BoxTrace, Resource, VmTrace};
use proptest::prelude::*;

fn usage_series() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..130.0, 1..96)
}

fn make_box(cpu: Vec<Vec<f64>>) -> BoxTrace {
    let vms = cpu
        .into_iter()
        .enumerate()
        .map(|(i, u)| {
            let n = u.len();
            VmTrace {
                name: format!("vm{i}"),
                cpu_capacity_ghz: 4.0,
                ram_capacity_gb: 8.0,
                cpu_usage: u,
                ram_usage: vec![10.0; n],
            }
        })
        .collect();
    BoxTrace {
        name: "b".into(),
        cpu_capacity_ghz: 64.0,
        ram_capacity_gb: 128.0,
        vms,
        interval_minutes: 15,
    }
}

/// Proptest case count: `default`, rescaled by `ATM_PROPTEST_CASES`
/// relative to proptest's own default of 256 (the nightly CI deep run
/// sets 1024, i.e. 4x cases for every suite).
fn proptest_cases(default: u32) -> u32 {
    match std::env::var("ATM_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        Some(cases) => (u64::from(default) * cases).div_ceil(256).max(1) as u32,
        None => default,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases(256)))]
    /// Ticket counts are monotone non-increasing in the threshold.
    #[test]
    fn tickets_monotone_in_threshold(usage in usage_series()) {
        let mut last = usize::MAX;
        for th in [30.0, 50.0, 60.0, 70.0, 80.0, 95.0] {
            let p = ThresholdPolicy::new(th).unwrap();
            let c = count_usage_tickets(&usage, &p);
            prop_assert!(c <= last);
            last = c;
        }
    }

    /// `ticket_windows` agrees with `count_usage_tickets` and every
    /// listed window actually violates.
    #[test]
    fn windows_match_count(usage in usage_series(), th in 10.0f64..95.0) {
        let p = ThresholdPolicy::new(th).unwrap();
        let wins = ticket_windows(&usage, &p);
        prop_assert_eq!(wins.len(), count_usage_tickets(&usage, &p));
        for &w in &wins {
            prop_assert!(usage[w] > th);
        }
        // Windows are strictly increasing.
        prop_assert!(wins.windows(2).all(|w| w[0] < w[1]));
    }

    /// Usage-based and demand-based counting agree for any capacity.
    #[test]
    fn usage_demand_equivalence(usage in usage_series(), cap in 0.5f64..64.0) {
        let p = ThresholdPolicy::new(60.0).unwrap();
        let demand: Vec<f64> = usage.iter().map(|u| u / 100.0 * cap).collect();
        prop_assert_eq!(
            count_usage_tickets(&usage, &p),
            count_demand_tickets(&demand, cap, &p).unwrap()
        );
    }

    /// Per-box stats: per-VM counts sum to the total; culprit count is
    /// between 1 and the number of ticketing VMs (when tickets exist) and
    /// is monotone non-increasing in the coverage requirement's
    /// complement (lower coverage -> fewer culprits needed).
    #[test]
    fn culprit_counts_consistent(series in prop::collection::vec(usage_series(), 1..6)) {
        // Equalize lengths.
        let len = series.iter().map(Vec::len).min().unwrap();
        let series: Vec<Vec<f64>> = series.into_iter().map(|s| s[..len].to_vec()).collect();
        let b = make_box(series);
        let p = ThresholdPolicy::new(60.0).unwrap();
        let full = box_ticket_stats(&b, Resource::Cpu, &p, 0.8).unwrap();
        prop_assert_eq!(full.per_vm.iter().sum::<usize>(), full.total);
        if full.total > 0 {
            let ticketing_vms = full.per_vm.iter().filter(|&&c| c > 0).count();
            prop_assert!(full.culprit_vms >= 1 && full.culprit_vms <= ticketing_vms);
            let half = box_ticket_stats(&b, Resource::Cpu, &p, 0.4).unwrap();
            prop_assert!(half.culprit_vms <= full.culprit_vms);
            let all = box_ticket_stats(&b, Resource::Cpu, &p, 1.0).unwrap();
            prop_assert!(all.culprit_vms >= full.culprit_vms);
            prop_assert_eq!(all.culprit_vms, ticketing_vms);
        } else {
            prop_assert_eq!(full.culprit_vms, 0);
        }
    }
}
