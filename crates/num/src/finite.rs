//! Finite-input entry guards.
//!
//! Public solver APIs reject NaN/infinite inputs with a structured error
//! *at the boundary* instead of panicking (or silently misbehaving)
//! somewhere inside a sort. [`NonFinite`] carries the offending index and
//! value; callers map it into their own error enums
//! (`ResizeError`, `SeriesError`, `StatsError`).

use std::error::Error;
use std::fmt;

/// A non-finite value found where only finite floats are allowed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonFinite {
    /// Index of the offending value in the checked slice.
    pub index: usize,
    /// The offending value (NaN, `+∞`, or `-∞`).
    pub value: f64,
}

impl fmt::Display for NonFinite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "non-finite value {} at index {}", self.value, self.index)
    }
}

impl Error for NonFinite {}

/// First non-finite value in a slice, if any.
pub fn first_non_finite(xs: &[f64]) -> Option<(usize, f64)> {
    xs.iter()
        .enumerate()
        .find(|(_, v)| !v.is_finite())
        .map(|(i, &v)| (i, v))
}

/// Checks that every value in `xs` is finite.
///
/// # Errors
///
/// Returns [`NonFinite`] for the first NaN or infinity encountered.
pub fn ensure_finite(xs: &[f64]) -> Result<(), NonFinite> {
    match first_non_finite(xs) {
        None => Ok(()),
        Some((index, value)) => Err(NonFinite { index, value }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_finite_including_denormals() {
        assert!(ensure_finite(&[]).is_ok());
        assert!(ensure_finite(&[0.0, -0.0, 5e-324, f64::MAX, f64::MIN]).is_ok());
    }

    #[test]
    fn reports_first_offender() {
        let e = ensure_finite(&[1.0, f64::INFINITY, f64::NAN]).unwrap_err();
        assert_eq!(e.index, 1);
        assert_eq!(e.value, f64::INFINITY);
        assert!(e.to_string().contains("index 1"));
        let e = ensure_finite(&[f64::NAN]).unwrap_err();
        assert_eq!(e.index, 0);
        assert!(e.value.is_nan());
        assert_eq!(first_non_finite(&[1.0, 2.0]), None);
    }
}
