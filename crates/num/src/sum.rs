//! Neumaier-compensated summation.
//!
//! The oracle harness needs a *reference* accumulation whose rounding
//! error is O(1) ulp regardless of length or cancellation, so that the
//! plain `f64` reductions in `atm-stats` (gram matrices, R², means) can
//! be differentially checked on ill-conditioned inputs. Neumaier's
//! variant of Kahan summation also handles the case where the incoming
//! term is larger than the running sum, which Kahan's original loses.

/// A running Neumaier-compensated sum.
///
/// ```
/// use atm_num::NeumaierSum;
///
/// let mut s = NeumaierSum::new();
/// s.add(1e16);
/// s.add(1.0);
/// s.add(-1e16);
/// assert_eq!(s.value(), 1.0); // plain f64 summation would return 0.0
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NeumaierSum {
    sum: f64,
    compensation: f64,
}

impl NeumaierSum {
    /// A fresh zero sum.
    pub fn new() -> Self {
        NeumaierSum::default()
    }

    /// Adds one term.
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

/// Compensated sum of an iterator of terms.
pub fn sum_compensated(xs: impl IntoIterator<Item = f64>) -> f64 {
    let mut s = NeumaierSum::new();
    for x in xs {
        s.add(x);
    }
    s.value()
}

/// Compensated dot product `Σ aᵢ·bᵢ`.
///
/// The individual products are formed in plain `f64` (no two-product
/// splitting); compensation targets the accumulation, which is where the
/// long-series cancellation error in the stats paths lives.
///
/// # Panics
///
/// Panics if the slices have different lengths (programmer error, same
/// contract as `iter::zip` misuse elsewhere in the workspace).
pub fn dot_compensated(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product of unequal lengths");
    sum_compensated(a.iter().zip(b).map(|(&x, &y)| x * y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_cancelled_small_term() {
        assert_eq!(sum_compensated([1e16, 1.0, -1e16]), 1.0);
        let plain: f64 = [1e16, 1.0, -1e16].iter().sum();
        assert_eq!(plain, 0.0, "plain summation loses the small term");
    }

    #[test]
    fn handles_term_larger_than_sum() {
        // The case Kahan's original algorithm gets wrong.
        assert_eq!(sum_compensated([1.0, 1e100, 1.0, -1e100]), 2.0);
    }

    #[test]
    fn matches_exact_on_benign_input() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(sum_compensated(xs.iter().copied()), 5050.0);
        assert_eq!(sum_compensated([0.0; 0]), 0.0);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot_compensated(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        // Catastrophic cancellation across products.
        let a = [1e8, 1.0, -1e8];
        let b = [1e8, 1.0, 1e8];
        assert_eq!(dot_compensated(&a, &b), 1.0);
    }

    #[test]
    #[should_panic(expected = "unequal lengths")]
    fn dot_rejects_length_mismatch() {
        dot_compensated(&[1.0], &[1.0, 2.0]);
    }
}
