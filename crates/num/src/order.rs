//! Total-order sorting and extrema for `f64` slices.
//!
//! All helpers order by [`f64::total_cmp`], which is a true total order:
//! it never panics, is transitive even with NaN present, and places
//! `-NaN` before `-∞` and `+NaN` after `+∞`. `-0.0` sorts before `+0.0`,
//! which is what makes results byte-identical across runs even when the
//! two zeros are numerically equal.

/// Sorts a slice ascending in the IEEE 754 total order.
///
/// Unlike `sort_by(|a, b| a.partial_cmp(b).unwrap())` this never panics;
/// unlike `unwrap_or(Equal)` the comparator stays transitive, so the
/// result is a deterministic permutation regardless of NaN placement.
pub fn sort_floats(xs: &mut [f64]) {
    xs.sort_by(f64::total_cmp);
}

/// Sorts a slice descending in the IEEE 754 total order (`+NaN` first is
/// *not* the case — descending means `+NaN`, `+∞`, …, `-∞`, `-NaN`).
pub fn sort_floats_desc(xs: &mut [f64]) {
    xs.sort_by(|a, b| b.total_cmp(a));
}

/// Maximum of a slice under the total order (`None` for an empty slice).
///
/// With NaN present the result is `+NaN` if one exists (it is the total
/// order's top element); callers that want "largest finite" should filter
/// or guard with [`crate::finite::ensure_finite`] first.
pub fn total_max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().max_by(f64::total_cmp)
}

/// Minimum of a slice under the total order (`None` for an empty slice).
pub fn total_min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().min_by(f64::total_cmp)
}

/// Indices that sort `xs` ascending under the total order.
///
/// The underlying sort is stable, so tied values (including exact
/// duplicates) keep their original relative index order — the
/// deterministic tie-break rule used by stepwise selection and ranking.
pub fn argsort(xs: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_plain_values() {
        let mut xs = vec![3.0, -1.0, 2.0, -0.0, 0.0];
        sort_floats(&mut xs);
        assert_eq!(xs, vec![-1.0, -0.0, 0.0, 2.0, 3.0]);
        // -0.0 really sorts before +0.0 in the total order.
        assert!(xs[1].is_sign_negative() && !xs[2].is_sign_negative());
        sort_floats_desc(&mut xs);
        assert_eq!(xs, vec![3.0, 2.0, 0.0, -0.0, -1.0]);
    }

    #[test]
    fn nan_sorts_to_the_edges_without_panicking() {
        let mut xs = vec![f64::NAN, 1.0, f64::NEG_INFINITY, -f64::NAN, 2.0];
        sort_floats(&mut xs);
        assert!(xs[0].is_nan() && xs[0].is_sign_negative());
        assert_eq!(xs[1], f64::NEG_INFINITY);
        assert_eq!(&xs[2..4], &[1.0, 2.0]);
        assert!(xs[4].is_nan() && xs[4].is_sign_positive());
    }

    #[test]
    fn extrema() {
        assert_eq!(total_max(&[1.0, 5.0, -2.0]), Some(5.0));
        assert_eq!(total_min(&[1.0, 5.0, -2.0]), Some(-2.0));
        assert_eq!(total_max(&[]), None);
        assert!(total_max(&[1.0, f64::NAN]).unwrap().is_nan());
        assert_eq!(total_min(&[1.0, f64::NAN]), Some(1.0));
        // Denormals order correctly.
        assert_eq!(
            total_min(&[f64::MIN_POSITIVE, 5e-324]).unwrap(),
            5e-324,
            "subnormal below smallest normal"
        );
    }

    #[test]
    fn argsort_is_stable_on_ties() {
        let xs = [2.0, 1.0, 2.0, 1.0, 2.0];
        assert_eq!(argsort(&xs), vec![1, 3, 0, 2, 4]);
    }

    #[test]
    fn sort_is_deterministic_for_any_input_order() {
        // A non-transitive comparator (the old unwrap_or(Equal) idiom)
        // can yield different permutations for different input orders;
        // total_cmp cannot.
        let a = vec![1.0, f64::NAN, 0.5, f64::INFINITY, 0.5];
        let mut fwd = a.clone();
        let mut rev: Vec<f64> = a.into_iter().rev().collect();
        sort_floats(&mut fwd);
        sort_floats(&mut rev);
        assert_eq!(
            fwd.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            rev.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
