//! NaN-safe numeric primitives shared by every ATM crate that orders or
//! accumulates floats.
//!
//! The solver stack's determinism contracts (checkpoint byte-identity,
//! `ATM_THREADS`-invariant allocations) forbid two failure modes that
//! `partial_cmp(..).unwrap()` / `unwrap_or(Equal)` orderings allow:
//!
//! 1. **panics mid-solve** when a NaN reaches a comparator, and
//! 2. **silent, input-order-dependent reordering** when ties (or NaNs)
//!    are collapsed to `Ordering::Equal`, which also makes the comparator
//!    non-transitive — undefined behaviour for `sort_by` in the sense
//!    that the sort may panic or produce an arbitrary permutation.
//!
//! This crate provides the replacements: total-order sorts and extrema
//! ([`order`]), finite-input entry guards with structured errors
//! ([`finite`]), debug-mode NaN-poisoning assertions
//! ([`debug_assert_finite!`]), and Neumaier-compensated summation for
//! high-precision reference paths ([`sum`]).
//!
//! The total order used everywhere is [`f64::total_cmp`] (IEEE 754
//! `totalOrder`): `-NaN < -∞ < … < -0 < +0 < … < +∞ < +NaN`. Callers that
//! must never see NaN gate their public API with [`finite::ensure_finite`]
//! instead of relying on comparator panics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod finite;
pub mod order;
pub mod sum;

pub use finite::{ensure_finite, first_non_finite, NonFinite};
pub use order::{argsort, sort_floats, sort_floats_desc, total_max, total_min};
pub use sum::{dot_compensated, sum_compensated, NeumaierSum};

/// Debug-build NaN-poisoning assertion: panics (in debug builds only)
/// with the given context if any value in the slice expression is NaN or
/// infinite. Compiles to nothing in release builds, so hot paths can
/// assert "no NaN escapes this stage" without runtime cost.
///
/// ```
/// let xs = vec![1.0, 2.0];
/// atm_num::debug_assert_finite!(&xs, "candidate capacities");
/// ```
#[macro_export]
macro_rules! debug_assert_finite {
    ($xs:expr, $context:expr) => {
        if cfg!(debug_assertions) {
            if let Some((index, value)) = $crate::finite::first_non_finite($xs) {
                panic!(
                    "NaN poisoning detected in {}: value {} at index {}",
                    $context, value, index
                );
            }
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn macro_accepts_finite_slices() {
        let xs = [1.0, -2.5, 0.0];
        crate::debug_assert_finite!(&xs, "test slice");
    }

    #[test]
    #[should_panic(expected = "NaN poisoning detected in demand window")]
    fn macro_panics_on_nan_in_debug() {
        if !cfg!(debug_assertions) {
            // Release test runs compile the check away; fabricate the
            // panic so the expectation holds in both profiles.
            panic!("NaN poisoning detected in demand window (release stub)");
        }
        let xs = [1.0, f64::NAN];
        crate::debug_assert_finite!(&xs, "demand window");
    }
}
