//! Structured event log: per-scope sequenced events rendered as JSONL
//! behind a versioned header line.
//!
//! # Schema (version 1)
//!
//! The first line of every event-log file is the header:
//!
//! ```json
//! {"schema":"atm-obs-events","version":1}
//! ```
//!
//! Every following line is one event object:
//!
//! ```json
//! {"scope":"box0","seq":3,"kind":"window","window":3,"status":"ok","tickets_before":9,"tickets_after":2}
//! ```
//!
//! * `scope` — the logical emitter, usually a box name (or `fleet`,
//!   `bench`). Sequence numbers are **per scope** and start at 0.
//! * `seq` — monotonic within its scope; a reader can detect drops or
//!   duplicates per scope without any global ordering assumption.
//! * `kind` — the event type; remaining keys are kind-specific fields in
//!   the order the emitter supplied them.
//!
//! Events deliberately carry **no wall-clock timestamps**: the log is part
//! of the deterministic surface (byte-identical across `ATM_THREADS`), and
//! ordering is logical — [`render_jsonl`](crate::Obs::events_jsonl) sorts
//! by `(scope, seq)` so concurrent boxes interleave identically no matter
//! which worker thread ran them. Wall-clock data belongs in the timing
//! section of the metrics snapshot instead.
//!
//! A torn tail (partial last line after a crash) is recoverable by
//! dropping any trailing line that fails to parse — the same stance the
//! checkpoint journal takes, minus the CRC framing, because the event log
//! is diagnostic rather than recovery-critical.

use std::collections::BTreeMap;

/// Header line identifying the event-log schema, mirroring the versioned
/// `atm-snapshot v1 ...` header of the checkpoint format.
pub const EVENT_LOG_HEADER: &str = "{\"schema\":\"atm-obs-events\",\"version\":1}";

/// A field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// String (escaped on render).
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// One structured event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Logical emitter (box name, `fleet`, `bench`, ...).
    pub scope: String,
    /// Monotonic sequence number within `scope`, starting at 0.
    pub seq: u64,
    /// Event type.
    pub kind: String,
    /// Kind-specific fields, rendered in insertion order.
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// Render the event as one line of JSON (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = format!(
            "{{\"scope\":{},\"seq\":{},\"kind\":{}",
            json_string(&self.scope),
            self.seq,
            json_string(&self.kind)
        );
        for (key, value) in &self.fields {
            out.push(',');
            out.push_str(&json_string(key));
            out.push(':');
            match value {
                FieldValue::U64(v) => out.push_str(&v.to_string()),
                FieldValue::I64(v) => out.push_str(&v.to_string()),
                FieldValue::Str(v) => out.push_str(&json_string(v)),
                FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            }
        }
        out.push('}');
        out
    }
}

/// In-memory event store behind an enabled [`Obs`](crate::Obs) handle.
#[derive(Debug, Default)]
pub(crate) struct EventBook {
    events: Vec<Event>,
    next_seq: BTreeMap<String, u64>,
    /// Number of leading `events` already flushed to a file by
    /// [`Obs::flush_events`](crate::Obs::flush_events).
    pub(crate) flushed: usize,
}

impl EventBook {
    pub(crate) fn push(&mut self, scope: &str, kind: &str, fields: Vec<(String, FieldValue)>) {
        let seq = self.next_seq.entry(scope.to_string()).or_insert(0);
        self.events.push(Event {
            scope: scope.to_string(),
            seq: *seq,
            kind: kind.to_string(),
            fields,
        });
        *seq += 1;
    }

    /// Events sorted by `(scope, seq)` — the deterministic order.
    pub(crate) fn sorted(&self) -> Vec<Event> {
        let mut out = self.events.clone();
        out.sort_by(|a, b| (a.scope.as_str(), a.seq).cmp(&(b.scope.as_str(), b.seq)));
        out
    }

    /// Events in arrival order, used for incremental appends.
    pub(crate) fn arrival(&self) -> &[Event] {
        &self.events
    }
}

/// Escape `s` as a JSON string literal (with surrounding quotes).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_is_per_scope() {
        let mut book = EventBook::default();
        book.push("box1", "window", vec![]);
        book.push("box0", "window", vec![]);
        book.push("box1", "window", vec![]);
        let sorted = book.sorted();
        assert_eq!(
            sorted
                .iter()
                .map(|e| (e.scope.as_str(), e.seq))
                .collect::<Vec<_>>(),
            vec![("box0", 0), ("box1", 0), ("box1", 1)]
        );
    }

    #[test]
    fn render_escapes_strings() {
        let mut book = EventBook::default();
        book.push(
            "box\"0",
            "fail",
            vec![("reason".to_string(), FieldValue::from("tab\there"))],
        );
        assert_eq!(
            book.arrival()[0].render(),
            "{\"scope\":\"box\\\"0\",\"seq\":0,\"kind\":\"fail\",\"reason\":\"tab\\there\"}"
        );
    }

    #[test]
    fn sorted_order_is_thread_interleaving_independent() {
        // Two arrival orders of the same per-scope streams render the
        // same sorted log.
        let mut a = EventBook::default();
        a.push("b", "x", vec![]);
        a.push("a", "x", vec![]);
        a.push("b", "y", vec![]);
        let mut b = EventBook::default();
        b.push("a", "x", vec![]);
        b.push("b", "x", vec![]);
        b.push("b", "y", vec![]);
        assert_eq!(a.sorted(), b.sorted());
    }
}
