//! # atm-obs — zero-dependency observability core for ATM
//!
//! Lightweight spans, metrics, and a structured event log, designed for
//! three constraints the rest of the workspace imposes:
//!
//! 1. **Cheap when disabled.** Every hot path (the DTW kernel loop, the
//!    per-window online loop) calls through an [`Obs`] handle; the
//!    disabled handle is a `None` and each call is a branch on it — no
//!    locks, no allocation, no clock reads.
//! 2. **Deterministic when enabled.** Counters, gauges, fixed-bucket
//!    histograms, and the event log are byte-identical across
//!    `ATM_THREADS=1` vs `4` for the same seeded workload. Wall-clock
//!    timings are segregated into a section that deterministic renders
//!    exclude (see [`metrics`]).
//! 3. **Zero dependencies.** JSON is rendered by hand (the same stance the
//!    bench binary takes) so the crate can be linked anywhere, including
//!    the clustering kernels, without pulling serde into their build.
//!
//! # Example
//!
//! ```
//! use atm_obs::{FieldValue, Obs};
//!
//! let obs = Obs::enabled(true);
//! {
//!     let span = obs.span("pipeline");
//!     let _child = span.child("signature"); // timing "pipeline.signature"
//!     obs.add("clustering.dtw.pairs", 120);
//!     obs.observe("online.tickets_before", 9);
//! }
//! obs.event("box0", "window", vec![("window", FieldValue::from(0u64))]);
//!
//! let snap = obs.metrics_snapshot();
//! assert_eq!(snap.counter("clustering.dtw.pairs"), Some(120));
//! // Deterministic render: counters/gauges/histograms only.
//! assert!(!snap.deterministic_json().contains("timings"));
//! // Event log: versioned header + one JSON line per event.
//! assert!(obs.events_jsonl().starts_with("{\"schema\":\"atm-obs-events\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod metrics;

pub use event::{Event, FieldValue, EVENT_LOG_HEADER};
pub use metrics::{
    HistogramSnapshot, MetricsSnapshot, TimingSnapshot, TIMING_BUCKET_BOUNDS_MS,
    VALUE_BUCKET_BOUNDS,
};

use event::EventBook;
use metrics::Registry;
use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Lock helper that shrugs off poisoning: a panicking box must not take
/// the whole fleet's telemetry down with it (the supervisor catches the
/// panic and restarts the box; its metrics must keep working).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[derive(Debug)]
struct ObsInner {
    record_timings: bool,
    metrics: Mutex<Registry>,
    events: Mutex<EventBook>,
}

/// Handle to an observability context. Cloning is cheap (an `Arc`); all
/// clones feed the same registry and event book, and the handle is
/// `Send + Sync` so fleet worker threads can share it.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// A no-op handle: every call is a cheap branch, nothing is recorded.
    /// This is the default the un-instrumented public APIs use.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled handle. `record_timings` controls whether spans read the
    /// monotonic clock and record wall-clock durations; leave it off when
    /// the snapshot must stay fully deterministic end-to-end.
    pub fn enabled(record_timings: bool) -> Self {
        Self {
            inner: Some(Arc::new(ObsInner {
                record_timings,
                metrics: Mutex::new(Registry::default()),
                events: Mutex::new(EventBook::default()),
            })),
        }
    }

    /// Whether this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether spans on this handle record wall-clock timings.
    pub fn records_timings(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.record_timings)
    }

    /// Add `delta` to the counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            lock(&inner.metrics).add(name, delta);
        }
    }

    /// Set the gauge `name` to `value` (last write wins). Instrumented
    /// code only sets gauges from deterministic contexts — never from
    /// racing worker threads — so snapshots stay thread-count independent.
    pub fn set_gauge(&self, name: &str, value: i64) {
        if let Some(inner) = &self.inner {
            lock(&inner.metrics).set_gauge(name, value);
        }
    }

    /// Record `value` into the fixed-bucket histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            lock(&inner.metrics).observe(name, value);
        }
    }

    /// Record a wall-clock duration (milliseconds) into the timing
    /// histogram `name`. Timings are excluded from deterministic renders.
    pub fn observe_ms(&self, name: &str, ms: f64) {
        if let Some(inner) = &self.inner {
            if inner.record_timings {
                lock(&inner.metrics).observe_ms(name, ms);
            }
        }
    }

    /// Open a root span named `name`. The span records its wall-clock
    /// duration (monotonic clock) into the timing `name` when dropped, if
    /// timings are enabled; child spans extend the path with `.`.
    pub fn span(&self, name: &str) -> Span {
        Span::new(self, name.to_string())
    }

    /// Append a structured event under `scope`. Sequence numbers are
    /// assigned per scope in call order; see [`event`] for the schema.
    pub fn event(&self, scope: &str, kind: &str, fields: Vec<(&str, FieldValue)>) {
        if let Some(inner) = &self.inner {
            let owned = fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            lock(&inner.events).push(scope, kind, owned);
        }
    }

    /// Snapshot the metrics registry (sorted by name). Returns an empty
    /// snapshot for a disabled handle.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => lock(&inner.metrics).snapshot(),
            None => Registry::default().snapshot(),
        }
    }

    /// All events so far, sorted by `(scope, seq)` — the deterministic
    /// order, independent of which worker thread emitted what first.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => lock(&inner.events).sorted(),
            None => Vec::new(),
        }
    }

    /// Render the full event log as JSONL: the versioned header line
    /// followed by one line per event in `(scope, seq)` order, with a
    /// trailing newline.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::from(EVENT_LOG_HEADER);
        out.push('\n');
        for e in self.events() {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }

    /// Write the complete sorted event log to `path` atomically
    /// (temp file + fsync + rename, the `core::fsio::write_atomic` idiom).
    /// Any previous contents are replaced.
    pub fn write_events(&self, path: &Path) -> io::Result<()> {
        write_atomic(path, self.events_jsonl().as_bytes())
    }

    /// Durably append events not yet flushed by a previous call to the
    /// JSONL file at `path`, creating it (header included) if absent.
    /// Returns the number of events appended.
    ///
    /// Appends happen in **arrival order** — for a single sequential box
    /// that coincides with the sorted order, but a multi-threaded fleet
    /// interleaves scopes nondeterministically; use [`write_events`]
    /// (sorted) when byte-stability of the file matters. Each line is
    /// written and fsynced in one batch; a torn tail after a crash is at
    /// most one partial line, which readers drop.
    pub fn flush_events(&self, path: &Path) -> io::Result<usize> {
        let Some(inner) = &self.inner else {
            return Ok(0);
        };
        // Render the pending chunk under the lock, write it outside.
        let (chunk, appended, new_file) = {
            let mut book = lock(&inner.events);
            let pending = &book.arrival()[book.flushed..];
            if pending.is_empty() {
                return Ok(0);
            }
            let new_file = !path.exists();
            let mut chunk = String::new();
            if new_file {
                chunk.push_str(EVENT_LOG_HEADER);
                chunk.push('\n');
            }
            for e in pending {
                chunk.push_str(&e.render());
                chunk.push('\n');
            }
            let appended = pending.len();
            book.flushed += appended;
            (chunk, appended, new_file)
        };
        let _ = new_file;
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(chunk.as_bytes())?;
        file.sync_all()?;
        Ok(appended)
    }
}

/// Atomic full-file write: temp file in the same directory, fsync, rename
/// over the target, best-effort directory sync. Self-contained copy of the
/// `core::fsio::write_atomic` idiom (this crate cannot depend on core).
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = match path.file_name() {
        Some(name) => {
            let mut n = name.to_os_string();
            n.push(".tmp");
            path.with_file_name(n)
        }
        None => return Err(io::Error::other("path has no file name")),
    };
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// A hierarchical span. Records its wall-clock duration into the timing
/// named by its dotted path when dropped (if the handle records timings);
/// on a disabled handle it is a zero-cost placeholder that never reads
/// the clock.
#[derive(Debug)]
pub struct Span {
    inner: Option<Arc<ObsInner>>,
    path: String,
    start: Option<Instant>,
}

impl Span {
    fn new(obs: &Obs, path: String) -> Self {
        let timing = obs
            .inner
            .as_ref()
            .filter(|i| i.record_timings)
            .map(|i| Arc::clone(i));
        Self {
            start: timing.as_ref().map(|_| Instant::now()),
            inner: timing,
            path,
        }
    }

    /// Open a child span; its timing name is `parent.path + "." + name`.
    pub fn child(&self, name: &str) -> Span {
        Span {
            inner: self.inner.clone(),
            path: format!("{}.{}", self.path, name),
            start: self.inner.as_ref().map(|_| Instant::now()),
        }
    }

    /// The dotted timing path this span records under.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let (Some(inner), Some(start)) = (&self.inner, self.start) {
            let ms = start.elapsed().as_secs_f64() * 1e3;
            lock(&inner.metrics).observe_ms(&self.path, ms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::disabled();
        obs.add("c", 1);
        obs.observe("h", 2);
        obs.set_gauge("g", 3);
        obs.event("s", "k", vec![]);
        let _span = obs.span("root");
        let snap = obs.metrics_snapshot();
        assert!(snap.counters.is_empty());
        assert!(obs.events().is_empty());
        assert_eq!(obs.events_jsonl(), format!("{EVENT_LOG_HEADER}\n"));
    }

    #[test]
    fn spans_record_dotted_paths() {
        let obs = Obs::enabled(true);
        {
            let root = obs.span("pipeline");
            let _child = root.child("signature");
        }
        let snap = obs.metrics_snapshot();
        let names: Vec<_> = snap.timings.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["pipeline", "pipeline.signature"]);
    }

    #[test]
    fn timings_off_means_no_clock_reads_recorded() {
        let obs = Obs::enabled(false);
        {
            let _span = obs.span("pipeline");
        }
        obs.observe_ms("manual", 1.0);
        assert!(obs.metrics_snapshot().timings.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::enabled(false);
        let clone = obs.clone();
        clone.add("c", 2);
        obs.add("c", 3);
        assert_eq!(obs.metrics_snapshot().counter("c"), Some(5));
    }

    #[test]
    fn flush_then_write_round_trip() {
        let dir = std::env::temp_dir().join(format!("atm-obs-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let _ = fs::remove_file(&path);

        let obs = Obs::enabled(false);
        obs.event("box0", "window", vec![("window", FieldValue::from(0u64))]);
        assert_eq!(obs.flush_events(&path).unwrap(), 1);
        obs.event("box0", "window", vec![("window", FieldValue::from(1u64))]);
        assert_eq!(obs.flush_events(&path).unwrap(), 1);
        assert_eq!(obs.flush_events(&path).unwrap(), 0);

        // Single sequential scope: incremental appends equal the sorted
        // atomic render byte-for-byte.
        let appended = fs::read_to_string(&path).unwrap();
        assert_eq!(appended, obs.events_jsonl());

        let atomic = dir.join("events-atomic.jsonl");
        obs.write_events(&atomic).unwrap();
        assert_eq!(fs::read_to_string(&atomic).unwrap(), appended);
        fs::remove_dir_all(&dir).unwrap();
    }
}
