//! Metrics registry: counters, gauges, and fixed-bucket histograms, plus a
//! segregated wall-clock timing section.
//!
//! # Determinism contract
//!
//! Everything except the [`timings`](MetricsSnapshot::timings) section is
//! **deterministic**: counters and integer histograms are commutative sums,
//! gauges are last-write values that instrumented code only sets from
//! deterministic contexts, and bucket bounds are fixed constants. Running
//! the same seeded workload under `ATM_THREADS=1` and `ATM_THREADS=4` must
//! produce byte-identical [`MetricsSnapshot::deterministic_json`] output —
//! `tests/determinism.rs` in the workspace root enforces this.
//!
//! Wall-clock timings (span durations, `observe_ms`) are inherently
//! machine- and run-dependent, so they live in a separate section that only
//! [`MetricsSnapshot::full_json`] includes. Sinks that must be diffable
//! (golden tests, fleet reports) use the deterministic render; profiling
//! sinks (`OBS_SNAPSHOT.json` from the bench binary) use the full render.

use std::collections::BTreeMap;

/// Fixed upper bounds for value histograms, in a 1–2–5 pattern.
///
/// Values are integer counts (tickets, samples, attempts); a value `v`
/// lands in the first bucket with `v <= bound`, or the overflow bucket.
/// The bounds are a compile-time constant so snapshots from different
/// processes, thread counts, and hosts are always diffable.
pub const VALUE_BUCKET_BOUNDS: &[u64] = &[
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000,
];

/// Fixed upper bounds (milliseconds) for timing histograms.
pub const TIMING_BUCKET_BOUNDS_MS: &[f64] = &[
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0,
];

/// A fixed-bucket histogram over integer values.
#[derive(Debug, Clone)]
pub(crate) struct ValueHistogram {
    /// One count per bound in [`VALUE_BUCKET_BOUNDS`], plus overflow last.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Default for ValueHistogram {
    fn default() -> Self {
        Self {
            buckets: vec![0; VALUE_BUCKET_BOUNDS.len() + 1],
            count: 0,
            sum: 0,
        }
    }
}

impl ValueHistogram {
    fn observe(&mut self, value: u64) {
        let idx = VALUE_BUCKET_BOUNDS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(VALUE_BUCKET_BOUNDS.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
    }
}

/// A fixed-bucket histogram over wall-clock durations (milliseconds).
#[derive(Debug, Clone)]
pub(crate) struct TimingHistogram {
    buckets: Vec<u64>,
    count: u64,
    total_ms: f64,
}

impl Default for TimingHistogram {
    fn default() -> Self {
        Self {
            buckets: vec![0; TIMING_BUCKET_BOUNDS_MS.len() + 1],
            count: 0,
            total_ms: 0.0,
        }
    }
}

impl TimingHistogram {
    fn observe(&mut self, ms: f64) {
        let idx = TIMING_BUCKET_BOUNDS_MS
            .iter()
            .position(|&b| ms <= b)
            .unwrap_or(TIMING_BUCKET_BOUNDS_MS.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.total_ms += ms;
    }
}

/// The in-memory metric store behind an enabled [`Obs`](crate::Obs) handle.
///
/// `BTreeMap` keys keep every render sorted by metric name without an
/// explicit sort pass, which is what makes snapshots byte-stable.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, ValueHistogram>,
    timings: BTreeMap<String, TimingHistogram>,
}

impl Registry {
    pub(crate) fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    pub(crate) fn set_gauge(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_string(), value);
    }

    pub(crate) fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    pub(crate) fn observe_ms(&mut self, name: &str, ms: f64) {
        self.timings
            .entry(name.to_string())
            .or_default()
            .observe(ms);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| HistogramSnapshot {
                    name: k.clone(),
                    count: h.count,
                    sum: h.sum,
                    buckets: labelled_buckets(&h.buckets, VALUE_BUCKET_BOUNDS, |b| b.to_string()),
                })
                .collect(),
            timings: self
                .timings
                .iter()
                .map(|(k, t)| TimingSnapshot {
                    name: k.clone(),
                    count: t.count,
                    total_ms: t.total_ms,
                    buckets: labelled_buckets(&t.buckets, TIMING_BUCKET_BOUNDS_MS, |b| {
                        format!("{b}")
                    }),
                })
                .collect(),
        }
    }
}

/// Keep only non-empty buckets, labelled `le=<bound>` (or `inf` for the
/// overflow bucket) so renders stay compact and fully fixed-format.
fn labelled_buckets<B: Copy>(
    counts: &[u64],
    bounds: &[B],
    label: impl Fn(B) -> String,
) -> Vec<(String, u64)> {
    counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| {
            let l = match bounds.get(i) {
                Some(&b) => format!("le={}", label(b)),
                None => "inf".to_string(),
            };
            (l, c)
        })
        .collect()
}

/// A point-in-time copy of the registry, sorted by metric name.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Last-write gauges, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Fixed-bucket integer histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Wall-clock timing histograms, sorted by name. **Not deterministic**;
    /// excluded from [`deterministic_json`](Self::deterministic_json).
    pub timings: Vec<TimingSnapshot>,
}

/// One integer histogram in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Non-empty buckets as `("le=<bound>" | "inf", count)`.
    pub buckets: Vec<(String, u64)>,
}

/// One timing histogram in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimingSnapshot {
    /// Timing name (usually a span path).
    pub name: String,
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of recorded durations in milliseconds.
    pub total_ms: f64,
    /// Non-empty buckets as `("le=<bound ms>" | "inf", count)`.
    pub buckets: Vec<(String, u64)>,
}

impl MetricsSnapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Render the deterministic sections (counters, gauges, histograms) as
    /// one line of JSON with sorted keys. Byte-identical across thread
    /// counts for the same seeded workload.
    pub fn deterministic_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"atm-obs-metrics\",\"version\":1,");
        self.render_deterministic_sections(&mut out);
        out.push('}');
        out
    }

    /// Render every section including wall-clock timings. **Not**
    /// deterministic; intended for profiling sinks such as the bench
    /// binary's `OBS_SNAPSHOT.json`.
    pub fn full_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"atm-obs-metrics\",\"version\":1,");
        self.render_deterministic_sections(&mut out);
        out.push_str(",\"timings\":{");
        for (i, t) in self.timings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"total_ms\":{:.3},\"buckets\":{}}}",
                crate::event::json_string(&t.name),
                t.count,
                t.total_ms,
                render_buckets(&t.buckets)
            ));
        }
        out.push_str("}}");
        out
    }

    fn render_deterministic_sections(&self, out: &mut String) {
        out.push_str("\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", crate::event::json_string(k), v));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", crate::event::json_string(k), v));
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"buckets\":{}}}",
                crate::event::json_string(&h.name),
                h.count,
                h.sum,
                render_buckets(&h.buckets)
            ));
        }
        out.push('}');
    }
}

fn render_buckets(buckets: &[(String, u64)]) -> String {
    let mut out = String::from("{");
    for (i, (label, count)) in buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", crate::event::json_string(label), count));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_render_sorted_and_stable() {
        let mut r = Registry::default();
        r.add("z.last", 2);
        r.add("a.first", 1);
        r.add("z.last", 3);
        let json = r.snapshot().deterministic_json();
        assert_eq!(
            json,
            "{\"schema\":\"atm-obs-metrics\",\"version\":1,\
             \"counters\":{\"a.first\":1,\"z.last\":5},\
             \"gauges\":{},\"histograms\":{}}"
        );
    }

    #[test]
    fn histogram_bucketing_is_fixed() {
        let mut r = Registry::default();
        for v in [0, 1, 2, 7, 10, 11, 1_000_000] {
            r.observe("tickets", v);
        }
        let snap = r.snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.count, 7);
        assert_eq!(h.sum, 1_000_031);
        // 0 and 1 -> le=1; 2 -> le=2; 7 and 10 -> le=10; 11 -> le=20;
        // 1_000_000 -> inf.
        assert_eq!(
            h.buckets,
            vec![
                ("le=1".to_string(), 2),
                ("le=2".to_string(), 1),
                ("le=10".to_string(), 2),
                ("le=20".to_string(), 1),
                ("inf".to_string(), 1),
            ]
        );
    }

    #[test]
    fn timings_are_excluded_from_deterministic_render() {
        let mut r = Registry::default();
        r.observe_ms("span.pipeline.run_box", 3.25);
        let snap = r.snapshot();
        assert!(!snap.deterministic_json().contains("timings"));
        assert!(snap.full_json().contains("\"timings\""));
        assert!(snap.full_json().contains("span.pipeline.run_box"));
    }

    #[test]
    fn counter_sums_commute() {
        // Merging the same observations in any order yields identical
        // snapshots — the property the parallel fleet relies on.
        let mut a = Registry::default();
        let mut b = Registry::default();
        for v in [3u64, 1, 4, 1, 5] {
            a.add("c", v);
            a.observe("h", v);
        }
        for v in [5u64, 1, 4, 1, 3] {
            b.add("c", v);
            b.observe("h", v);
        }
        assert_eq!(
            a.snapshot().deterministic_json(),
            b.snapshot().deterministic_json()
        );
    }
}
