//! Property-based tests for the forecasting models.

use atm_forecast::ar::ArForecaster;
use atm_forecast::holt_winters::HoltWinters;
use atm_forecast::mlp::{MlpConfig, MlpForecaster};
use atm_forecast::naive::{Drift, LastValue, MeanForecaster, SeasonalNaive};
use atm_forecast::Forecaster;
use proptest::prelude::*;

fn history() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..100.0, 24..120)
}

/// Proptest case count: `default`, rescaled by `ATM_PROPTEST_CASES`
/// relative to proptest's own default of 256 (the nightly CI deep run
/// sets 1024, i.e. 4x cases for every suite).
fn proptest_cases(default: u32) -> u32 {
    match std::env::var("ATM_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        Some(cases) => (u64::from(default) * cases).div_ceil(256).max(1) as u32,
        None => default,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases(256)))]
    /// Every model returns exactly `horizon` finite values once fitted.
    #[test]
    fn forecasts_have_requested_length(h in history(), horizon in 1usize..50) {
        let mut models: Vec<Box<dyn Forecaster>> = vec![
            Box::new(MeanForecaster::new()),
            Box::new(LastValue::new()),
            Box::new(Drift::new()),
            Box::new(SeasonalNaive::new(12)),
            Box::new(ArForecaster::new(4)),
        ];
        for m in &mut models {
            if m.fit(&h).is_ok() {
                let fc = m.forecast(horizon).unwrap();
                prop_assert_eq!(fc.len(), horizon);
                prop_assert!(fc.iter().all(|v| v.is_finite()), "{} NaN", m.name());
            }
        }
    }

    /// Mean/last-value forecasts are constant and inside the history's
    /// value range.
    #[test]
    fn naive_forecasts_within_range(h in history()) {
        let lo = h.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = h.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut mean = MeanForecaster::new();
        mean.fit(&h).unwrap();
        for v in mean.forecast(5).unwrap() {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
        let mut last = LastValue::new();
        last.fit(&h).unwrap();
        let fc = last.forecast(3).unwrap();
        prop_assert!(fc.iter().all(|&v| v == *h.last().unwrap()));
    }

    /// Seasonal-naive is exact on any perfectly periodic series.
    #[test]
    fn seasonal_naive_exact_on_periodic(
        cycle in prop::collection::vec(0.0f64..100.0, 2..16),
        reps in 2usize..6,
        horizon in 1usize..32,
    ) {
        let period = cycle.len();
        let h: Vec<f64> = (0..period * reps).map(|t| cycle[t % period]).collect();
        let mut m = SeasonalNaive::new(period);
        m.fit(&h).unwrap();
        let fc = m.forecast(horizon).unwrap();
        for (i, &v) in fc.iter().enumerate() {
            prop_assert!((v - cycle[(h.len() + i) % period]).abs() < 1e-12);
        }
    }

    /// Holt-Winters forecasts stay finite and track constants exactly.
    #[test]
    fn holt_winters_constant_and_finite(
        c in 1.0f64..80.0,
        h in history(),
        horizon in 1usize..64,
    ) {
        let mut m = HoltWinters::with_period(12);
        m.fit(&vec![c; 48]).unwrap();
        for v in m.forecast(horizon).unwrap() {
            prop_assert!((v - c).abs() < 1e-6);
        }
        let mut m2 = HoltWinters::with_period(12);
        if m2.fit(&h).is_ok() {
            let fc = m2.forecast(horizon).unwrap();
            prop_assert_eq!(fc.len(), horizon);
            prop_assert!(fc.iter().all(|v| v.is_finite()));
        }
    }

    /// AR on a constant series forecasts that constant.
    #[test]
    fn ar_constant_history(c in -50.0f64..50.0, order in 1usize..5, horizon in 1usize..20) {
        let h = vec![c; 40];
        let mut m = ArForecaster::new(order);
        m.fit(&h).unwrap();
        for v in m.forecast(horizon).unwrap() {
            prop_assert!((v - c).abs() < 1e-6);
        }
    }

    /// The MLP is deterministic in its seed and produces finite output on
    /// arbitrary histories.
    #[test]
    fn mlp_deterministic_and_finite(h in history(), seed in 0u64..1000) {
        let cfg = MlpConfig {
            lags: 4,
            seasonal_period: 12,
            hidden: vec![4],
            epochs: 10,
            batch_size: 16,
            learning_rate: 0.02,
            momentum: 0.9,
            validation_fraction: 0.2,
            patience: 3,
            seed,
        };
        let mut a = MlpForecaster::new(cfg.clone());
        let mut b = MlpForecaster::new(cfg);
        if a.fit(&h).is_ok() {
            b.fit(&h).unwrap();
            let fa = a.forecast(8).unwrap();
            let fb = b.forecast(8).unwrap();
            prop_assert_eq!(fa.clone(), fb);
            prop_assert!(fa.iter().all(|v| v.is_finite()));
        }
    }

    /// Refitting replaces state: forecasts reflect the latest history only.
    #[test]
    fn refit_replaces_state(h1 in history(), h2 in history()) {
        let mut m = LastValue::new();
        m.fit(&h1).unwrap();
        m.fit(&h2).unwrap();
        prop_assert_eq!(m.forecast(1).unwrap()[0], *h2.last().unwrap());
    }
}
