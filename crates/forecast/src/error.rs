use std::error::Error;
use std::fmt;

/// Errors produced by forecasting models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ForecastError {
    /// `forecast` was called before a successful `fit`.
    NotFitted,
    /// The training history is too short for the model configuration.
    HistoryTooShort {
        /// Observations required.
        required: usize,
        /// Observations provided.
        actual: usize,
    },
    /// The history is degenerate for this model (e.g. constant where
    /// variance is required).
    Degenerate(&'static str),
    /// A parameter was outside its valid domain.
    InvalidParameter(&'static str),
    /// Training diverged (non-finite loss).
    Diverged,
}

impl fmt::Display for ForecastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForecastError::NotFitted => write!(f, "model has not been fitted"),
            ForecastError::HistoryTooShort { required, actual } => {
                write!(f, "history too short: need {required}, have {actual}")
            }
            ForecastError::Degenerate(what) => write!(f, "degenerate history: {what}"),
            ForecastError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            ForecastError::Diverged => write!(f, "training diverged"),
        }
    }
}

impl Error for ForecastError {}

/// Convenience alias for results in this crate.
pub type ForecastResult<T> = Result<T, ForecastError>;
