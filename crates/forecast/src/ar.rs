//! Autoregressive AR(p) forecasting fit by ordinary least squares.
//!
//! The paper cites ARIMA-class temporal models as the standard approach
//! that *"is not able to capture well bursty behaviors"*; this AR(p)
//! implementation is the reproduction's representative of that class, used
//! as a comparison point against the MLP in temporal-model ablations.

use atm_stats::ols;
use atm_timeseries::window;
use serde::{Deserialize, Serialize};

use crate::error::{ForecastError, ForecastResult};
use crate::Forecaster;

/// AR(p) model: `x[t] = c + Σ φ_k · x[t−k] + ε`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArForecaster {
    order: usize,
    intercept: f64,
    // phi[0] multiplies x[t-1], phi[order-1] multiplies x[t-order].
    phi: Vec<f64>,
    tail: Vec<f64>,
    fitted: bool,
}

impl ArForecaster {
    /// Creates an unfitted AR model of the given order (`p ≥ 1`).
    pub fn new(order: usize) -> Self {
        ArForecaster {
            order,
            intercept: 0.0,
            phi: Vec::new(),
            tail: Vec::new(),
            fitted: false,
        }
    }

    /// The model order `p`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// The fitted AR coefficients (lag-1 first). Empty before fitting.
    pub fn coefficients(&self) -> &[f64] {
        &self.phi
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

impl Forecaster for ArForecaster {
    fn fit(&mut self, history: &[f64]) -> ForecastResult<()> {
        if self.order == 0 {
            return Err(ForecastError::InvalidParameter("order must be >= 1"));
        }
        // Need enough rows for the OLS system: order + 1 parameters.
        let min_len = 2 * self.order + 2;
        if history.len() < min_len {
            return Err(ForecastError::HistoryTooShort {
                required: min_len,
                actual: history.len(),
            });
        }
        // Collinear lag columns (e.g. a pure period-2 signal seen by an
        // AR(2)) make the full-order system singular; retry with smaller
        // effective orders before falling back to a mean model.
        let mut fitted_order = None;
        for order in (1..=self.order).rev() {
            let (inputs, targets) = window::lagged_dataset(history, order)
                .map_err(|_| ForecastError::Degenerate("lagged dataset construction failed"))?;
            match ols::fit(&inputs, &targets, true) {
                Ok(f) => {
                    fitted_order = Some((order, f));
                    break;
                }
                Err(atm_stats::StatsError::Singular) => continue,
                Err(_) => return Err(ForecastError::Degenerate("ols fit failed")),
            }
        }
        let Some((order, fit)) = fitted_order else {
            // Constant history: the mean model is the correct AR limit.
            let mean = history.iter().sum::<f64>() / history.len() as f64;
            self.intercept = mean;
            self.phi = vec![0.0; self.order];
            self.tail = history[history.len() - self.order..].to_vec();
            self.fitted = true;
            return Ok(());
        };
        self.intercept = fit.intercept();
        // lagged_dataset orders inputs oldest-lag-first: inputs[i] =
        // [x[t-order], ..., x[t-1]]; reverse so phi[0] matches lag 1, then
        // zero-pad up to the configured order.
        let mut phi = fit.coefficients().to_vec();
        phi.reverse();
        phi.resize(self.order, 0.0);
        debug_assert!(order <= self.order);
        self.phi = phi;
        self.tail = history[history.len() - self.order..].to_vec();
        self.fitted = true;
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> ForecastResult<Vec<f64>> {
        if !self.fitted {
            return Err(ForecastError::NotFitted);
        }
        if horizon == 0 {
            return Err(ForecastError::InvalidParameter("horizon must be positive"));
        }
        // Iterated one-step forecasts; `recent` holds the latest `order`
        // values, newest last.
        let mut recent = self.tail.clone();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let mut next = self.intercept;
            for (k, &coef) in self.phi.iter().enumerate() {
                next += coef * recent[recent.len() - 1 - k];
            }
            if !next.is_finite() {
                return Err(ForecastError::Diverged);
            }
            out.push(next);
            recent.remove(0);
            recent.push(next);
        }
        Ok(out)
    }

    fn name(&self) -> &str {
        "ar"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_ar1_process() {
        // x[t] = 10 + 0.8 x[t-1], deterministic -> converges to 50.
        let mut xs = vec![0.0];
        for _ in 0..200 {
            let prev = *xs.last().unwrap();
            xs.push(10.0 + 0.8 * prev);
        }
        // Add a tiny deterministic perturbation so the system has full rank.
        for (i, x) in xs.iter_mut().enumerate() {
            *x += ((i * 2654435761) % 1000) as f64 * 1e-6;
        }
        let mut m = ArForecaster::new(1);
        m.fit(&xs).unwrap();
        assert!(
            (m.coefficients()[0] - 0.8).abs() < 0.05,
            "{:?}",
            m.coefficients()
        );
        assert!((m.intercept() - 10.0).abs() < 2.5);
    }

    #[test]
    fn forecast_converges_to_process_mean() {
        let mut xs = vec![20.0];
        for _ in 0..300 {
            let prev = *xs.last().unwrap();
            xs.push(5.0 + 0.5 * prev + ((xs.len() * 7919) % 100) as f64 * 1e-4);
        }
        let mut m = ArForecaster::new(1);
        m.fit(&xs).unwrap();
        let fc = m.forecast(200).unwrap();
        // Long-run mean of x = 5 / (1 - 0.5) = 10.
        assert!((fc.last().unwrap() - 10.0).abs() < 0.5);
    }

    #[test]
    fn captures_period_two_oscillation() {
        let xs: Vec<f64> = (0..100)
            .map(|t| if t % 2 == 0 { 10.0 } else { 30.0 })
            .collect();
        let mut m = ArForecaster::new(2);
        m.fit(&xs).unwrap();
        let fc = m.forecast(4).unwrap();
        // Last history value is 30 (t=99 odd), so forecasts alternate 10,30.
        assert!((fc[0] - 10.0).abs() < 1e-6, "{fc:?}");
        assert!((fc[1] - 30.0).abs() < 1e-6);
        assert!((fc[2] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn constant_history_falls_back_to_mean() {
        let xs = vec![42.0; 50];
        let mut m = ArForecaster::new(3);
        m.fit(&xs).unwrap();
        assert_eq!(m.forecast(5).unwrap(), vec![42.0; 5]);
    }

    #[test]
    fn validation() {
        let mut m = ArForecaster::new(0);
        assert!(m.fit(&[1.0; 10]).is_err());
        let mut m = ArForecaster::new(4);
        assert!(m.fit(&[1.0; 5]).is_err());
        assert_eq!(
            ArForecaster::new(2).forecast(1),
            Err(ForecastError::NotFitted)
        );
        let mut ok = ArForecaster::new(1);
        ok.fit(&[1.0, 2.0, 1.5, 2.5, 1.8, 2.2]).unwrap();
        assert!(ok.forecast(0).is_err());
        assert_eq!(ok.order(), 1);
        assert_eq!(ok.name(), "ar");
    }
}
