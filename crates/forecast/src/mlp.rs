//! A from-scratch multilayer perceptron forecaster.
//!
//! Stand-in for the paper's neural-network temporal model (PRACTISE \[7\]):
//! a fully connected network over lagged observations plus sine/cosine
//! time-of-day features, trained with mini-batch SGD + momentum and early
//! stopping on a held-out, time-ordered validation split. The paper's
//! observation that neural models are accurate but *expensive to train*
//! is reproduced by the Criterion benches comparing MLP training cost to
//! the spatial models' negligible cost.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::{ForecastError, ForecastResult};
use crate::Forecaster;

/// Hyperparameters for [`MlpForecaster`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Number of lagged observations fed to the network.
    pub lags: usize,
    /// Seasonal period for the sin/cos phase features (96 for daily
    /// seasonality at 15-minute sampling); 0 disables them.
    pub seasonal_period: usize,
    /// Hidden layer widths (e.g. `[16, 8]`). Empty means linear regression.
    pub hidden: Vec<usize>,
    /// Maximum training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// SGD momentum coefficient in `[0, 1)`.
    pub momentum: f64,
    /// Fraction of the most recent samples held out for early stopping.
    pub validation_fraction: f64,
    /// Epochs without validation improvement before stopping (0 disables
    /// early stopping).
    pub patience: usize,
    /// RNG seed for weight init and batch shuffling (fully deterministic).
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            lags: 8,
            seasonal_period: 96,
            hidden: vec![16],
            epochs: 200,
            batch_size: 32,
            learning_rate: 0.01,
            momentum: 0.9,
            validation_fraction: 0.2,
            patience: 20,
            seed: 0x5eed,
        }
    }
}

/// Dense layer parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Layer {
    // weights[o * inputs + i]
    weights: Vec<f64>,
    biases: Vec<f64>,
    inputs: usize,
    outputs: usize,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, rng: &mut StdRng) -> Self {
        // Xavier/Glorot uniform initialization.
        let limit = (6.0 / (inputs + outputs) as f64).sqrt();
        Layer {
            weights: (0..inputs * outputs)
                .map(|_| rng.gen_range(-limit..limit))
                .collect(),
            biases: vec![0.0; outputs],
            inputs,
            outputs,
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.inputs);
        (0..self.outputs)
            .map(|o| {
                self.biases[o]
                    + self.weights[o * self.inputs..(o + 1) * self.inputs]
                        .iter()
                        .zip(x)
                        .map(|(&w, &v)| w * v)
                        .sum::<f64>()
            })
            .collect()
    }
}

/// Multilayer perceptron forecaster (tanh hidden activations, linear
/// output, MSE loss).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpForecaster {
    config: MlpConfig,
    layers: Vec<Layer>,
    norm_mean: f64,
    norm_std: f64,
    tail: Vec<f64>,
    history_len: usize,
    fitted: bool,
    train_epochs_run: usize,
}

impl MlpForecaster {
    /// Creates an unfitted MLP with the given configuration.
    pub fn new(config: MlpConfig) -> Self {
        MlpForecaster {
            config,
            layers: Vec::new(),
            norm_mean: 0.0,
            norm_std: 1.0,
            tail: Vec::new(),
            history_len: 0,
            fitted: false,
            train_epochs_run: 0,
        }
    }

    /// Creates an unfitted MLP with default hyperparameters.
    pub fn with_defaults() -> Self {
        Self::new(MlpConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Epochs actually run in the last `fit` (≤ `config.epochs` when early
    /// stopping triggered).
    pub fn epochs_run(&self) -> usize {
        self.train_epochs_run
    }

    fn feature_len(&self) -> usize {
        self.config.lags
            + if self.config.seasonal_period > 0 {
                2
            } else {
                0
            }
    }

    /// Builds the feature vector for predicting the observation at absolute
    /// time index `t`, given the `lags` preceding *normalized* values
    /// (oldest first).
    fn features(&self, window: &[f64], t: usize) -> Vec<f64> {
        let mut f = Vec::with_capacity(self.feature_len());
        f.extend_from_slice(window);
        if self.config.seasonal_period > 0 {
            let phase = 2.0 * std::f64::consts::PI * (t % self.config.seasonal_period) as f64
                / self.config.seasonal_period as f64;
            f.push(phase.sin());
            f.push(phase.cos());
        }
        f
    }

    fn forward_all(&self, x: &[f64]) -> Vec<Vec<f64>> {
        // Activations per layer, including the input.
        let mut acts = vec![x.to_vec()];
        for (li, layer) in self.layers.iter().enumerate() {
            let mut z = layer.forward(acts.last().expect("non-empty"));
            let is_output = li == self.layers.len() - 1;
            if !is_output {
                for v in &mut z {
                    *v = v.tanh();
                }
            }
            acts.push(z);
        }
        acts
    }

    fn predict_normalized(&self, x: &[f64]) -> f64 {
        let acts = self.forward_all(x);
        acts.last().expect("layers exist")[0]
    }

    /// One SGD step over a mini-batch; returns the batch MSE.
    #[allow(clippy::needless_range_loop)]
    fn sgd_step(
        &mut self,
        batch: &[(Vec<f64>, f64)],
        velocity: &mut [(Vec<f64>, Vec<f64>)],
    ) -> f64 {
        let lr = self.config.learning_rate;
        let mu = self.config.momentum;
        let n = batch.len() as f64;

        // Accumulate gradients over the batch.
        let mut grads: Vec<(Vec<f64>, Vec<f64>)> = self
            .layers
            .iter()
            .map(|l| (vec![0.0; l.weights.len()], vec![0.0; l.biases.len()]))
            .collect();
        let mut loss = 0.0;

        for (x, y) in batch {
            let acts = self.forward_all(x);
            let pred = acts.last().expect("layers exist")[0];
            let err = pred - y;
            loss += err * err;

            // Backprop: delta for the linear output layer.
            let mut delta = vec![2.0 * err / n];
            for li in (0..self.layers.len()).rev() {
                let input = &acts[li];
                let layer = &self.layers[li];
                // Gradients for this layer.
                for o in 0..layer.outputs {
                    grads[li].1[o] += delta[o];
                    for i in 0..layer.inputs {
                        grads[li].0[o * layer.inputs + i] += delta[o] * input[i];
                    }
                }
                if li == 0 {
                    break;
                }
                // Delta for the previous (tanh) layer.
                let prev_act = &acts[li];
                let mut new_delta = vec![0.0; layer.inputs];
                for i in 0..layer.inputs {
                    let mut s = 0.0;
                    for o in 0..layer.outputs {
                        s += delta[o] * layer.weights[o * layer.inputs + i];
                    }
                    // tanh'(z) = 1 - tanh(z)^2; prev_act holds tanh(z).
                    new_delta[i] = s * (1.0 - prev_act[i] * prev_act[i]);
                }
                delta = new_delta;
            }
        }

        // Momentum update.
        for (li, layer) in self.layers.iter_mut().enumerate() {
            for (w, (g, v)) in layer
                .weights
                .iter_mut()
                .zip(grads[li].0.iter().zip(velocity[li].0.iter_mut()))
            {
                *v = mu * *v - lr * g;
                *w += *v;
            }
            for (b, (g, v)) in layer
                .biases
                .iter_mut()
                .zip(grads[li].1.iter().zip(velocity[li].1.iter_mut()))
            {
                *v = mu * *v - lr * g;
                *b += *v;
            }
        }
        loss / n
    }
}

impl Forecaster for MlpForecaster {
    fn fit(&mut self, history: &[f64]) -> ForecastResult<()> {
        let cfg = self.config.clone();
        let cfg = &cfg;
        if cfg.lags == 0 {
            return Err(ForecastError::InvalidParameter("lags must be >= 1"));
        }
        if cfg.batch_size == 0 {
            return Err(ForecastError::InvalidParameter("batch size must be >= 1"));
        }
        if !(0.0..1.0).contains(&cfg.validation_fraction) {
            return Err(ForecastError::InvalidParameter(
                "validation fraction must be in [0, 1)",
            ));
        }
        let min_len = cfg.lags + 8;
        if history.len() < min_len {
            return Err(ForecastError::HistoryTooShort {
                required: min_len,
                actual: history.len(),
            });
        }

        // Normalize by training mean/std (population).
        let mean = history.iter().sum::<f64>() / history.len() as f64;
        let var = history
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f64>()
            / history.len() as f64;
        let std = var.sqrt();
        if std == 0.0 {
            // Constant series: degenerate for a network, but trivially
            // forecastable — store state that forecasts the constant.
            self.norm_mean = mean;
            self.norm_std = 1.0;
            self.layers = Vec::new();
            self.tail = vec![0.0; cfg.lags];
            self.history_len = history.len();
            self.fitted = true;
            self.train_epochs_run = 0;
            return Ok(());
        }
        self.norm_mean = mean;
        self.norm_std = std;
        let normalized: Vec<f64> = history.iter().map(|&x| (x - mean) / std).collect();

        // Supervised samples: features at time t -> normalized[t].
        let mut samples: Vec<(Vec<f64>, f64)> = Vec::with_capacity(normalized.len() - cfg.lags);
        // Temporarily build features via a throwaway self-less closure to
        // avoid borrow conflicts: replicate `features` inline.
        for t in cfg.lags..normalized.len() {
            let window = &normalized[t - cfg.lags..t];
            let mut f = Vec::with_capacity(self.feature_len());
            f.extend_from_slice(window);
            if cfg.seasonal_period > 0 {
                let phase = 2.0 * std::f64::consts::PI * (t % cfg.seasonal_period) as f64
                    / cfg.seasonal_period as f64;
                f.push(phase.sin());
                f.push(phase.cos());
            }
            samples.push((f, normalized[t]));
        }

        // Time-ordered train/validation split.
        let val_len = ((samples.len() as f64) * cfg.validation_fraction) as usize;
        let train_len = samples.len() - val_len;
        let (train, val) = samples.split_at(train_len);

        // Build network.
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut sizes = vec![self.feature_len()];
        sizes.extend(&cfg.hidden);
        sizes.push(1);
        self.layers = sizes
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();

        let mut velocity: Vec<(Vec<f64>, Vec<f64>)> = self
            .layers
            .iter()
            .map(|l| (vec![0.0; l.weights.len()], vec![0.0; l.biases.len()]))
            .collect();

        let mut best_val = f64::INFINITY;
        let mut best_layers = self.layers.clone();
        let mut since_best = 0usize;
        let mut epochs_run = 0usize;

        let mut order: Vec<usize> = (0..train.len()).collect();
        for _epoch in 0..cfg.epochs {
            epochs_run += 1;
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch_size) {
                let batch: Vec<(Vec<f64>, f64)> = chunk.iter().map(|&i| train[i].clone()).collect();
                epoch_loss += self.sgd_step(&batch, &mut velocity);
                batches += 1;
            }
            if !(epoch_loss / batches as f64).is_finite() {
                return Err(ForecastError::Diverged);
            }

            // Early stopping on validation MSE (or training loss when no
            // validation split).
            let monitored = if val.is_empty() {
                epoch_loss / batches as f64
            } else {
                let mut v = 0.0;
                for (x, y) in val {
                    let p = self.predict_normalized(x);
                    v += (p - y) * (p - y);
                }
                v / val.len() as f64
            };
            if monitored < best_val - 1e-9 {
                best_val = monitored;
                best_layers = self.layers.clone();
                since_best = 0;
            } else if cfg.patience > 0 {
                since_best += 1;
                if since_best >= cfg.patience {
                    break;
                }
            }
        }
        self.layers = best_layers;
        self.tail = normalized[normalized.len() - cfg.lags..].to_vec();
        self.history_len = history.len();
        self.fitted = true;
        self.train_epochs_run = epochs_run;
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> ForecastResult<Vec<f64>> {
        if !self.fitted {
            return Err(ForecastError::NotFitted);
        }
        if horizon == 0 {
            return Err(ForecastError::InvalidParameter("horizon must be positive"));
        }
        // Degenerate constant-series model.
        if self.layers.is_empty() {
            return Ok(vec![self.norm_mean; horizon]);
        }
        let mut window = self.tail.clone();
        let mut out = Vec::with_capacity(horizon);
        for h in 0..horizon {
            let t = self.history_len + h;
            let feats = self.features(&window, t);
            let pred_norm = self.predict_normalized(&feats);
            if !pred_norm.is_finite() {
                return Err(ForecastError::Diverged);
            }
            out.push(pred_norm * self.norm_std + self.norm_mean);
            window.remove(0);
            window.push(pred_norm);
        }
        Ok(out)
    }

    fn name(&self) -> &str {
        "mlp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_timeseries::metrics::mape;

    fn fast_config() -> MlpConfig {
        MlpConfig {
            lags: 4,
            seasonal_period: 24,
            hidden: vec![8],
            epochs: 120,
            batch_size: 16,
            learning_rate: 0.02,
            momentum: 0.9,
            validation_fraction: 0.15,
            patience: 30,
            seed: 7,
        }
    }

    /// Diurnal-like signal: smooth seasonality plus mild deterministic noise.
    fn diurnal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                let phase = 2.0 * std::f64::consts::PI * (t % 24) as f64 / 24.0;
                50.0 + 25.0 * phase.sin() + 3.0 * ((t * 37 % 11) as f64 / 11.0 - 0.5)
            })
            .collect()
    }

    #[test]
    fn learns_seasonal_signal() {
        let data = diurnal(24 * 12);
        let (train, test) = data.split_at(24 * 10);
        let mut m = MlpForecaster::new(fast_config());
        m.fit(train).unwrap();
        let fc = m.forecast(test.len()).unwrap();
        let err = mape(test, &fc).unwrap();
        assert!(
            err < 0.15,
            "MAPE {err} too high for a clean seasonal signal"
        );
    }

    #[test]
    fn beats_mean_baseline_on_seasonal_data() {
        let data = diurnal(24 * 10);
        let (train, test) = data.split_at(24 * 8);
        let mut m = MlpForecaster::new(fast_config());
        m.fit(train).unwrap();
        let fc = m.forecast(test.len()).unwrap();
        let mlp_err = mape(test, &fc).unwrap();
        let mean = train.iter().sum::<f64>() / train.len() as f64;
        let mean_fc = vec![mean; test.len()];
        let mean_err = mape(test, &mean_fc).unwrap();
        assert!(mlp_err < mean_err, "mlp {mlp_err} >= mean {mean_err}");
    }

    #[test]
    fn deterministic_given_seed() {
        let data = diurnal(24 * 6);
        let mut a = MlpForecaster::new(fast_config());
        let mut b = MlpForecaster::new(fast_config());
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        assert_eq!(a.forecast(12).unwrap(), b.forecast(12).unwrap());
    }

    #[test]
    fn constant_series_forecasts_constant() {
        let mut m = MlpForecaster::new(fast_config());
        m.fit(&[42.0; 64]).unwrap();
        let fc = m.forecast(5).unwrap();
        for v in fc {
            assert!((v - 42.0).abs() < 1e-12);
        }
    }

    #[test]
    fn validation_errors() {
        let mut zero_lags = MlpForecaster::new(MlpConfig {
            lags: 0,
            ..fast_config()
        });
        assert!(zero_lags.fit(&diurnal(100)).is_err());

        let mut short = MlpForecaster::new(fast_config());
        assert!(short.fit(&[1.0; 5]).is_err());

        assert_eq!(
            MlpForecaster::with_defaults().forecast(3),
            Err(ForecastError::NotFitted)
        );

        let mut ok = MlpForecaster::new(fast_config());
        ok.fit(&diurnal(24 * 4)).unwrap();
        assert!(ok.forecast(0).is_err());
    }

    #[test]
    fn early_stopping_reports_epochs() {
        let data = diurnal(24 * 8);
        let mut m = MlpForecaster::new(MlpConfig {
            epochs: 500,
            patience: 5,
            ..fast_config()
        });
        m.fit(&data).unwrap();
        assert!(m.epochs_run() <= 500);
        assert!(m.epochs_run() >= 1);
    }

    #[test]
    fn no_hidden_layers_is_linear_model() {
        let data = diurnal(24 * 8);
        let mut m = MlpForecaster::new(MlpConfig {
            hidden: vec![],
            ..fast_config()
        });
        m.fit(&data).unwrap();
        let fc = m.forecast(24).unwrap();
        assert_eq!(fc.len(), 24);
        assert!(fc.iter().all(|v| v.is_finite()));
    }
}
