//! Baseline forecasters: mean, last-value, drift, and seasonal-naive.
//!
//! These serve two purposes in the reproduction: (i) sanity baselines in
//! benchmark sweeps, and (ii) cheap fallbacks when a signature series is
//! too short or degenerate for the neural model.

use serde::{Deserialize, Serialize};

use crate::error::{ForecastError, ForecastResult};
use crate::Forecaster;

/// Forecasts the historical mean for every future step.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MeanForecaster {
    mean: Option<f64>,
}

impl MeanForecaster {
    /// Creates an unfitted mean forecaster.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Forecaster for MeanForecaster {
    fn fit(&mut self, history: &[f64]) -> ForecastResult<()> {
        if history.is_empty() {
            return Err(ForecastError::HistoryTooShort {
                required: 1,
                actual: 0,
            });
        }
        self.mean = Some(history.iter().sum::<f64>() / history.len() as f64);
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> ForecastResult<Vec<f64>> {
        let mean = self.mean.ok_or(ForecastError::NotFitted)?;
        if horizon == 0 {
            return Err(ForecastError::InvalidParameter("horizon must be positive"));
        }
        Ok(vec![mean; horizon])
    }

    fn name(&self) -> &str {
        "mean"
    }
}

/// Forecasts the last observed value for every future step (random-walk
/// forecast).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LastValue {
    last: Option<f64>,
}

impl LastValue {
    /// Creates an unfitted last-value forecaster.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Forecaster for LastValue {
    fn fit(&mut self, history: &[f64]) -> ForecastResult<()> {
        self.last = Some(*history.last().ok_or(ForecastError::HistoryTooShort {
            required: 1,
            actual: 0,
        })?);
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> ForecastResult<Vec<f64>> {
        let last = self.last.ok_or(ForecastError::NotFitted)?;
        if horizon == 0 {
            return Err(ForecastError::InvalidParameter("horizon must be positive"));
        }
        Ok(vec![last; horizon])
    }

    fn name(&self) -> &str {
        "last-value"
    }
}

/// Extrapolates the straight line between the first and last observation
/// (the classic drift method).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Drift {
    last: Option<f64>,
    slope: f64,
}

impl Drift {
    /// Creates an unfitted drift forecaster.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Forecaster for Drift {
    fn fit(&mut self, history: &[f64]) -> ForecastResult<()> {
        if history.len() < 2 {
            return Err(ForecastError::HistoryTooShort {
                required: 2,
                actual: history.len(),
            });
        }
        let first = history[0];
        let last = *history.last().expect("len >= 2");
        self.slope = (last - first) / (history.len() - 1) as f64;
        self.last = Some(last);
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> ForecastResult<Vec<f64>> {
        let last = self.last.ok_or(ForecastError::NotFitted)?;
        if horizon == 0 {
            return Err(ForecastError::InvalidParameter("horizon must be positive"));
        }
        Ok((1..=horizon)
            .map(|h| last + self.slope * h as f64)
            .collect())
    }

    fn name(&self) -> &str {
        "drift"
    }
}

/// Repeats the last full seasonal cycle — exact for perfectly periodic
/// series and a strong baseline for diurnal data-center load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeasonalNaive {
    period: usize,
    last_cycle: Option<Vec<f64>>,
}

impl SeasonalNaive {
    /// Creates a seasonal-naive forecaster with the given period
    /// (96 for daily seasonality at 15-minute sampling).
    pub fn new(period: usize) -> Self {
        SeasonalNaive {
            period,
            last_cycle: None,
        }
    }

    /// The configured period.
    pub fn period(&self) -> usize {
        self.period
    }
}

impl Forecaster for SeasonalNaive {
    fn fit(&mut self, history: &[f64]) -> ForecastResult<()> {
        if self.period == 0 {
            return Err(ForecastError::InvalidParameter("period must be positive"));
        }
        if history.len() < self.period {
            return Err(ForecastError::HistoryTooShort {
                required: self.period,
                actual: history.len(),
            });
        }
        self.last_cycle = Some(history[history.len() - self.period..].to_vec());
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> ForecastResult<Vec<f64>> {
        let cycle = self.last_cycle.as_ref().ok_or(ForecastError::NotFitted)?;
        if horizon == 0 {
            return Err(ForecastError::InvalidParameter("horizon must be positive"));
        }
        Ok((0..horizon).map(|h| cycle[h % self.period]).collect())
    }

    fn name(&self) -> &str {
        "seasonal-naive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_forecaster() {
        let mut m = MeanForecaster::new();
        assert_eq!(m.forecast(1), Err(ForecastError::NotFitted));
        m.fit(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(m.forecast(2).unwrap(), vec![2.0, 2.0]);
        assert!(m.fit(&[]).is_err());
        assert!(m.forecast(0).is_err());
    }

    #[test]
    fn last_value_forecaster() {
        let mut m = LastValue::new();
        m.fit(&[5.0, 9.0]).unwrap();
        assert_eq!(m.forecast(3).unwrap(), vec![9.0; 3]);
    }

    #[test]
    fn drift_extrapolates_line() {
        let mut m = Drift::new();
        m.fit(&[0.0, 1.0, 2.0, 3.0]).unwrap();
        assert_eq!(m.forecast(3).unwrap(), vec![4.0, 5.0, 6.0]);
        assert!(m.fit(&[1.0]).is_err());
    }

    #[test]
    fn seasonal_naive_exact_on_periodic() {
        let history: Vec<f64> = (0..96 * 3)
            .map(|t| ((t % 96) as f64).sin() * 30.0 + 50.0)
            .collect();
        let mut m = SeasonalNaive::new(96);
        m.fit(&history).unwrap();
        let fc = m.forecast(192).unwrap();
        for (h, &v) in fc.iter().enumerate() {
            let expected = ((h % 96) as f64).sin() * 30.0 + 50.0;
            assert!((v - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn seasonal_naive_validation() {
        let mut m = SeasonalNaive::new(10);
        assert!(m.fit(&[1.0; 5]).is_err());
        assert_eq!(m.period(), 10);
        let mut zero = SeasonalNaive::new(0);
        assert!(zero.fit(&[1.0; 5]).is_err());
    }

    #[test]
    fn refit_replaces_state() {
        let mut m = LastValue::new();
        m.fit(&[1.0]).unwrap();
        m.fit(&[2.0]).unwrap();
        assert_eq!(m.forecast(1).unwrap(), vec![2.0]);
    }
}
