//! Ensemble forecasting: average the forecasts of several models.
//!
//! Simple unweighted (or validation-weighted) averaging is a classical
//! variance-reduction trick; since the ATM framework treats the temporal
//! model as a black box, an ensemble plugs in wherever a single model
//! does.

use crate::error::{ForecastError, ForecastResult};
use crate::Forecaster;

/// Averages the forecasts of its member models.
///
/// Members that fail to fit are dropped for the current history (with at
/// least one survivor required); optionally, members can be weighted by
/// their inverse error on a held-out validation split of the history.
pub struct EnsembleForecaster {
    members: Vec<Box<dyn Forecaster + Send>>,
    weights: Vec<f64>,
    fitted_members: Vec<usize>,
    validation_fraction: f64,
    fitted: bool,
}

impl std::fmt::Debug for EnsembleForecaster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnsembleForecaster")
            .field("members", &self.members.len())
            .field("weights", &self.weights)
            .field("fitted", &self.fitted)
            .finish()
    }
}

impl EnsembleForecaster {
    /// Creates an unweighted ensemble over the given members.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<Box<dyn Forecaster + Send>>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        EnsembleForecaster {
            members,
            weights: Vec::new(),
            fitted_members: Vec::new(),
            validation_fraction: 0.0,
            fitted: false,
        }
    }

    /// Enables inverse-MAE validation weighting on the most recent
    /// `fraction` of the history (in `(0, 0.5]`).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 0.5]`.
    pub fn with_validation_weighting(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 0.5,
            "validation fraction must be in (0, 0.5]"
        );
        self.validation_fraction = fraction;
        self
    }

    /// The effective member weights after fitting (normalized to sum 1),
    /// aligned with the fitted members.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// How many members successfully fitted.
    pub fn fitted_member_count(&self) -> usize {
        self.fitted_members.len()
    }
}

impl Forecaster for EnsembleForecaster {
    fn fit(&mut self, history: &[f64]) -> ForecastResult<()> {
        self.fitted = false;
        self.fitted_members.clear();
        self.weights.clear();

        // Validation weighting: fit on the prefix, score on the suffix.
        let val_len = (history.len() as f64 * self.validation_fraction) as usize;
        let mut raw_weights = Vec::new();
        if val_len >= 2 && history.len() > val_len + 2 {
            let (train, val) = history.split_at(history.len() - val_len);
            for (i, m) in self.members.iter_mut().enumerate() {
                let score = m
                    .fit(train)
                    .and_then(|()| m.forecast(val.len()))
                    .ok()
                    .map(|fc| {
                        let mae: f64 = fc
                            .iter()
                            .zip(val)
                            .map(|(&p, &a)| (p - a).abs())
                            .sum::<f64>()
                            / val.len() as f64;
                        1.0 / (mae + 1e-9)
                    });
                if let Some(w) = score {
                    self.fitted_members.push(i);
                    raw_weights.push(w);
                }
            }
        }

        // (Re)fit all scoreable members on the full history.
        if self.fitted_members.is_empty() {
            for (i, m) in self.members.iter_mut().enumerate() {
                if m.fit(history).is_ok() {
                    self.fitted_members.push(i);
                    raw_weights.push(1.0);
                }
            }
        } else {
            let keep = self.fitted_members.clone();
            self.fitted_members.clear();
            let mut kept_weights = Vec::new();
            for (pos, &i) in keep.iter().enumerate() {
                if self.members[i].fit(history).is_ok() {
                    self.fitted_members.push(i);
                    kept_weights.push(raw_weights[pos]);
                }
            }
            raw_weights = kept_weights;
        }

        if self.fitted_members.is_empty() {
            return Err(ForecastError::Degenerate("no ensemble member could fit"));
        }
        let total: f64 = raw_weights.iter().sum();
        self.weights = raw_weights.into_iter().map(|w| w / total).collect();
        self.fitted = true;
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> ForecastResult<Vec<f64>> {
        if !self.fitted {
            return Err(ForecastError::NotFitted);
        }
        if horizon == 0 {
            return Err(ForecastError::InvalidParameter("horizon must be positive"));
        }
        let mut combined = vec![0.0; horizon];
        for (&i, &w) in self.fitted_members.iter().zip(&self.weights) {
            let fc = self.members[i].forecast(horizon)?;
            for (c, v) in combined.iter_mut().zip(&fc) {
                *c += w * v;
            }
        }
        Ok(combined)
    }

    fn name(&self) -> &str {
        "ensemble"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ar::ArForecaster;
    use crate::naive::{LastValue, MeanForecaster, SeasonalNaive};

    fn seasonal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| 50.0 + 20.0 * (2.0 * std::f64::consts::PI * (t % 24) as f64 / 24.0).sin())
            .collect()
    }

    #[test]
    fn averages_members() {
        // Two constant forecasters (mean of different data? both see the
        // same history) — easier: mean + last-value on a two-level series.
        let history = vec![10.0, 10.0, 10.0, 30.0]; // mean 15, last 30
        let mut e = EnsembleForecaster::new(vec![
            Box::new(MeanForecaster::new()),
            Box::new(LastValue::new()),
        ]);
        e.fit(&history).unwrap();
        let fc = e.forecast(2).unwrap();
        assert!((fc[0] - 22.5).abs() < 1e-9, "{fc:?}");
        assert_eq!(e.fitted_member_count(), 2);
        let w: f64 = e.weights().iter().sum();
        assert!((w - 1.0).abs() < 1e-12);
    }

    #[test]
    fn drops_members_that_cannot_fit() {
        // SeasonalNaive(96) cannot fit a 10-point history; the ensemble
        // falls back to the survivors.
        let history = vec![5.0; 10];
        let mut e = EnsembleForecaster::new(vec![
            Box::new(SeasonalNaive::new(96)),
            Box::new(MeanForecaster::new()),
        ]);
        e.fit(&history).unwrap();
        assert_eq!(e.fitted_member_count(), 1);
        assert_eq!(e.forecast(3).unwrap(), vec![5.0; 3]);
    }

    #[test]
    fn all_members_failing_is_an_error() {
        let mut e = EnsembleForecaster::new(vec![Box::new(SeasonalNaive::new(96))]);
        assert!(matches!(
            e.fit(&[1.0; 10]),
            Err(ForecastError::Degenerate(_))
        ));
        assert!(e.forecast(1).is_err());
    }

    #[test]
    fn validation_weighting_prefers_better_member() {
        // On a seasonal series, seasonal-naive should far outweigh the
        // mean model.
        let history = seasonal(24 * 6);
        let mut e = EnsembleForecaster::new(vec![
            Box::new(SeasonalNaive::new(24)),
            Box::new(MeanForecaster::new()),
        ])
        .with_validation_weighting(0.25);
        e.fit(&history).unwrap();
        assert_eq!(e.fitted_member_count(), 2);
        assert!(
            e.weights()[0] > 0.9,
            "seasonal member weight {:?}",
            e.weights()
        );
        // The weighted ensemble tracks the seasonal pattern closely.
        let fc = e.forecast(24).unwrap();
        let expected = seasonal(24 * 7);
        let err: f64 = fc
            .iter()
            .zip(&expected[24 * 6..])
            .map(|(&p, &a)| (p - a).abs())
            .sum::<f64>()
            / 24.0;
        assert!(err < 3.0, "ensemble MAE {err}");
    }

    #[test]
    fn works_with_ar_members() {
        let history = seasonal(24 * 4);
        let mut e = EnsembleForecaster::new(vec![
            Box::new(ArForecaster::new(4)),
            Box::new(SeasonalNaive::new(24)),
        ]);
        e.fit(&history).unwrap();
        let fc = e.forecast(12).unwrap();
        assert_eq!(fc.len(), 12);
        assert!(fc.iter().all(|v| v.is_finite()));
        assert_eq!(e.name(), "ensemble");
    }

    #[test]
    #[should_panic(expected = "ensemble needs at least one member")]
    fn empty_ensemble_panics() {
        EnsembleForecaster::new(vec![]);
    }
}
