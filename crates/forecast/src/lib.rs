//! # atm-forecast
//!
//! Temporal prediction models for ATM's *signature* series (Section III-B
//! of the DSN'16 paper).
//!
//! The paper predicts signature series with neural networks (their PRACTISE
//! system \[7\]) and stresses that *"any temporal prediction model can be
//! directly plugged into the ATM framework"*. Accordingly this crate
//! defines the [`Forecaster`] trait and provides:
//!
//! - [`mlp::MlpForecaster`] — a from-scratch multilayer perceptron over
//!   lagged + seasonal features, trained with mini-batch SGD + momentum
//!   and early stopping (the reproduction's stand-in for PRACTISE);
//! - [`ar::ArForecaster`] — autoregressive AR(p) fit by least squares;
//! - [`holt_winters::HoltWinters`] — additive triple exponential
//!   smoothing with damped trend, the classical statistical choice for
//!   diurnal load;
//! - [`naive`] — mean, last-value, drift and seasonal-naive baselines;
//! - [`ensemble::EnsembleForecaster`] — averages (optionally
//!   validation-weighted) any set of the above.
//!
//! # Example
//!
//! ```
//! use atm_forecast::{Forecaster, naive::SeasonalNaive};
//!
//! // A perfectly periodic series is forecast exactly by seasonal-naive.
//! let history: Vec<f64> = (0..48).map(|t| (t % 24) as f64).collect();
//! let mut model = SeasonalNaive::new(24);
//! model.fit(&history)?;
//! let fc = model.forecast(24)?;
//! assert_eq!(fc[5], 5.0);
//! # Ok::<(), atm_forecast::ForecastError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ar;
pub mod ensemble;
mod error;
pub mod holt_winters;
pub mod mlp;
pub mod naive;

pub use error::{ForecastError, ForecastResult};

/// A univariate time-series forecaster.
///
/// The contract mirrors how ATM uses temporal models: [`Forecaster::fit`]
/// on the training history (5 days of 15-minute samples in the paper's
/// evaluation), then [`Forecaster::forecast`] over the resizing horizon
/// (1 day = 96 ticketing windows).
pub trait Forecaster {
    /// Trains the model on `history` (oldest first), replacing any
    /// previously fitted state.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError`] when the history is too short for the
    /// model's requirements or otherwise degenerate.
    fn fit(&mut self, history: &[f64]) -> ForecastResult<()>;

    /// Produces point forecasts for the next `horizon` steps after the end
    /// of the fitted history.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::NotFitted`] if called before a successful
    /// [`Forecaster::fit`], or [`ForecastError::InvalidParameter`] if
    /// `horizon == 0`.
    fn forecast(&self, horizon: usize) -> ForecastResult<Vec<f64>>;

    /// A short human-readable model name for reports.
    fn name(&self) -> &str;
}

/// Fits and forecasts in one call — convenience for benchmark sweeps.
///
/// # Errors
///
/// Propagates the errors of [`Forecaster::fit`] and
/// [`Forecaster::forecast`].
pub fn fit_forecast<F: Forecaster>(
    model: &mut F,
    history: &[f64],
    horizon: usize,
) -> ForecastResult<Vec<f64>> {
    model.fit(history)?;
    model.forecast(horizon)
}

/// Dyn-friendly one-shot forecast over a **borrowed** history slice.
///
/// The streaming pipeline hands each forecaster a view into a demand
/// split that lives only as long as the box is resident; this entry point
/// makes the borrow explicit for trait objects (`&mut dyn Forecaster`,
/// where the `F: Forecaster` bound of [`fit_forecast`] requires `Sized`)
/// so no caller is tempted to clone the history into an owned `Vec<f64>`
/// first. Behavior is identical to [`fit_forecast`].
pub fn forecast(
    model: &mut dyn Forecaster,
    history: &[f64],
    horizon: usize,
) -> ForecastResult<Vec<f64>> {
    model.fit(history)?;
    model.forecast(horizon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::LastValue;

    #[test]
    fn fit_forecast_convenience() {
        let mut m = LastValue::new();
        let fc = fit_forecast(&mut m, &[1.0, 2.0, 7.0], 3).unwrap();
        assert_eq!(fc, vec![7.0, 7.0, 7.0]);
    }

    #[test]
    fn forecaster_is_object_safe() {
        let mut models: Vec<Box<dyn Forecaster>> = vec![Box::new(LastValue::new())];
        models[0].fit(&[1.0, 2.0]).unwrap();
        assert_eq!(models[0].forecast(1).unwrap(), vec![2.0]);
        assert_eq!(models[0].name(), "last-value");
    }
}
