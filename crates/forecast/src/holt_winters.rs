//! Holt–Winters triple exponential smoothing (additive seasonality).
//!
//! A classical strong baseline for seasonal series, sitting between the
//! naive models and the MLP in both cost and accuracy. The paper's
//! framework accepts any temporal model; Holt–Winters is the standard
//! statistical choice for diurnal load and is used in the temporal-model
//! ablation.

use serde::{Deserialize, Serialize};

use crate::error::{ForecastError, ForecastResult};
use crate::Forecaster;

/// Smoothing parameters for [`HoltWinters`]; all in `(0, 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HoltWintersConfig {
    /// Level smoothing α.
    pub alpha: f64,
    /// Trend smoothing β.
    pub beta: f64,
    /// Seasonal smoothing γ.
    pub gamma: f64,
    /// Seasonal period in observations (96 for daily @15 min).
    pub period: usize,
    /// Damping factor φ for the trend in `(0, 1]`; 1 = undamped. Damping
    /// keeps long-horizon forecasts from running away on noisy trends.
    pub damping: f64,
}

impl Default for HoltWintersConfig {
    fn default() -> Self {
        HoltWintersConfig {
            alpha: 0.3,
            beta: 0.05,
            gamma: 0.25,
            period: 96,
            damping: 0.98,
        }
    }
}

/// Additive Holt–Winters forecaster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HoltWinters {
    config: HoltWintersConfig,
    level: f64,
    trend: f64,
    seasonal: Vec<f64>,
    next_phase: usize,
    fitted: bool,
}

impl HoltWinters {
    /// Creates an unfitted model.
    pub fn new(config: HoltWintersConfig) -> Self {
        HoltWinters {
            config,
            level: 0.0,
            trend: 0.0,
            seasonal: Vec::new(),
            next_phase: 0,
            fitted: false,
        }
    }

    /// Creates an unfitted model with default smoothing parameters and
    /// the given period.
    pub fn with_period(period: usize) -> Self {
        Self::new(HoltWintersConfig {
            period,
            ..HoltWintersConfig::default()
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &HoltWintersConfig {
        &self.config
    }

    fn validate_config(&self) -> ForecastResult<()> {
        let c = &self.config;
        for (value, _name) in [(c.alpha, "alpha"), (c.beta, "beta"), (c.gamma, "gamma")] {
            if !(value > 0.0 && value < 1.0) {
                return Err(ForecastError::InvalidParameter(
                    "smoothing parameters must be in (0, 1)",
                ));
            }
        }
        if !(c.damping > 0.0 && c.damping <= 1.0) {
            return Err(ForecastError::InvalidParameter("damping must be in (0, 1]"));
        }
        if c.period == 0 {
            return Err(ForecastError::InvalidParameter("period must be positive"));
        }
        Ok(())
    }
}

impl Forecaster for HoltWinters {
    fn fit(&mut self, history: &[f64]) -> ForecastResult<()> {
        self.validate_config()?;
        let p = self.config.period;
        if history.len() < 2 * p {
            return Err(ForecastError::HistoryTooShort {
                required: 2 * p,
                actual: history.len(),
            });
        }

        // Initialization from the first two cycles (classical scheme).
        let cycle1_mean: f64 = history[..p].iter().sum::<f64>() / p as f64;
        let cycle2_mean: f64 = history[p..2 * p].iter().sum::<f64>() / p as f64;
        let mut level = cycle1_mean;
        let mut trend = (cycle2_mean - cycle1_mean) / p as f64;
        let mut seasonal: Vec<f64> = (0..p).map(|i| history[i] - cycle1_mean).collect();

        let (alpha, beta, gamma, phi) = (
            self.config.alpha,
            self.config.beta,
            self.config.gamma,
            self.config.damping,
        );
        for (t, &x) in history.iter().enumerate() {
            let s = seasonal[t % p];
            let prev_level = level;
            level = alpha * (x - s) + (1.0 - alpha) * (level + phi * trend);
            trend = beta * (level - prev_level) + (1.0 - beta) * phi * trend;
            seasonal[t % p] = gamma * (x - level) + (1.0 - gamma) * s;
            if !(level.is_finite() && trend.is_finite()) {
                return Err(ForecastError::Diverged);
            }
        }

        self.level = level;
        self.trend = trend;
        self.seasonal = seasonal;
        self.next_phase = history.len() % p;
        self.fitted = true;
        Ok(())
    }

    fn forecast(&self, horizon: usize) -> ForecastResult<Vec<f64>> {
        if !self.fitted {
            return Err(ForecastError::NotFitted);
        }
        if horizon == 0 {
            return Err(ForecastError::InvalidParameter("horizon must be positive"));
        }
        let p = self.config.period;
        let phi = self.config.damping;
        let mut out = Vec::with_capacity(horizon);
        // Damped trend accumulates as φ + φ² + … + φʰ.
        let mut damp_sum = 0.0;
        let mut damp_pow = 1.0;
        for h in 0..horizon {
            damp_pow *= phi;
            damp_sum += damp_pow;
            let s = self.seasonal[(self.next_phase + h) % p];
            out.push(self.level + damp_sum * self.trend + s);
        }
        Ok(out)
    }

    fn name(&self) -> &str {
        "holt-winters"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_timeseries::metrics::mape;

    fn seasonal_series(n: usize, period: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                let phase = 2.0 * std::f64::consts::PI * (t % period) as f64 / period as f64;
                50.0 + 20.0 * phase.sin()
            })
            .collect()
    }

    #[test]
    fn tracks_pure_seasonal_signal() {
        let period = 24;
        let data = seasonal_series(period * 8, period);
        let (train, test) = data.split_at(period * 6);
        let mut m = HoltWinters::with_period(period);
        m.fit(train).unwrap();
        let fc = m.forecast(test.len()).unwrap();
        let err = mape(test, &fc).unwrap();
        assert!(err < 0.05, "MAPE {err} on a pure seasonal signal");
    }

    #[test]
    fn tracks_trend_plus_seasonality() {
        let period = 12;
        let data: Vec<f64> = (0..period * 10)
            .map(|t| {
                30.0 + 0.05 * t as f64
                    + 10.0
                        * (2.0 * std::f64::consts::PI * (t % period) as f64 / period as f64).sin()
            })
            .collect();
        let (train, test) = data.split_at(period * 8);
        let mut m = HoltWinters::new(HoltWintersConfig {
            period,
            damping: 1.0,
            ..HoltWintersConfig::default()
        });
        m.fit(train).unwrap();
        let fc = m.forecast(test.len()).unwrap();
        let err = mape(test, &fc).unwrap();
        assert!(err < 0.08, "MAPE {err} with trend");
    }

    #[test]
    fn beats_mean_on_seasonal_data() {
        let period = 24;
        let data = seasonal_series(period * 6, period);
        let (train, test) = data.split_at(period * 4);
        let mut hw = HoltWinters::with_period(period);
        hw.fit(train).unwrap();
        let hw_err = mape(test, &hw.forecast(test.len()).unwrap()).unwrap();
        let mean = train.iter().sum::<f64>() / train.len() as f64;
        let mean_err = mape(test, &vec![mean; test.len()]).unwrap();
        assert!(hw_err < mean_err);
    }

    #[test]
    fn damping_bounds_long_horizons() {
        // With damping < 1, the trend contribution converges; forecasts
        // stay bounded even far out.
        let period = 12;
        let data: Vec<f64> = (0..period * 6).map(|t| 10.0 + t as f64).collect();
        let mut m = HoltWinters::new(HoltWintersConfig {
            period,
            damping: 0.9,
            ..HoltWintersConfig::default()
        });
        m.fit(&data).unwrap();
        let fc = m.forecast(10_000).unwrap();
        let last = *fc.last().unwrap();
        assert!(last.is_finite());
        // Damped trend sum converges to phi/(1-phi) * trend.
        assert!(last < data.last().unwrap() + 100.0);
    }

    #[test]
    fn validation() {
        let mut short = HoltWinters::with_period(24);
        assert!(matches!(
            short.fit(&[1.0; 30]),
            Err(ForecastError::HistoryTooShort { .. })
        ));
        let mut bad = HoltWinters::new(HoltWintersConfig {
            alpha: 1.5,
            ..HoltWintersConfig::default()
        });
        assert!(bad.fit(&seasonal_series(200, 96)).is_err());
        let mut zero_period = HoltWinters::with_period(0);
        assert!(zero_period.fit(&[1.0; 10]).is_err());
        assert_eq!(
            HoltWinters::with_period(4).forecast(1),
            Err(ForecastError::NotFitted)
        );
        let mut ok = HoltWinters::with_period(4);
        ok.fit(&seasonal_series(32, 4)).unwrap();
        assert!(ok.forecast(0).is_err());
        assert_eq!(ok.name(), "holt-winters");
    }

    #[test]
    fn constant_series_forecasts_constant() {
        let mut m = HoltWinters::with_period(4);
        m.fit(&[7.0; 40]).unwrap();
        for v in m.forecast(12).unwrap() {
            assert!((v - 7.0).abs() < 1e-6);
        }
    }
}
