//! Property-based tests for the MediaWiki simulator's conservation and
//! scheduling invariants.

use atm_mediawiki::cluster::{Cluster, Node};
use atm_mediawiki::vm::{Job, SimVm};
use proptest::prelude::*;

fn jobs() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.001f64..2.0, 1..12)
}

/// Proptest case count: `default`, rescaled by `ATM_PROPTEST_CASES`
/// relative to proptest's own default of 256 (the nightly CI deep run
/// sets 1024, i.e. 4x cases for every suite).
fn proptest_cases(default: u32) -> u32 {
    match std::env::var("ATM_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        Some(cases) => (u64::from(default) * cases).div_ceil(256).max(1) as u32,
        None => default,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases(256)))]
    /// Work conservation inside one PS tick: work done equals the drop in
    /// total remaining work, never exceeds the grant, and usage
    /// accounting matches.
    #[test]
    fn ps_tick_conserves_work(work in jobs(), grant in 0.1f64..8.0, tick in 0.01f64..1.0) {
        let mut vm = SimVm::new("vm", 0, 4.0);
        for (i, &w) in work.iter().enumerate() {
            vm.enqueue(Job { request: i, remaining: w });
        }
        let total_before: f64 = work.iter().sum();
        let done = vm.run_tick(grant, tick);
        let used = vm.drain_window_usage();
        prop_assert!(used <= grant * tick + 1e-9, "used {used} > budget");
        prop_assert!(used <= total_before + 1e-9);
        // Completed jobs are unique and within range.
        let mut d = done.clone();
        d.sort_unstable();
        d.dedup();
        prop_assert_eq!(d.len(), done.len());
        prop_assert!(done.iter().all(|&r| r < work.len()));
        // Remaining + done-work == before - used (conservation).
        prop_assert_eq!(vm.queue_len() + done.len(), work.len());
    }

    /// Processor sharing is fair: with equal job sizes, either all jobs
    /// finish or none do (they progress in lockstep).
    #[test]
    fn ps_equal_jobs_progress_in_lockstep(n in 1usize..10, size in 0.05f64..1.0, budget in 0.01f64..4.0) {
        let mut vm = SimVm::new("vm", 0, 1.0);
        for i in 0..n {
            vm.enqueue(Job { request: i, remaining: size });
        }
        let done = vm.run_tick(1.0, budget);
        prop_assert!(done.len() == n || done.is_empty(),
            "equal jobs finished unevenly: {} of {}", done.len(), n);
    }

    /// Node arbitration: grants never exceed caps, and each node's grant
    /// total never exceeds its cores.
    #[test]
    fn node_grants_respect_capacity(
        caps in prop::collection::vec(0.1f64..4.0, 1..8),
        cores in 1.0f64..8.0,
        busy_mask in prop::collection::vec(any::<bool>(), 1..8),
    ) {
        let n = caps.len().min(busy_mask.len());
        let mut vms: Vec<SimVm> = caps[..n]
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let mut vm = SimVm::new(format!("vm{i}"), 0, c);
                vm.set_cap(c);
                vm
            })
            .collect();
        for (vm, &busy) in vms.iter_mut().zip(&busy_mask) {
            if busy {
                vm.enqueue(Job { request: 0, remaining: 1.0 });
            }
        }
        let cluster = Cluster {
            nodes: vec![Node { name: "n".into(), cores }],
            vms,
        };
        let grants = cluster.cpu_grants();
        let total: f64 = grants.iter().sum();
        prop_assert!(total <= cores + 1e-9, "node oversubscribed: {total} > {cores}");
        for (g, vm) in grants.iter().zip(&cluster.vms) {
            prop_assert!(*g <= vm.cap_cores + 1e-9);
            if !vm.is_busy() {
                prop_assert_eq!(*g, 0.0);
            }
        }
    }

    /// Oversubscription scales grants proportionally to caps.
    #[test]
    fn oversubscription_is_proportional(caps in prop::collection::vec(0.5f64..4.0, 2..6)) {
        let mut vms: Vec<SimVm> = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let mut vm = SimVm::new(format!("vm{i}"), 0, c);
                vm.set_cap(c);
                vm.enqueue(Job { request: 0, remaining: 10.0 });
                vm
            })
            .collect();
        let want: f64 = caps.iter().sum();
        let cores = want / 2.0; // force oversubscription
        let cluster = Cluster {
            nodes: vec![Node { name: "n".into(), cores }],
            vms: std::mem::take(&mut vms),
        };
        let grants = cluster.cpu_grants();
        for (g, &c) in grants.iter().zip(&caps) {
            prop_assert!((g / c - 0.5).abs() < 1e-9, "grant {g} not proportional to cap {c}");
        }
    }
}
