//! Per-wiki performance summaries — the numbers behind paper Fig. 13
//! (mean response time and throughput for wiki-one / wiki-two).

use serde::{Deserialize, Serialize};

use crate::error::{SimError, SimResult};
use crate::request::Wiki;
use crate::sim::SimOutput;

/// Performance summary for one wiki over one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WikiPerformance {
    /// Which wiki.
    pub wiki: Wiki,
    /// Mean response time in milliseconds.
    pub mean_rt_ms: f64,
    /// 95th percentile response time in milliseconds.
    pub p95_rt_ms: f64,
    /// Throughput: completed requests per second.
    pub throughput_rps: f64,
    /// Completed request count.
    pub completed: usize,
    /// Dropped request count.
    pub dropped: usize,
}

/// Computes the summary for one wiki.
///
/// # Errors
///
/// Returns [`SimError::NoData`] when no request of the wiki completed.
pub fn wiki_performance(
    output: &SimOutput,
    wiki: Wiki,
    duration_seconds: f64,
) -> SimResult<WikiPerformance> {
    let completed = output.completed_for(wiki);
    if completed.is_empty() {
        return Err(SimError::NoData("no completed requests"));
    }
    let mut rts: Vec<f64> = completed
        .iter()
        .map(|c| c.response_time() * 1000.0)
        .collect();
    atm_num::sort_floats(&mut rts);
    let mean = rts.iter().sum::<f64>() / rts.len() as f64;
    let p95 = rts[((rts.len() as f64 * 0.95) as usize).min(rts.len() - 1)];
    let dropped = output.dropped[match wiki {
        Wiki::One => 0,
        Wiki::Two => 1,
    }];
    Ok(WikiPerformance {
        wiki,
        mean_rt_ms: mean,
        p95_rt_ms: p95,
        throughput_rps: completed.len() as f64 / duration_seconds,
        completed: completed.len(),
        dropped,
    })
}

/// Mean response time (ms) per time bucket — the data behind an
/// RT-over-time plot under the alternating load (the latency view of the
/// paper's Fig. 12 experiment). Buckets with no completions yield `None`.
///
/// # Errors
///
/// Returns [`SimError::NoData`] if `bucket_seconds` or `duration_seconds`
/// is non-positive.
pub fn rt_timeline(
    output: &SimOutput,
    wiki: Wiki,
    duration_seconds: f64,
    bucket_seconds: f64,
) -> SimResult<Vec<Option<f64>>> {
    if bucket_seconds <= 0.0
        || duration_seconds <= 0.0
        || bucket_seconds.is_nan()
        || duration_seconds.is_nan()
    {
        return Err(SimError::NoData("non-positive duration or bucket"));
    }
    let buckets = (duration_seconds / bucket_seconds).ceil() as usize;
    let mut sums = vec![0.0; buckets];
    let mut counts = vec![0usize; buckets];
    for c in output.completed_for(wiki) {
        let b = ((c.finish / bucket_seconds) as usize).min(buckets.saturating_sub(1));
        sums[b] += c.response_time() * 1000.0;
        counts[b] += 1;
    }
    Ok(sums
        .into_iter()
        .zip(counts)
        .map(|(s, n)| if n == 0 { None } else { Some(s / n as f64) })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::CompletedRequest;

    fn output_with(completed: Vec<CompletedRequest>, dropped: [usize; 2]) -> SimOutput {
        SimOutput {
            vm_names: vec!["vm0".into()],
            usage_pct: vec![vec![50.0]],
            demand_cores: vec![vec![1.0]],
            caps: vec![2.0],
            completed,
            dropped,
        }
    }

    #[test]
    fn summary_statistics() {
        let completed = vec![
            CompletedRequest {
                wiki: Wiki::One,
                arrival: 0.0,
                finish: 0.1,
            },
            CompletedRequest {
                wiki: Wiki::One,
                arrival: 1.0,
                finish: 1.3,
            },
            CompletedRequest {
                wiki: Wiki::Two,
                arrival: 0.0,
                finish: 0.5,
            },
        ];
        let out = output_with(completed, [2, 0]);
        let one = wiki_performance(&out, Wiki::One, 10.0).unwrap();
        assert_eq!(one.completed, 2);
        assert_eq!(one.dropped, 2);
        assert!((one.mean_rt_ms - 200.0).abs() < 1e-9);
        assert!((one.throughput_rps - 0.2).abs() < 1e-12);
        let two = wiki_performance(&out, Wiki::Two, 10.0).unwrap();
        assert_eq!(two.completed, 1);
        assert!((two.mean_rt_ms - 500.0).abs() < 1e-9);
    }

    #[test]
    fn p95_from_sorted_tail() {
        let completed: Vec<CompletedRequest> = (0..100)
            .map(|i| CompletedRequest {
                wiki: Wiki::One,
                arrival: 0.0,
                finish: (i + 1) as f64 / 1000.0, // 1..100 ms
            })
            .collect();
        let out = output_with(completed, [0, 0]);
        let perf = wiki_performance(&out, Wiki::One, 1.0).unwrap();
        assert!((perf.p95_rt_ms - 96.0).abs() < 1.01);
    }

    #[test]
    fn rt_timeline_buckets_correctly() {
        let completed = vec![
            CompletedRequest {
                wiki: Wiki::One,
                arrival: 0.0,
                finish: 1.0,
            }, // bucket 0, RT 1000
            CompletedRequest {
                wiki: Wiki::One,
                arrival: 1.0,
                finish: 2.0,
            }, // bucket 0, RT 1000
            CompletedRequest {
                wiki: Wiki::One,
                arrival: 10.0,
                finish: 10.5,
            }, // bucket 1, RT 500
            CompletedRequest {
                wiki: Wiki::Two,
                arrival: 0.0,
                finish: 9.0,
            }, // other wiki
        ];
        let out = output_with(completed, [0, 0]);
        let timeline = rt_timeline(&out, Wiki::One, 30.0, 10.0).unwrap();
        assert_eq!(timeline.len(), 3);
        assert_eq!(timeline[0], Some(1000.0));
        assert_eq!(timeline[1], Some(500.0));
        assert_eq!(timeline[2], None);
        assert!(rt_timeline(&out, Wiki::One, 30.0, 0.0).is_err());
        assert!(rt_timeline(&out, Wiki::One, 0.0, 10.0).is_err());
    }

    #[test]
    fn rt_timeline_clamps_late_finishes() {
        let completed = vec![CompletedRequest {
            wiki: Wiki::One,
            arrival: 99.0,
            finish: 100.5, // past the nominal duration
        }];
        let out = output_with(completed, [0, 0]);
        let timeline = rt_timeline(&out, Wiki::One, 100.0, 10.0).unwrap();
        assert_eq!(timeline.len(), 10);
        assert!(timeline[9].is_some());
    }

    #[test]
    fn empty_wiki_is_no_data() {
        let out = output_with(vec![], [0, 0]);
        assert!(wiki_performance(&out, Wiki::One, 1.0).is_err());
    }
}
