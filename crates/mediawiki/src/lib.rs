//! # atm-mediawiki
//!
//! A simulated reproduction of the paper's MediaWiki testbed
//! (Section V-B, Figs. 11–13).
//!
//! The original experiment runs two MediaWiki deployments ("wiki-one",
//! "wiki-two") as 3-tier web applications — Apache front-ends, memcached,
//! MySQL — across VMs on three physical servers, drives them with a load
//! generator alternating hourly between low and high intensity, and
//! compares CPU usage, tickets, response time and throughput with and
//! without ATM's cgroups-based resizing.
//!
//! No hypervisor is available here, so this crate substitutes a
//! **deterministic tick-based simulation**:
//!
//! - every VM is a processor-sharing CPU server with a cgroups-like
//!   capacity cap ([`vm`]);
//! - physical nodes arbitrate CPU among their co-located busy VMs
//!   proportionally to their caps ([`cluster`]);
//! - requests traverse Apache → (memcached | MySQL) stages with
//!   exponential service demands ([`request`], [`workload`]);
//! - per-VM CPU usage is integrated per ticketing window, giving the same
//!   usage series / ticket semantics as the data-center traces
//!   ([`sim`]);
//! - ATM's capacity decisions are enforced through the
//!   [`actuator::CapacityActuator`] abstraction — the stand-in for the
//!   paper's cgroups daemon (caps change on the fly, jobs undisturbed),
//!   with [`actuator::FlakyActuator`] available to layer seeded
//!   transient-failure and partial-apply faults over any backend;
//! - the [`scenario`] module assembles the exact Fig. 11 topology and
//!   replays it with original capacities and with ATM-resized capacities.
//!
//! The substitution preserves the experiment's mechanics: resizing shifts
//! CPU headroom from idle co-located VMs to hot Apache tiers, dropping
//! per-VM utilization below the ticket threshold while improving
//! latency/throughput of the saturated wiki.
//!
//! # Example
//!
//! ```no_run
//! use atm_mediawiki::scenario::{MediaWikiScenario, ScenarioConfig};
//!
//! let scenario = MediaWikiScenario::new(ScenarioConfig::default());
//! let comparison = scenario.run_comparison().unwrap();
//! assert!(comparison.resized.total_tickets() <= comparison.original.total_tickets());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actuator;
pub mod cluster;
mod error;
pub mod metrics;
pub mod request;
pub mod scenario;
pub mod sim;
pub mod vm;
pub mod workload;

pub use error::{SimError, SimResult};
