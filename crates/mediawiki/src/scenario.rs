//! The paper's Fig. 11 testbed scenario and the with/without-ATM
//! comparison of Figs. 12–13.
//!
//! Topology (four physical servers; one is the load generator, three host
//! VMs): **wiki-one** runs 4 Apache + 2 memcached + 1 MySQL VMs,
//! **wiki-two** runs 2 Apache + 1 memcached + 1 MySQL. Each VM has 2
//! virtual CPUs; each node is a 4-core/8-thread i7, modelled as 8
//! schedulable cores.
//!
//! The comparison runs the workload twice: once with the original 2-core
//! cgroups caps, once with caps chosen by ATM's greedy MCKP resizer from
//! the demand series observed in the original run (the actuation path the
//! paper implements with a cgroups daemon).

use atm_resize::{greedy, ResizeProblem, VmDemand};
use atm_ticketing::ThresholdPolicy;
use serde::{Deserialize, Serialize};

use crate::actuator::{CapacityActuator, SimulatedCgroups};
use crate::cluster::{Cluster, Node};
use crate::error::{SimError, SimResult};
use crate::metrics::{wiki_performance, WikiPerformance};
use crate::request::Wiki;
use crate::sim::{run, SimConfig, SimOutput};
use crate::vm::SimVm;
use crate::workload::{LoadGenerator, ServiceProfile, WikiWorkload};

/// Scenario parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Simulation parameters (duration, tick, window, seed).
    pub sim: SimConfig,
    /// Ticket threshold percent (paper: 60).
    pub ticket_threshold_pct: f64,
    /// wiki-one arrival rates (low, high), requests/second.
    pub wiki_one_rates: (f64, f64),
    /// wiki-two arrival rates (low, high), requests/second.
    pub wiki_two_rates: (f64, f64),
    /// Length of each intensity period in seconds (paper: one hour).
    pub period_seconds: f64,
    /// Node CPU capacity in schedulable cores (4C/8T i7 → 8.0).
    pub node_cores: f64,
    /// Per-VM allocated virtual CPU in cores (paper: 2 vCPU).
    pub vm_cores: f64,
    /// Resizing discretization factor ε in cores.
    pub epsilon: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            sim: SimConfig::default(),
            ticket_threshold_pct: 60.0,
            wiki_one_rates: (12.0, 42.0),
            wiki_two_rates: (8.0, 33.0),
            period_seconds: 3600.0,
            node_cores: 8.0,
            vm_cores: 2.0,
            epsilon: 0.0,
        }
    }
}

/// One run's results plus derived ticket counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Raw simulation output.
    pub output: SimOutput,
    /// Per-VM ticket counts at the configured threshold.
    pub tickets_per_vm: Vec<usize>,
    /// Per-wiki performance.
    pub performance: Vec<WikiPerformance>,
}

impl RunResult {
    /// Total tickets across VMs.
    pub fn total_tickets(&self) -> usize {
        self.tickets_per_vm.iter().sum()
    }

    /// Performance entry for one wiki.
    pub fn performance_for(&self, wiki: Wiki) -> Option<&WikiPerformance> {
        self.performance.iter().find(|p| p.wiki == wiki)
    }
}

/// Original vs ATM-resized comparison (Figs. 12–13).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// The run with original (2-core) caps.
    pub original: RunResult,
    /// The run with ATM-resized caps.
    pub resized: RunResult,
    /// The caps ATM chose, per VM.
    pub resized_caps: Vec<f64>,
}

/// The assembled testbed.
#[derive(Debug, Clone)]
pub struct MediaWikiScenario {
    config: ScenarioConfig,
}

impl MediaWikiScenario {
    /// Creates the scenario.
    pub fn new(config: ScenarioConfig) -> Self {
        MediaWikiScenario { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// Builds the Fig. 11 cluster with every VM capped at its allocated
    /// cores.
    pub fn build_cluster(&self) -> Cluster {
        let c = self.config.vm_cores;
        let nodes = (2..=4)
            .map(|i| Node {
                name: format!("node{i}"),
                cores: self.config.node_cores,
            })
            .collect();
        // Placement mirrors the paper's deployment across nodes 2-4.
        let vms = vec![
            SimVm::new("w1-apache0", 0, c),
            SimVm::new("w1-apache1", 0, c),
            SimVm::new("w2-apache0", 0, c),
            SimVm::new("w1-apache2", 1, c),
            SimVm::new("w1-apache3", 1, c),
            SimVm::new("w2-apache1", 1, c),
            SimVm::new("w1-memcached0", 1, c),
            SimVm::new("w1-memcached1", 2, c),
            SimVm::new("w1-db", 2, c),
            SimVm::new("w2-memcached0", 2, c),
            SimVm::new("w2-db", 2, c),
        ];
        Cluster { nodes, vms }
    }

    /// Builds the two wikis' load generators against a cluster.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownComponent`] if the cluster lacks an
    /// expected VM (only possible with a foreign cluster).
    pub fn build_generators(&self, cluster: &Cluster) -> SimResult<Vec<LoadGenerator>> {
        let vm = |name: &str| -> SimResult<usize> {
            cluster
                .vm_index(name)
                .ok_or_else(|| SimError::UnknownComponent(name.to_string()))
        };
        let w1 = LoadGenerator::new(
            WikiWorkload {
                wiki: Wiki::One,
                low_rate: self.config.wiki_one_rates.0,
                high_rate: self.config.wiki_one_rates.1,
                period_seconds: self.config.period_seconds,
                profile: ServiceProfile::default(),
            },
            vec![
                vm("w1-apache0")?,
                vm("w1-apache1")?,
                vm("w1-apache2")?,
                vm("w1-apache3")?,
            ],
            vec![vm("w1-memcached0")?, vm("w1-memcached1")?],
            vm("w1-db")?,
        );
        let w2 = LoadGenerator::new(
            WikiWorkload {
                wiki: Wiki::Two,
                low_rate: self.config.wiki_two_rates.0,
                high_rate: self.config.wiki_two_rates.1,
                period_seconds: self.config.period_seconds,
                profile: ServiceProfile::default(),
            },
            vec![vm("w2-apache0")?, vm("w2-apache1")?],
            vec![vm("w2-memcached0")?],
            vm("w2-db")?,
        );
        Ok(vec![w1, w2])
    }

    /// Runs the workload once with the given per-VM caps (`None` = the
    /// original allocated caps).
    ///
    /// # Errors
    ///
    /// Propagates simulation and metric errors.
    pub fn run_once(&self, caps: Option<&[f64]>) -> SimResult<RunResult> {
        let cluster = self.build_cluster();
        // Caps are applied through the cgroups-style actuator, exactly as
        // ATM's daemon would enforce them on a live hypervisor.
        let cluster = match caps {
            Some(caps) => {
                let mut actuator = SimulatedCgroups::new(cluster);
                actuator.apply(caps)?;
                actuator.into_cluster()
            }
            None => cluster,
        };
        let generators = self.build_generators(&cluster)?;
        let output = run(cluster, generators, &self.config.sim)?;

        let tickets_per_vm = (0..output.vm_names.len())
            .map(|v| output.vm_tickets(v, self.config.ticket_threshold_pct))
            .collect();
        let mut performance = Vec::new();
        for wiki in Wiki::ALL {
            performance.push(wiki_performance(
                &output,
                wiki,
                self.config.sim.duration_seconds,
            )?);
        }
        Ok(RunResult {
            output,
            tickets_per_vm,
            performance,
        })
    }

    /// Computes ATM's caps from observed per-window demand series: one
    /// greedy MCKP resize per node with the node's schedulable cores as
    /// the budget.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Resize`] if the optimizer fails.
    pub fn atm_caps(&self, observed: &SimOutput) -> SimResult<Vec<f64>> {
        let cluster = self.build_cluster();
        let policy = ThresholdPolicy::new(self.config.ticket_threshold_pct)
            .map_err(|e| SimError::Resize(e.to_string()))?;
        let mut caps = vec![self.config.vm_cores; cluster.vms.len()];

        for node in 0..cluster.nodes.len() {
            let members = cluster.vms_on(node);
            let vms: Vec<VmDemand> = members
                .iter()
                .map(|&v| {
                    let demands = observed.demand_cores[v].clone();
                    let peak = demands.iter().copied().fold(0.0, f64::max);
                    VmDemand::new(
                        observed.vm_names[v].clone(),
                        demands,
                        peak.min(self.config.node_cores),
                        self.config.node_cores,
                    )
                })
                .collect();
            let problem = ResizeProblem::new(vms, self.config.node_cores, policy)
                .with_epsilon(self.config.epsilon);
            let allocation =
                greedy::solve(&problem).map_err(|e| SimError::Resize(e.to_string()))?;
            for (pos, &v) in members.iter().enumerate() {
                caps[v] = allocation.capacities[pos];
            }
        }
        Ok(caps)
    }

    /// The full Fig. 12/13 experiment: baseline run → ATM resize → resized
    /// run.
    ///
    /// # Errors
    ///
    /// Propagates simulation and resize errors.
    pub fn run_comparison(&self) -> SimResult<Comparison> {
        let original = self.run_once(None)?;
        let caps = self.atm_caps(&original.output)?;
        let resized = self.run_once(Some(&caps))?;
        Ok(Comparison {
            original,
            resized,
            resized_caps: caps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down scenario: 40 minutes with 10-minute intensity
    /// periods and 5-minute ticketing windows.
    fn fast_config() -> ScenarioConfig {
        ScenarioConfig {
            sim: SimConfig {
                duration_seconds: 2400.0,
                tick_seconds: 0.05,
                window_seconds: 300.0,
                seed: 7,
                max_frontend_queue: 30,
            },
            period_seconds: 600.0,
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn topology_matches_fig11() {
        let s = MediaWikiScenario::new(fast_config());
        let c = s.build_cluster();
        assert_eq!(c.nodes.len(), 3);
        assert_eq!(c.vms.len(), 11);
        let w1_apaches = c
            .vms
            .iter()
            .filter(|v| v.name.starts_with("w1-apache"))
            .count();
        let w2_apaches = c
            .vms
            .iter()
            .filter(|v| v.name.starts_with("w2-apache"))
            .count();
        assert_eq!(w1_apaches, 4);
        assert_eq!(w2_apaches, 2);
        assert_eq!(c.vms.iter().filter(|v| v.name.ends_with("db")).count(), 2);
        // Every node hosts at least 3 VMs.
        for n in 0..3 {
            assert!(c.vms_on(n).len() >= 3);
        }
    }

    #[test]
    fn baseline_run_produces_tickets_under_high_load() {
        let s = MediaWikiScenario::new(fast_config());
        let r = s.run_once(None).unwrap();
        assert!(
            r.total_tickets() > 0,
            "no tickets in the baseline high-load scenario"
        );
        // Both wikis completed requests.
        for wiki in Wiki::ALL {
            assert!(r.performance_for(wiki).unwrap().completed > 100);
        }
    }

    #[test]
    fn resizing_reduces_tickets_dramatically() {
        let s = MediaWikiScenario::new(fast_config());
        let cmp = s.run_comparison().unwrap();
        let before = cmp.original.total_tickets();
        let after = cmp.resized.total_tickets();
        assert!(before >= 5, "baseline tickets {before} too few to evaluate");
        assert!(
            (after as f64) < before as f64 * 0.4,
            "resizing reduced tickets only {before} -> {after}"
        );
    }

    #[test]
    fn resizing_respects_node_budgets() {
        let s = MediaWikiScenario::new(fast_config());
        let cmp = s.run_comparison().unwrap();
        let cluster = s.build_cluster();
        for (n, node) in cluster.nodes.iter().enumerate() {
            let total: f64 = cluster.vms_on(n).iter().map(|&v| cmp.resized_caps[v]).sum();
            assert!(
                total <= node.cores + 1e-6,
                "node {n} caps {total} exceed {}",
                node.cores
            );
        }
    }

    #[test]
    fn wiki_two_throughput_improves() {
        // wiki-two's Apaches are undersized at 2 cores; resizing must not
        // hurt its throughput and should typically raise it.
        let s = MediaWikiScenario::new(fast_config());
        let cmp = s.run_comparison().unwrap();
        let before = cmp.original.performance_for(Wiki::Two).unwrap();
        let after = cmp.resized.performance_for(Wiki::Two).unwrap();
        assert!(
            after.throughput_rps >= before.throughput_rps * 0.98,
            "wiki-two throughput regressed: {} -> {}",
            before.throughput_rps,
            after.throughput_rps
        );
        assert!(after.dropped <= before.dropped);
    }

    #[test]
    fn wiki_one_response_time_improves() {
        let s = MediaWikiScenario::new(fast_config());
        let cmp = s.run_comparison().unwrap();
        let before = cmp.original.performance_for(Wiki::One).unwrap();
        let after = cmp.resized.performance_for(Wiki::One).unwrap();
        assert!(
            after.mean_rt_ms <= before.mean_rt_ms * 1.1,
            "wiki-one RT regressed: {} -> {}",
            before.mean_rt_ms,
            after.mean_rt_ms
        );
    }

    #[test]
    fn run_once_validates_cap_length() {
        let s = MediaWikiScenario::new(fast_config());
        assert!(s.run_once(Some(&[1.0, 2.0])).is_err());
    }
}
