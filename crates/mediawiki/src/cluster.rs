//! Physical nodes and CPU arbitration among co-located VMs.

use serde::{Deserialize, Serialize};

use crate::vm::SimVm;

/// A physical server hosting VMs (the testbed's nodes have a 4-core
/// i7-3820).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Node name (e.g. `"node2"`).
    pub name: String,
    /// Physical CPU capacity in cores.
    pub cores: f64,
}

/// The cluster: nodes plus VMs placed on them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Physical nodes.
    pub nodes: Vec<Node>,
    /// All VMs; `SimVm::node` indexes into `nodes`.
    pub vms: Vec<SimVm>,
}

impl Cluster {
    /// VM indices hosted on `node`.
    pub fn vms_on(&self, node: usize) -> Vec<usize> {
        self.vms
            .iter()
            .enumerate()
            .filter(|(_, vm)| vm.node == node)
            .map(|(i, _)| i)
            .collect()
    }

    /// Finds a VM index by name.
    pub fn vm_index(&self, name: &str) -> Option<usize> {
        self.vms.iter().position(|vm| vm.name == name)
    }

    /// Computes each VM's CPU grant for one tick: a busy VM asks for its
    /// cap; if a node is oversubscribed, grants shrink proportionally.
    #[allow(clippy::needless_range_loop)]
    pub fn cpu_grants(&self) -> Vec<f64> {
        let mut grants = vec![0.0; self.vms.len()];
        for (n, node) in self.nodes.iter().enumerate() {
            let members = self.vms_on(n);
            let wanted: f64 = members.iter().map(|&i| self.vms[i].cpu_wanted()).sum();
            let scale = if wanted > node.cores {
                node.cores / wanted
            } else {
                1.0
            };
            for &i in &members {
                grants[i] = self.vms[i].cpu_wanted() * scale;
            }
        }
        grants
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::vm::Job;

    fn two_node_cluster() -> Cluster {
        let mut vms = vec![
            SimVm::new("a", 0, 2.0),
            SimVm::new("b", 0, 2.0),
            SimVm::new("c", 0, 2.0),
            SimVm::new("d", 1, 2.0),
        ];
        for vm in &mut vms {
            vm.enqueue(Job {
                request: 0,
                remaining: 10.0,
            });
        }
        Cluster {
            nodes: vec![
                Node {
                    name: "node0".into(),
                    cores: 4.0,
                },
                Node {
                    name: "node1".into(),
                    cores: 4.0,
                },
            ],
            vms,
        }
    }

    #[test]
    fn placement_queries() {
        let c = two_node_cluster();
        assert_eq!(c.vms_on(0), vec![0, 1, 2]);
        assert_eq!(c.vms_on(1), vec![3]);
        assert_eq!(c.vm_index("c"), Some(2));
        assert_eq!(c.vm_index("zzz"), None);
    }

    #[test]
    fn oversubscribed_node_scales_grants() {
        let c = two_node_cluster();
        let g = c.cpu_grants();
        // Node 0: three busy VMs want 6 cores of 4 -> each gets 4/6*2.
        for i in 0..3 {
            assert!((g[i] - 4.0 / 3.0).abs() < 1e-9);
        }
        // Node 1: single VM gets its full cap.
        assert!((g[3] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn idle_vms_get_nothing() {
        let mut c = two_node_cluster();
        c.vms[0] = SimVm::new("a", 0, 2.0); // idle replacement
        let g = c.cpu_grants();
        assert_eq!(g[0], 0.0);
        // Remaining two busy VMs fit in 4 cores: full caps.
        assert!((g[1] - 2.0).abs() < 1e-9);
        assert!((g[2] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn caps_bound_grants() {
        let mut c = two_node_cluster();
        c.vms[3].set_cap(3.0);
        let g = c.cpu_grants();
        assert!((g[3] - 3.0).abs() < 1e-9);
        c.vms[3].set_cap(0.5);
        let g = c.cpu_grants();
        assert!((g[3] - 0.5).abs() < 1e-9);
    }
}
