//! Requests and their multi-tier service stages.

use serde::{Deserialize, Serialize};

/// Identifies which wiki deployment a request belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Wiki {
    /// wiki-one: 4 Apache, 2 memcached, 1 DB (the larger deployment).
    One,
    /// wiki-two: 2 Apache, 1 memcached, 1 DB.
    Two,
}

impl Wiki {
    /// Both wikis.
    pub const ALL: [Wiki; 2] = [Wiki::One, Wiki::Two];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Wiki::One => "wiki-one",
            Wiki::Two => "wiki-two",
        }
    }
}

/// One service stage of a request: CPU work (in core-seconds) at a VM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// VM index within the cluster.
    pub vm: usize,
    /// CPU work in core-seconds.
    pub work: f64,
}

/// A request flowing through the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Which wiki the request targets.
    pub wiki: Wiki,
    /// Arrival time, seconds since simulation start.
    pub arrival: f64,
    /// The tier stages, traversed in order.
    pub stages: Vec<Stage>,
    /// Index of the stage currently in service.
    pub current_stage: usize,
}

impl Request {
    /// Creates a request at the first stage.
    pub fn new(wiki: Wiki, arrival: f64, stages: Vec<Stage>) -> Self {
        Request {
            wiki,
            arrival,
            stages,
            current_stage: 0,
        }
    }

    /// The stage currently in service, or `None` when finished.
    pub fn stage(&self) -> Option<&Stage> {
        self.stages.get(self.current_stage)
    }

    /// Advances to the next stage; returns `true` if the request is done.
    pub fn advance(&mut self) -> bool {
        self.current_stage += 1;
        self.current_stage >= self.stages.len()
    }

    /// Total CPU work across all stages.
    pub fn total_work(&self) -> f64 {
        self.stages.iter().map(|s| s.work).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_traversal() {
        let mut r = Request::new(
            Wiki::One,
            1.5,
            vec![Stage { vm: 0, work: 0.1 }, Stage { vm: 3, work: 0.2 }],
        );
        assert_eq!(r.stage().unwrap().vm, 0);
        assert!(!r.advance());
        assert_eq!(r.stage().unwrap().vm, 3);
        assert!(r.advance());
        assert!(r.stage().is_none());
        assert!((r.total_work() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn wiki_names() {
        assert_eq!(Wiki::One.name(), "wiki-one");
        assert_eq!(Wiki::Two.name(), "wiki-two");
        assert_eq!(Wiki::ALL.len(), 2);
    }
}
