//! The load generator: open-loop Poisson arrivals alternating hourly
//! between low and high intensity (paper Section V-B: "requests
//! alternating between low and high intensity periods, each lasting one
//! hour").

use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, Exp};
use serde::{Deserialize, Serialize};

use crate::request::{Request, Stage, Wiki};

/// Service-demand parameters for one wiki's tiers (all in core-seconds,
/// exponentially distributed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceProfile {
    /// Mean Apache (application server) CPU work per request.
    pub apache_mean: f64,
    /// Mean memcached work on a cache hit.
    pub memcached_mean: f64,
    /// Mean MySQL work on a cache miss.
    pub mysql_mean: f64,
    /// Cache hit probability.
    pub hit_ratio: f64,
}

impl Default for ServiceProfile {
    fn default() -> Self {
        ServiceProfile {
            apache_mean: 0.12,
            memcached_mean: 0.01,
            mysql_mean: 0.10,
            hit_ratio: 0.8,
        }
    }
}

/// Workload configuration for one wiki.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WikiWorkload {
    /// Which wiki this drives.
    pub wiki: Wiki,
    /// Arrival rate during low-intensity hours, requests/second.
    pub low_rate: f64,
    /// Arrival rate during high-intensity hours, requests/second.
    pub high_rate: f64,
    /// Intensity period length in seconds (paper: one hour).
    pub period_seconds: f64,
    /// Tier service demands.
    pub profile: ServiceProfile,
}

impl WikiWorkload {
    /// The arrival rate at time `t` (low in even periods, high in odd).
    pub fn rate_at(&self, t: f64) -> f64 {
        let period = (t / self.period_seconds) as u64;
        if period.is_multiple_of(2) {
            self.low_rate
        } else {
            self.high_rate
        }
    }
}

/// Generates the requests of one wiki for a tick.
///
/// `apache_vms`/`memcached_vms`/`db_vm` are the wiki's tier VM indices;
/// the load balancer round-robins Apache, memcached instances are chosen
/// round-robin as well.
#[derive(Debug)]
pub struct LoadGenerator {
    workload: WikiWorkload,
    apache_vms: Vec<usize>,
    memcached_vms: Vec<usize>,
    db_vm: usize,
    apache_rr: usize,
    memcached_rr: usize,
}

impl LoadGenerator {
    /// Creates a generator for a wiki's tier placement.
    ///
    /// # Panics
    ///
    /// Panics if `apache_vms` or `memcached_vms` is empty.
    pub fn new(
        workload: WikiWorkload,
        apache_vms: Vec<usize>,
        memcached_vms: Vec<usize>,
        db_vm: usize,
    ) -> Self {
        assert!(!apache_vms.is_empty(), "need at least one Apache VM");
        assert!(!memcached_vms.is_empty(), "need at least one memcached VM");
        LoadGenerator {
            workload,
            apache_vms,
            memcached_vms,
            db_vm,
            apache_rr: 0,
            memcached_rr: 0,
        }
    }

    /// The workload definition.
    pub fn workload(&self) -> &WikiWorkload {
        &self.workload
    }

    /// Samples the requests arriving in `[t, t + tick)`.
    pub fn generate_tick(&mut self, t: f64, tick: f64, rng: &mut StdRng) -> Vec<Request> {
        let rate = self.workload.rate_at(t);
        let expected = rate * tick;
        // Sample a Poisson count via inter-arrival thinning for small
        // expected counts (tick << 1/rate is typical).
        let count = sample_poisson(expected, rng);
        (0..count)
            .map(|k| {
                let arrival = t + tick * (k as f64 + rng.gen::<f64>()) / count as f64;
                self.build_request(arrival.min(t + tick), rng)
            })
            .collect()
    }

    fn build_request(&mut self, arrival: f64, rng: &mut StdRng) -> Request {
        let p = &self.workload.profile;
        let apache = self.apache_vms[self.apache_rr % self.apache_vms.len()];
        self.apache_rr += 1;

        let mut stages = vec![Stage {
            vm: apache,
            work: sample_exp(p.apache_mean, rng),
        }];
        if rng.gen::<f64>() < p.hit_ratio {
            let mc = self.memcached_vms[self.memcached_rr % self.memcached_vms.len()];
            self.memcached_rr += 1;
            stages.push(Stage {
                vm: mc,
                work: sample_exp(p.memcached_mean, rng),
            });
        } else {
            stages.push(Stage {
                vm: self.db_vm,
                work: sample_exp(p.mysql_mean, rng),
            });
        }
        Request::new(self.workload.wiki, arrival, stages)
    }
}

fn sample_exp(mean: f64, rng: &mut StdRng) -> f64 {
    Exp::new(1.0 / mean.max(1e-9))
        .expect("positive rate")
        .sample(rng)
}

/// Knuth-style Poisson sampling, adequate for the small per-tick means
/// used here.
fn sample_poisson(mean: f64, rng: &mut StdRng) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let limit = (-mean).exp();
    let mut product: f64 = rng.gen();
    let mut count = 0usize;
    while product > limit {
        count += 1;
        product *= rng.gen::<f64>();
        if count > 10_000 {
            break; // absurd mean; cap defensively
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn workload() -> WikiWorkload {
        WikiWorkload {
            wiki: Wiki::One,
            low_rate: 5.0,
            high_rate: 25.0,
            period_seconds: 3600.0,
            profile: ServiceProfile::default(),
        }
    }

    #[test]
    fn rate_alternates_hourly() {
        let w = workload();
        assert_eq!(w.rate_at(0.0), 5.0);
        assert_eq!(w.rate_at(3599.0), 5.0);
        assert_eq!(w.rate_at(3600.0), 25.0);
        assert_eq!(w.rate_at(7300.0), 5.0);
    }

    #[test]
    fn poisson_mean_approximately_right() {
        let mut rng = StdRng::seed_from_u64(1);
        let total: usize = (0..20_000).map(|_| sample_poisson(0.5, &mut rng)).sum();
        let mean = total as f64 / 20_000.0;
        assert!((mean - 0.5).abs() < 0.05, "poisson mean {mean}");
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn generated_requests_have_valid_structure() {
        let mut gen = LoadGenerator::new(workload(), vec![0, 1], vec![2], 3);
        let mut rng = StdRng::seed_from_u64(2);
        let mut total = 0usize;
        let mut db_requests = 0usize;
        for i in 0..5000 {
            let t = i as f64 * 0.1;
            for r in gen.generate_tick(t, 0.1, &mut rng) {
                total += 1;
                assert_eq!(r.stages.len(), 2);
                assert!([0, 1].contains(&r.stages[0].vm), "apache tier first");
                assert!(r.arrival >= t && r.arrival <= t + 0.1);
                assert!(r.stages.iter().all(|s| s.work > 0.0));
                if r.stages[1].vm == 3 {
                    db_requests += 1;
                }
            }
        }
        // 500 s at 5 req/s ≈ 2500 requests.
        assert!((2000..3000).contains(&total), "total {total}");
        // Cache misses ≈ 20%.
        let miss = db_requests as f64 / total as f64;
        assert!((0.15..0.25).contains(&miss), "miss ratio {miss}");
    }

    #[test]
    fn round_robin_balances_apache() {
        let mut gen = LoadGenerator::new(workload(), vec![0, 1], vec![2], 3);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 2];
        for i in 0..2000 {
            for r in gen.generate_tick(i as f64, 1.0, &mut rng) {
                counts[r.stages[0].vm] += 1;
            }
        }
        let diff = counts[0].abs_diff(counts[1]);
        assert!(diff <= 1, "round robin imbalance {counts:?}");
    }

    #[test]
    #[should_panic(expected = "need at least one Apache VM")]
    fn empty_tier_rejected() {
        LoadGenerator::new(workload(), vec![], vec![1], 2);
    }
}
