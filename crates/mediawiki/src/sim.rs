//! The tick-based simulation loop.
//!
//! Time advances in small fixed ticks. Each tick: new requests arrive
//! (open loop), every node arbitrates CPU among its busy VMs, every VM
//! runs processor-sharing over its job queue, and completed stages move
//! requests onward. Per-VM CPU consumption is integrated per ticketing
//! window, producing exactly the usage-series/ticket semantics of the
//! data-center traces.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::cluster::Cluster;
use crate::error::{SimError, SimResult};
use crate::request::{Request, Wiki};
use crate::vm::Job;
use crate::workload::LoadGenerator;

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Total simulated time in seconds (paper experiment: ~6 hours).
    pub duration_seconds: f64,
    /// Tick length in seconds (CPU arbitration granularity).
    pub tick_seconds: f64,
    /// Ticketing window length in seconds (paper: 900 = 15 minutes).
    pub window_seconds: f64,
    /// RNG seed.
    pub seed: u64,
    /// Front-end queue cap: arriving requests finding this many jobs at
    /// their Apache VM are dropped (timeout). 0 disables dropping.
    pub max_frontend_queue: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            duration_seconds: 6.0 * 3600.0,
            tick_seconds: 0.05,
            window_seconds: 900.0,
            seed: 0xD51,
            max_frontend_queue: 30,
        }
    }
}

impl SimConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] on non-positive durations or a
    /// tick no smaller than the window.
    pub fn validate(&self) -> SimResult<()> {
        if self.duration_seconds <= 0.0 || self.duration_seconds.is_nan() {
            return Err(SimError::InvalidConfig("duration must be positive"));
        }
        if self.tick_seconds <= 0.0 || self.tick_seconds.is_nan() {
            return Err(SimError::InvalidConfig("tick must be positive"));
        }
        if self.window_seconds < self.tick_seconds {
            return Err(SimError::InvalidConfig(
                "window must cover at least one tick",
            ));
        }
        Ok(())
    }
}

/// One finished request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompletedRequest {
    /// Which wiki served it.
    pub wiki: Wiki,
    /// Arrival time in seconds.
    pub arrival: f64,
    /// Completion time in seconds.
    pub finish: f64,
}

impl CompletedRequest {
    /// Response time in seconds.
    pub fn response_time(&self) -> f64 {
        self.finish - self.arrival
    }
}

/// Everything a simulation run produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutput {
    /// VM names, aligned with the per-VM vectors below.
    pub vm_names: Vec<String>,
    /// Per VM: CPU utilization percent (of the VM's *cap*) per ticketing
    /// window.
    pub usage_pct: Vec<Vec<f64>>,
    /// Per VM: mean CPU demand in cores per ticketing window (consumed
    /// core-seconds / window length).
    pub demand_cores: Vec<Vec<f64>>,
    /// The caps in force during the run, per VM (cores).
    pub caps: Vec<f64>,
    /// Completed requests.
    pub completed: Vec<CompletedRequest>,
    /// Requests dropped at a full front-end queue, per wiki
    /// `[wiki-one, wiki-two]`.
    pub dropped: [usize; 2],
}

impl SimOutput {
    /// Completed requests of one wiki.
    pub fn completed_for(&self, wiki: Wiki) -> Vec<&CompletedRequest> {
        self.completed.iter().filter(|c| c.wiki == wiki).collect()
    }

    /// Tickets for one VM under a usage threshold (percent).
    pub fn vm_tickets(&self, vm: usize, threshold_pct: f64) -> usize {
        self.usage_pct[vm]
            .iter()
            .filter(|&&u| u > threshold_pct)
            .count()
    }

    /// Total tickets across all VMs under a threshold.
    pub fn tickets(&self, threshold_pct: f64) -> usize {
        (0..self.vm_names.len())
            .map(|v| self.vm_tickets(v, threshold_pct))
            .sum()
    }
}

/// Runs the simulation: drives `generators` against `cluster` for the
/// configured duration. The cluster's current VM caps are honoured
/// throughout (set caps before calling to simulate a resized run).
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for bad parameters.
pub fn run(
    mut cluster: Cluster,
    mut generators: Vec<LoadGenerator>,
    config: &SimConfig,
) -> SimResult<SimOutput> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let tick = config.tick_seconds;
    let ticks = (config.duration_seconds / tick).round() as usize;
    let ticks_per_window = (config.window_seconds / tick).round() as usize;

    let vm_count = cluster.vms.len();
    let mut usage_pct: Vec<Vec<f64>> = vec![Vec::new(); vm_count];
    let mut demand_cores: Vec<Vec<f64>> = vec![Vec::new(); vm_count];
    let mut completed = Vec::new();
    let mut dropped = [0usize; 2];

    // In-flight requests; slots are reused via a free list.
    let mut requests: Vec<Option<Request>> = Vec::new();
    let mut free_slots: Vec<usize> = Vec::new();

    for tick_index in 0..ticks {
        let now = tick_index as f64 * tick;

        // 1. Arrivals.
        for generator in &mut generators {
            for request in generator.generate_tick(now, tick, &mut rng) {
                let first = request.stage().expect("requests have stages");
                let vm = first.vm;
                if config.max_frontend_queue > 0
                    && cluster.vms[vm].queue_len() >= config.max_frontend_queue
                {
                    dropped[match request.wiki {
                        Wiki::One => 0,
                        Wiki::Two => 1,
                    }] += 1;
                    continue;
                }
                let slot = free_slots.pop().unwrap_or_else(|| {
                    requests.push(None);
                    requests.len() - 1
                });
                cluster.vms[vm].enqueue(Job {
                    request: slot,
                    remaining: first.work,
                });
                requests[slot] = Some(request);
            }
        }

        // 2. CPU arbitration and PS execution.
        let grants = cluster.cpu_grants();
        let mut moves: Vec<(usize, usize, f64)> = Vec::new(); // (slot, vm, work)
        for (v, vm) in cluster.vms.iter_mut().enumerate() {
            for slot in vm.run_tick(grants[v], tick) {
                let request = requests[slot].as_mut().expect("slot in flight");
                if request.advance() {
                    completed.push(CompletedRequest {
                        wiki: request.wiki,
                        arrival: request.arrival,
                        finish: now + tick,
                    });
                    requests[slot] = None;
                    free_slots.push(slot);
                } else {
                    let stage = request.stage().expect("not finished");
                    moves.push((slot, stage.vm, stage.work));
                }
            }
        }
        for (slot, vm, work) in moves {
            cluster.vms[vm].enqueue(Job {
                request: slot,
                remaining: work,
            });
        }

        // 3. Window accounting.
        if (tick_index + 1) % ticks_per_window == 0 {
            for (v, vm) in cluster.vms.iter_mut().enumerate() {
                let used = vm.drain_window_usage();
                let mean_cores = used / config.window_seconds;
                demand_cores[v].push(mean_cores);
                usage_pct[v].push(mean_cores / vm.cap_cores * 100.0);
            }
        }
    }

    Ok(SimOutput {
        vm_names: cluster.vms.iter().map(|vm| vm.name.clone()).collect(),
        usage_pct,
        demand_cores,
        caps: cluster.vms.iter().map(|vm| vm.cap_cores).collect(),
        completed,
        dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Node;
    use crate::request::Wiki;
    use crate::vm::SimVm;
    use crate::workload::{LoadGenerator, ServiceProfile, WikiWorkload};

    fn tiny_cluster() -> Cluster {
        Cluster {
            nodes: vec![Node {
                name: "n0".into(),
                cores: 8.0,
            }],
            vms: vec![
                SimVm::new("apache", 0, 2.0),
                SimVm::new("mc", 0, 2.0),
                SimVm::new("db", 0, 2.0),
            ],
        }
    }

    fn generator(rate: f64) -> LoadGenerator {
        LoadGenerator::new(
            WikiWorkload {
                wiki: Wiki::One,
                low_rate: rate,
                high_rate: rate,
                period_seconds: 1e9,
                profile: ServiceProfile::default(),
            },
            vec![0],
            vec![1],
            2,
        )
    }

    fn config(duration: f64) -> SimConfig {
        SimConfig {
            duration_seconds: duration,
            tick_seconds: 0.05,
            window_seconds: 60.0,
            seed: 42,
            max_frontend_queue: 0,
        }
    }

    #[test]
    fn conservation_arrivals_equal_completions_plus_inflight_plus_drops() {
        // Low load, long run: nearly everything completes.
        let out = run(tiny_cluster(), vec![generator(4.0)], &config(600.0)).unwrap();
        let expected = 4.0 * 600.0;
        let completed = out.completed.len() as f64;
        assert!(
            (completed - expected).abs() < expected * 0.1,
            "completed {completed} vs offered {expected}"
        );
        assert_eq!(out.dropped, [0, 0]);
    }

    #[test]
    fn response_times_exceed_service_times() {
        let out = run(tiny_cluster(), vec![generator(4.0)], &config(300.0)).unwrap();
        for c in &out.completed {
            assert!(c.response_time() > 0.0);
            assert!(c.finish >= c.arrival);
        }
        // Mean RT at low load ≈ service/speed: apache 0.12/2 + backend,
        // plus a couple of tick quantizations — well under a second.
        let mean_rt: f64 = out.completed.iter().map(|c| c.response_time()).sum::<f64>()
            / out.completed.len() as f64;
        assert!(mean_rt < 0.5, "mean RT {mean_rt}");
    }

    #[test]
    fn utilization_matches_load() {
        // λ = 8/s, apache work 0.12 -> apache demand 0.96 cores = 48% of 2.
        let out = run(tiny_cluster(), vec![generator(8.0)], &config(600.0)).unwrap();
        let apache_usage: f64 =
            out.usage_pct[0].iter().sum::<f64>() / out.usage_pct[0].len() as f64;
        assert!(
            (35.0..60.0).contains(&apache_usage),
            "apache usage {apache_usage}%"
        );
        // memcached load is tiny.
        let mc_usage: f64 = out.usage_pct[1].iter().sum::<f64>() / out.usage_pct[1].len() as f64;
        assert!(mc_usage < 10.0);
    }

    #[test]
    fn windows_are_counted_correctly() {
        let out = run(tiny_cluster(), vec![generator(2.0)], &config(300.0)).unwrap();
        // 300 s / 60 s windows = 5 windows per VM.
        for v in 0..3 {
            assert_eq!(out.usage_pct[v].len(), 5);
            assert_eq!(out.demand_cores[v].len(), 5);
        }
    }

    #[test]
    fn overload_saturates_at_cap_and_drops() {
        // λ = 30/s × 0.12 = 3.6 cores demanded of a 2-core cap.
        let mut cfg = config(300.0);
        cfg.max_frontend_queue = 20;
        let out = run(tiny_cluster(), vec![generator(30.0)], &cfg).unwrap();
        let apache_usage: f64 =
            out.usage_pct[0].iter().sum::<f64>() / out.usage_pct[0].len() as f64;
        assert!(apache_usage > 90.0, "saturated usage {apache_usage}%");
        assert!(out.dropped[0] > 0, "no drops under overload");
        // Throughput is capped near cap/work = 16.7/s.
        let tput = out.completed.len() as f64 / 300.0;
        assert!(tput < 20.0, "tput {tput} exceeds capacity");
    }

    #[test]
    fn raising_cap_reduces_usage_percent() {
        let mut hot = tiny_cluster();
        hot.vms[0].set_cap(2.0);
        let base = run(hot, vec![generator(12.0)], &config(300.0)).unwrap();
        let mut resized = tiny_cluster();
        resized.vms[0].set_cap(4.0);
        let better = run(resized, vec![generator(12.0)], &config(300.0)).unwrap();
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(
            mean(&better.usage_pct[0]) < mean(&base.usage_pct[0]),
            "usage did not drop with a larger cap"
        );
        // Tickets at 60% drop accordingly.
        assert!(better.tickets(60.0) <= base.tickets(60.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(tiny_cluster(), vec![generator(5.0)], &config(120.0)).unwrap();
        let b = run(tiny_cluster(), vec![generator(5.0)], &config(120.0)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn config_validation() {
        let mut c = config(10.0);
        c.duration_seconds = 0.0;
        assert!(c.validate().is_err());
        let mut c = config(10.0);
        c.tick_seconds = 0.0;
        assert!(c.validate().is_err());
        let mut c = config(10.0);
        c.window_seconds = 0.01;
        assert!(c.validate().is_err());
    }
}
