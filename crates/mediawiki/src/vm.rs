//! A simulated VM: a processor-sharing CPU server with a cgroups-like
//! capacity cap.
//!
//! Jobs (request stages) share the VM's granted CPU equally within each
//! tick. The *cap* models the cgroups CPU limit the paper's actuation
//! daemon sets — it can be changed on the fly without disturbing running
//! jobs, exactly the advantage the paper cites for cgroups over virtual
//! hardware resizing.

use serde::{Deserialize, Serialize};

/// A job in a VM's run queue: remaining CPU work for one request stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Index of the owning request in the simulator's in-flight table.
    pub request: usize,
    /// Remaining CPU work in core-seconds.
    pub remaining: f64,
}

/// A simulated VM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimVm {
    /// VM name (e.g. `"w1-apache0"`).
    pub name: String,
    /// Physical node hosting the VM.
    pub node: usize,
    /// Originally allocated virtual CPU, in cores (the paper's VMs have 2
    /// virtual CPUs).
    pub allocated_cores: f64,
    /// Current cgroups cap in cores (defaults to `allocated_cores`).
    pub cap_cores: f64,
    /// Run queue.
    queue: Vec<Job>,
    /// CPU consumed in the current ticketing window, core-seconds.
    window_used: f64,
}

impl SimVm {
    /// Creates an idle VM with cap = allocated.
    pub fn new(name: impl Into<String>, node: usize, allocated_cores: f64) -> Self {
        SimVm {
            name: name.into(),
            node,
            allocated_cores,
            cap_cores: allocated_cores,
            queue: Vec::new(),
            window_used: 0.0,
        }
    }

    /// Number of queued jobs.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the VM has work.
    pub fn is_busy(&self) -> bool {
        !self.queue.is_empty()
    }

    /// CPU the VM wants this tick: its cap when busy, 0 when idle.
    pub fn cpu_wanted(&self) -> f64 {
        if self.is_busy() {
            self.cap_cores
        } else {
            0.0
        }
    }

    /// Enqueues a job.
    pub fn enqueue(&mut self, job: Job) {
        self.queue.push(job);
    }

    /// Runs the VM for `tick` seconds with `granted` cores of CPU
    /// (processor sharing with water-filling so short jobs release their
    /// share to longer ones). Returns the indices of completed requests.
    pub fn run_tick(&mut self, granted: f64, tick: f64) -> Vec<usize> {
        if self.queue.is_empty() || granted <= 0.0 {
            return Vec::new();
        }
        let mut budget = granted * tick; // core-seconds this tick
                                         // Water-filling PS: repeatedly give every remaining job an equal
                                         // share; jobs that finish early release the surplus.
        let mut remaining: Vec<f64> = self.queue.iter().map(|j| j.remaining).collect();
        let mut active: Vec<usize> = (0..remaining.len()).collect();
        while budget > 1e-12 && !active.is_empty() {
            let share = budget / active.len() as f64;
            let mut next_active = Vec::with_capacity(active.len());
            let mut spent = 0.0;
            for &i in &active {
                let used = remaining[i].min(share);
                remaining[i] -= used;
                spent += used;
                if remaining[i] > 1e-12 {
                    next_active.push(i);
                }
            }
            budget -= spent;
            if spent <= 1e-15 {
                break;
            }
            active = next_active;
        }
        let consumed = granted * tick - budget;
        self.window_used += consumed;

        // Collect completions and compact the queue.
        let mut done = Vec::new();
        let mut kept = Vec::with_capacity(self.queue.len());
        for (i, job) in self.queue.iter().enumerate() {
            if remaining[i] <= 1e-12 {
                done.push(job.request);
            } else {
                kept.push(Job {
                    request: job.request,
                    remaining: remaining[i],
                });
            }
        }
        self.queue = kept;
        done
    }

    /// Reads and resets the CPU consumed in the current window;
    /// returns core-seconds.
    pub fn drain_window_usage(&mut self) -> f64 {
        std::mem::replace(&mut self.window_used, 0.0)
    }

    /// Sets the cgroups cap (clamped to a small positive minimum so a VM
    /// is never fully starved).
    pub fn set_cap(&mut self, cap_cores: f64) {
        self.cap_cores = cap_cores.max(0.05);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_job_runs_at_full_grant() {
        let mut vm = SimVm::new("vm", 0, 2.0);
        vm.enqueue(Job {
            request: 7,
            remaining: 0.2,
        });
        // 2 cores for 0.05 s = 0.1 core-seconds: half the job.
        assert!(vm.run_tick(2.0, 0.05).is_empty());
        assert_eq!(vm.queue_len(), 1);
        // Another identical tick finishes it.
        assert_eq!(vm.run_tick(2.0, 0.05), vec![7]);
        assert!(!vm.is_busy());
        assert!((vm.drain_window_usage() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn processor_sharing_splits_equally() {
        let mut vm = SimVm::new("vm", 0, 1.0);
        vm.enqueue(Job {
            request: 1,
            remaining: 0.5,
        });
        vm.enqueue(Job {
            request: 2,
            remaining: 0.5,
        });
        // 1 core for 0.5 s = 0.5 core-seconds -> each job gets 0.25.
        assert!(vm.run_tick(1.0, 0.5).is_empty());
        for j in &vm.queue {
            assert!((j.remaining - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn water_filling_releases_surplus() {
        let mut vm = SimVm::new("vm", 0, 1.0);
        vm.enqueue(Job {
            request: 1,
            remaining: 0.1,
        });
        vm.enqueue(Job {
            request: 2,
            remaining: 1.0,
        });
        // Budget 0.6: equal shares 0.3 each, job 1 only needs 0.1, the
        // surplus 0.2 goes to job 2 -> job 2 gets 0.5.
        let done = vm.run_tick(1.0, 0.6);
        assert_eq!(done, vec![1]);
        assert_eq!(vm.queue_len(), 1);
        assert!((vm.queue[0].remaining - 0.5).abs() < 1e-9);
    }

    #[test]
    fn usage_accounting_counts_only_work_done() {
        let mut vm = SimVm::new("vm", 0, 4.0);
        vm.enqueue(Job {
            request: 1,
            remaining: 0.1,
        });
        // Grant far exceeds remaining work: only 0.1 core-seconds consumed.
        vm.run_tick(4.0, 1.0);
        assert!((vm.drain_window_usage() - 0.1).abs() < 1e-9);
        // Drain resets.
        assert_eq!(vm.drain_window_usage(), 0.0);
    }

    #[test]
    fn idle_vm_wants_nothing() {
        let mut vm = SimVm::new("vm", 0, 2.0);
        assert_eq!(vm.cpu_wanted(), 0.0);
        assert!(vm.run_tick(2.0, 0.1).is_empty());
        vm.enqueue(Job {
            request: 1,
            remaining: 1.0,
        });
        assert_eq!(vm.cpu_wanted(), 2.0);
    }

    #[test]
    fn cap_changes_apply_and_clamp() {
        let mut vm = SimVm::new("vm", 0, 2.0);
        vm.set_cap(3.5);
        assert_eq!(vm.cap_cores, 3.5);
        vm.set_cap(0.0);
        assert!(vm.cap_cores > 0.0);
        assert_eq!(vm.allocated_cores, 2.0);
    }
}
