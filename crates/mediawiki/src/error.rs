use std::error::Error;
use std::fmt;

/// Errors produced by the MediaWiki testbed simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration value is out of range.
    InvalidConfig(&'static str),
    /// A VM or node index is out of range.
    UnknownComponent(String),
    /// A capacity cap is invalid (non-finite or non-positive) for a
    /// specific VM. Carries enough context to identify the offender.
    InvalidCap {
        /// Name of the VM the cap was meant for.
        vm: String,
        /// Index of the cap within the apply request.
        index: usize,
        /// The offending value.
        cap: f64,
    },
    /// A transient actuation fault (injected by
    /// [`FlakyActuator`](crate::actuator::FlakyActuator), or a real
    /// daemon timing out); retrying the same request may succeed.
    Transient(&'static str),
    /// The resizing step failed.
    Resize(String),
    /// The simulation produced no completed requests for a required
    /// metric.
    NoData(&'static str),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            SimError::UnknownComponent(name) => write!(f, "unknown component: {name}"),
            SimError::InvalidCap { vm, index, cap } => {
                write!(f, "invalid cap {cap} for VM `{vm}` (index {index})")
            }
            SimError::Transient(what) => write!(f, "transient actuation fault: {what}"),
            SimError::Resize(e) => write!(f, "resize failed: {e}"),
            SimError::NoData(what) => write!(f, "no data for metric: {what}"),
        }
    }
}

impl Error for SimError {}

/// Convenience alias for results in this crate.
pub type SimResult<T> = Result<T, SimError>;
