use std::error::Error;
use std::fmt;

/// Errors produced by the MediaWiki testbed simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration value is out of range.
    InvalidConfig(&'static str),
    /// A VM or node index is out of range.
    UnknownComponent(String),
    /// The resizing step failed.
    Resize(String),
    /// The simulation produced no completed requests for a required
    /// metric.
    NoData(&'static str),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            SimError::UnknownComponent(name) => write!(f, "unknown component: {name}"),
            SimError::Resize(e) => write!(f, "resize failed: {e}"),
            SimError::NoData(what) => write!(f, "no data for metric: {what}"),
        }
    }
}

impl Error for SimError {}

/// Convenience alias for results in this crate.
pub type SimResult<T> = Result<T, SimError>;
