//! Capacity actuation — the abstraction over the paper's cgroups daemon.
//!
//! The paper enforces ATM's capacity decisions with Linux control groups:
//! a small per-hypervisor daemon exposes the limits through a web API, and
//! caps change *on the fly* without restarting guests (Section IV-C).
//! [`CapacityActuator`] is that interface; [`SimulatedCgroups`] applies
//! caps to a simulated [`Cluster`] and keeps an audit log, standing in for
//! the real daemon. [`FlakyActuator`] wraps any actuator with seeded
//! transient-failure and partial-apply injection for robustness testing;
//! [`CrashingActuator`] goes further and panics mid-apply on a scripted
//! call, for exercising crash-recovery supervisors.

use serde::{Deserialize, Serialize};

use crate::cluster::Cluster;
use crate::error::{SimError, SimResult};

/// One applied capacity change, for audit/inspection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapChange {
    /// VM name.
    pub vm: String,
    /// Cap before the change, in cores.
    pub from_cores: f64,
    /// Cap after the change, in cores.
    pub to_cores: f64,
}

/// Applies per-VM capacity limits to some enforcement backend.
///
/// Implementations must be *non-disruptive*: applying caps never restarts
/// or pauses workloads (the cgroups property the paper relies on).
pub trait CapacityActuator {
    /// Applies `caps` (cores, one per VM in cluster order) and returns
    /// the changes actually made.
    ///
    /// # Errors
    ///
    /// Returns an error when the cap vector does not match the managed
    /// VM set or a cap is invalid (non-finite or non-positive).
    fn apply(&mut self, caps: &[f64]) -> SimResult<Vec<CapChange>>;

    /// The currently enforced caps, in cores.
    fn current(&self) -> Vec<f64>;
}

/// A cgroups-like actuator over a simulated [`Cluster`]: caps apply
/// immediately, jobs in flight are untouched, and every change is logged.
#[derive(Debug, Clone)]
pub struct SimulatedCgroups {
    cluster: Cluster,
    log: Vec<CapChange>,
}

impl SimulatedCgroups {
    /// Wraps a cluster for actuation.
    pub fn new(cluster: Cluster) -> Self {
        SimulatedCgroups {
            cluster,
            log: Vec::new(),
        }
    }

    /// The audit log of all applied changes, oldest first.
    pub fn log(&self) -> &[CapChange] {
        &self.log
    }

    /// Returns the managed cluster, consuming the actuator.
    pub fn into_cluster(self) -> Cluster {
        self.cluster
    }

    /// Borrows the managed cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }
}

impl CapacityActuator for SimulatedCgroups {
    /// Applies the cap vector **atomically**: the whole request is
    /// validated before any VM is touched, so an invalid request leaves
    /// every cap (and the audit log) exactly as it was — there is no
    /// partially-applied state to roll back. Invalid caps are reported
    /// with the offending VM's name and index.
    fn apply(&mut self, caps: &[f64]) -> SimResult<Vec<CapChange>> {
        if caps.len() != self.cluster.vms.len() {
            return Err(SimError::InvalidConfig("cap count != VM count"));
        }
        for (index, &cap) in caps.iter().enumerate() {
            if !cap.is_finite() || cap <= 0.0 {
                return Err(SimError::InvalidCap {
                    vm: self.cluster.vms[index].name.clone(),
                    index,
                    cap,
                });
            }
        }
        let mut changes = Vec::new();
        for (vm, &cap) in self.cluster.vms.iter_mut().zip(caps) {
            let from = vm.cap_cores;
            if (from - cap).abs() > 1e-12 {
                vm.set_cap(cap);
                changes.push(CapChange {
                    vm: vm.name.clone(),
                    from_cores: from,
                    to_cores: vm.cap_cores,
                });
            }
        }
        self.log.extend(changes.iter().cloned());
        Ok(changes)
    }

    fn current(&self) -> Vec<f64> {
        self.cluster.vms.iter().map(|vm| vm.cap_cores).collect()
    }
}

/// Failure-injection settings for [`FlakyActuator`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlakyConfig {
    /// Probability that an `apply` fails outright with
    /// [`SimError::Transient`] before touching any cap.
    pub failure_probability: f64,
    /// Probability that an `apply` lands only a *prefix* of the cap
    /// vector before failing — the messy real-world case a retrying
    /// caller must tolerate.
    pub partial_probability: f64,
    /// RNG seed; the failure schedule is a pure function of this seed
    /// and the call sequence.
    pub seed: u64,
}

impl Default for FlakyConfig {
    fn default() -> Self {
        FlakyConfig {
            failure_probability: 0.2,
            partial_probability: 0.05,
            seed: 0xF1A_C7,
        }
    }
}

impl FlakyConfig {
    /// Validates the probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] unless both probabilities are
    /// in `[0, 1]` and sum to at most 1.
    pub fn validate(&self) -> SimResult<()> {
        let ok = |p: f64| (0.0..=1.0).contains(&p);
        if !ok(self.failure_probability) || !ok(self.partial_probability) {
            return Err(SimError::InvalidConfig(
                "flaky probabilities must be in [0, 1]",
            ));
        }
        if self.failure_probability + self.partial_probability > 1.0 {
            return Err(SimError::InvalidConfig(
                "flaky probabilities must sum to at most 1",
            ));
        }
        Ok(())
    }
}

/// Wraps any [`CapacityActuator`] with deterministic, seeded fault
/// injection: transient full failures and partial applies.
///
/// Because [`CapacityActuator::apply`] takes *absolute* caps, a retry
/// after either failure mode is idempotent — re-applying the same vector
/// heals a partial apply. This wrapper exists to exercise exactly that
/// retry logic (e.g. `atm-core`'s online loop) without a real flaky
/// daemon.
#[derive(Debug, Clone)]
pub struct FlakyActuator<A> {
    inner: A,
    config: FlakyConfig,
    rng: rand::rngs::StdRng,
    failures_injected: usize,
    partials_injected: usize,
}

impl<A: CapacityActuator> FlakyActuator<A> {
    /// Wraps `inner` with the given fault schedule.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for invalid probabilities.
    pub fn new(inner: A, config: FlakyConfig) -> SimResult<Self> {
        use rand::SeedableRng;
        config.validate()?;
        Ok(FlakyActuator {
            inner,
            config,
            rng: rand::rngs::StdRng::seed_from_u64(config.seed),
            failures_injected: 0,
            partials_injected: 0,
        })
    }

    /// Borrows the wrapped actuator.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Unwraps the inner actuator, discarding the fault schedule.
    pub fn into_inner(self) -> A {
        self.inner
    }

    /// Full transient failures injected so far.
    pub fn failures_injected(&self) -> usize {
        self.failures_injected
    }

    /// Partial applies injected so far.
    pub fn partials_injected(&self) -> usize {
        self.partials_injected
    }
}

impl<A: CapacityActuator> CapacityActuator for FlakyActuator<A> {
    fn apply(&mut self, caps: &[f64]) -> SimResult<Vec<CapChange>> {
        use rand::Rng;
        // Draw both values every call so the schedule stays aligned with
        // the call sequence regardless of which branch is taken.
        let roll: f64 = self.rng.gen();
        let prefix = self.rng.gen_range(0..caps.len().max(1));
        if roll < self.config.failure_probability {
            self.failures_injected += 1;
            return Err(SimError::Transient("injected failure before apply"));
        }
        if roll < self.config.failure_probability + self.config.partial_probability {
            // Land a prefix of the new caps, keep the rest as-is, then
            // report failure — the caller cannot tell how far we got.
            let current = self.inner.current();
            if current.len() == caps.len() && !caps.is_empty() {
                let mut landed = current;
                landed[..prefix].copy_from_slice(&caps[..prefix]);
                let _ = self.inner.apply(&landed);
            }
            self.partials_injected += 1;
            return Err(SimError::Transient("injected failure mid-apply"));
        }
        self.inner.apply(caps)
    }

    fn current(&self) -> Vec<f64> {
        self.inner.current()
    }
}

/// Wraps any [`CapacityActuator`] and records every apply on an
/// [`atm_obs::Obs`] handle: the `actuator.applies`,
/// `actuator.apply_failures`, and `actuator.caps_changed` counters. The
/// wrapper is transparent — results and enforced caps are exactly the
/// inner actuator's — so it can sit anywhere in an actuator stack (e.g.
/// around a [`FlakyActuator`] to count injected failures as seen by the
/// retry loop).
#[derive(Debug, Clone)]
pub struct ObservedActuator<A> {
    inner: A,
    obs: atm_obs::Obs,
}

impl<A: CapacityActuator> ObservedActuator<A> {
    /// Wraps `inner`, recording onto `obs`.
    pub fn new(inner: A, obs: atm_obs::Obs) -> Self {
        ObservedActuator { inner, obs }
    }

    /// Borrows the wrapped actuator.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Unwraps the inner actuator.
    pub fn into_inner(self) -> A {
        self.inner
    }
}

impl<A: CapacityActuator> CapacityActuator for ObservedActuator<A> {
    fn apply(&mut self, caps: &[f64]) -> SimResult<Vec<CapChange>> {
        self.obs.add("actuator.applies", 1);
        let result = self.inner.apply(caps);
        match &result {
            Ok(changes) => self.obs.add("actuator.caps_changed", changes.len() as u64),
            Err(_) => self.obs.add("actuator.apply_failures", 1),
        }
        result
    }

    fn current(&self) -> Vec<f64> {
        self.inner.current()
    }
}

/// Wraps any [`CapacityActuator`] and panics on the Nth `apply` call — a
/// daemon process dying *mid-window*, the crash mode checkpointed online
/// management must survive. Unlike [`FlakyActuator`], which returns
/// errors the retry loop handles, this kills the whole call stack; only
/// a supervisor with panic isolation (e.g. `atm-core`'s fleet
/// supervisor) turns it into a restart instead of an abort.
#[derive(Debug, Clone)]
pub struct CrashingActuator<A> {
    inner: A,
    calls: usize,
    panic_on_call: usize,
}

impl<A: CapacityActuator> CrashingActuator<A> {
    /// Panics on apply call number `panic_on_call` (1-based); `0` never
    /// panics.
    pub fn new(inner: A, panic_on_call: usize) -> Self {
        CrashingActuator {
            inner,
            calls: 0,
            panic_on_call,
        }
    }

    /// Apply calls made so far.
    pub fn calls(&self) -> usize {
        self.calls
    }

    /// Borrows the wrapped actuator.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: CapacityActuator> CapacityActuator for CrashingActuator<A> {
    fn apply(&mut self, caps: &[f64]) -> SimResult<Vec<CapChange>> {
        self.calls += 1;
        assert!(
            self.panic_on_call == 0 || self.calls != self.panic_on_call,
            "scripted daemon crash on apply call {}",
            self.calls
        );
        self.inner.apply(caps)
    }

    fn current(&self) -> Vec<f64> {
        self.inner.current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Node;
    use crate::vm::{Job, SimVm};

    fn cluster() -> Cluster {
        Cluster {
            nodes: vec![Node {
                name: "n0".into(),
                cores: 8.0,
            }],
            vms: vec![SimVm::new("a", 0, 2.0), SimVm::new("b", 0, 2.0)],
        }
    }

    #[test]
    fn applies_and_logs_changes() {
        let mut actuator = SimulatedCgroups::new(cluster());
        let changes = actuator.apply(&[3.0, 2.0]).unwrap();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].vm, "a");
        assert_eq!(changes[0].from_cores, 2.0);
        assert_eq!(changes[0].to_cores, 3.0);
        assert_eq!(actuator.current(), vec![3.0, 2.0]);
        assert_eq!(actuator.log().len(), 1);
        // Unchanged caps produce no log entries.
        let none = actuator.apply(&[3.0, 2.0]).unwrap();
        assert!(none.is_empty());
        assert_eq!(actuator.log().len(), 1);
    }

    #[test]
    fn validates_input() {
        let mut actuator = SimulatedCgroups::new(cluster());
        assert!(actuator.apply(&[1.0]).is_err());
        assert!(actuator.apply(&[0.0, 1.0]).is_err());
        assert!(actuator.apply(&[f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn invalid_cap_error_names_the_vm() {
        let mut actuator = SimulatedCgroups::new(cluster());
        match actuator.apply(&[3.0, -1.0]) {
            Err(SimError::InvalidCap { vm, index, cap }) => {
                assert_eq!(vm, "b");
                assert_eq!(index, 1);
                assert_eq!(cap, -1.0);
            }
            other => panic!("expected InvalidCap, got {other:?}"),
        }
    }

    #[test]
    fn rejects_invalid_requests_atomically() {
        // The first cap is valid, the second is not: after the rejection
        // NO cap may have changed and the audit log must stay empty.
        let mut actuator = SimulatedCgroups::new(cluster());
        assert!(actuator.apply(&[3.0, f64::INFINITY]).is_err());
        assert_eq!(actuator.current(), vec![2.0, 2.0]);
        assert!(actuator.log().is_empty());
    }

    #[test]
    fn flaky_schedule_is_deterministic() {
        let run = || {
            let mut flaky = FlakyActuator::new(
                SimulatedCgroups::new(cluster()),
                FlakyConfig {
                    failure_probability: 0.4,
                    partial_probability: 0.2,
                    seed: 7,
                },
            )
            .unwrap();
            (0..50)
                .map(|i| flaky.apply(&[1.0 + i as f64, 2.0]).is_ok())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn flaky_injects_at_roughly_the_configured_rate() {
        let mut flaky = FlakyActuator::new(
            SimulatedCgroups::new(cluster()),
            FlakyConfig {
                failure_probability: 0.25,
                partial_probability: 0.0,
                seed: 1,
            },
        )
        .unwrap();
        let mut failures = 0;
        for _ in 0..400 {
            if flaky.apply(&[3.0, 2.0]).is_err() {
                failures += 1;
            }
        }
        assert_eq!(failures, flaky.failures_injected());
        assert!(
            (60..=140).contains(&failures),
            "{failures}/400 failures at p=0.25"
        );
    }

    #[test]
    fn partial_apply_heals_on_retry() {
        let mut flaky = FlakyActuator::new(
            SimulatedCgroups::new(cluster()),
            FlakyConfig {
                failure_probability: 0.0,
                partial_probability: 0.5,
                seed: 3,
            },
        )
        .unwrap();
        let target = [5.0, 6.0];
        // Absolute caps make retries idempotent: keep retrying the same
        // vector until one apply succeeds; the end state must be exact.
        let mut attempts = 0;
        loop {
            attempts += 1;
            assert!(attempts < 100, "actuator never succeeded");
            if flaky.apply(&target).is_ok() {
                break;
            }
        }
        assert_eq!(flaky.current(), target.to_vec());
        assert!(flaky.partials_injected() >= 1 || attempts == 1);
    }

    #[test]
    fn zero_rate_flaky_is_transparent() {
        let mut plain = SimulatedCgroups::new(cluster());
        let mut flaky = FlakyActuator::new(
            SimulatedCgroups::new(cluster()),
            FlakyConfig {
                failure_probability: 0.0,
                partial_probability: 0.0,
                seed: 9,
            },
        )
        .unwrap();
        let plain_changes = plain.apply(&[4.0, 3.0]).unwrap();
        let flaky_changes = flaky.apply(&[4.0, 3.0]).unwrap();
        assert_eq!(plain_changes, flaky_changes);
        assert_eq!(plain.current(), flaky.current());
        assert_eq!(flaky.failures_injected(), 0);
        assert_eq!(flaky.partials_injected(), 0);
    }

    #[test]
    fn flaky_config_validation() {
        assert!(FlakyConfig::default().validate().is_ok());
        let bad = FlakyConfig {
            failure_probability: 0.8,
            partial_probability: 0.5,
            seed: 0,
        };
        assert!(FlakyActuator::new(SimulatedCgroups::new(cluster()), bad).is_err());
        let neg = FlakyConfig {
            failure_probability: -0.1,
            partial_probability: 0.0,
            seed: 0,
        };
        assert!(neg.validate().is_err());
    }

    #[test]
    fn crashing_actuator_panics_on_schedule() {
        let mut a = CrashingActuator::new(SimulatedCgroups::new(cluster()), 2);
        a.apply(&[3.0, 2.0]).unwrap();
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = a.apply(&[3.0, 2.0]);
        }));
        assert!(crashed.is_err(), "second apply should panic");

        // 0 disables crashing entirely.
        let mut quiet = CrashingActuator::new(SimulatedCgroups::new(cluster()), 0);
        for _ in 0..5 {
            quiet.apply(&[3.0, 2.0]).unwrap();
        }
        assert_eq!(quiet.calls(), 5);
        assert_eq!(quiet.inner().current(), vec![3.0, 2.0]);
    }

    #[test]
    fn observed_actuator_is_transparent_and_counts() {
        let obs = atm_obs::Obs::enabled(false);
        let mut observed = ObservedActuator::new(SimulatedCgroups::new(cluster()), obs.clone());
        let changes = observed.apply(&[3.0, 2.0]).unwrap();
        assert_eq!(changes.len(), 1);
        assert!(observed.apply(&[1.0]).is_err());
        assert_eq!(observed.current(), vec![3.0, 2.0]);
        let snap = obs.metrics_snapshot();
        assert_eq!(snap.counter("actuator.applies"), Some(2));
        assert_eq!(snap.counter("actuator.caps_changed"), Some(1));
        assert_eq!(snap.counter("actuator.apply_failures"), Some(1));
        assert_eq!(observed.inner().log().len(), 1);
        assert_eq!(observed.into_inner().current(), vec![3.0, 2.0]);
    }

    #[test]
    fn non_disruptive_for_running_jobs() {
        let mut c = cluster();
        c.vms[0].enqueue(Job {
            request: 1,
            remaining: 0.5,
        });
        let mut actuator = SimulatedCgroups::new(c);
        actuator.apply(&[4.0, 2.0]).unwrap();
        let cluster = actuator.into_cluster();
        // The queued job survived the cap change.
        assert_eq!(cluster.vms[0].queue_len(), 1);
        assert_eq!(cluster.vms[0].cap_cores, 4.0);
    }
}
