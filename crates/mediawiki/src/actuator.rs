//! Capacity actuation — the abstraction over the paper's cgroups daemon.
//!
//! The paper enforces ATM's capacity decisions with Linux control groups:
//! a small per-hypervisor daemon exposes the limits through a web API, and
//! caps change *on the fly* without restarting guests (Section IV-C).
//! [`CapacityActuator`] is that interface; [`SimulatedCgroups`] applies
//! caps to a simulated [`Cluster`] and keeps an audit log, standing in for
//! the real daemon.

use serde::{Deserialize, Serialize};

use crate::cluster::Cluster;
use crate::error::{SimError, SimResult};

/// One applied capacity change, for audit/inspection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapChange {
    /// VM name.
    pub vm: String,
    /// Cap before the change, in cores.
    pub from_cores: f64,
    /// Cap after the change, in cores.
    pub to_cores: f64,
}

/// Applies per-VM capacity limits to some enforcement backend.
///
/// Implementations must be *non-disruptive*: applying caps never restarts
/// or pauses workloads (the cgroups property the paper relies on).
pub trait CapacityActuator {
    /// Applies `caps` (cores, one per VM in cluster order) and returns
    /// the changes actually made.
    ///
    /// # Errors
    ///
    /// Returns an error when the cap vector does not match the managed
    /// VM set or a cap is invalid (non-finite or non-positive).
    fn apply(&mut self, caps: &[f64]) -> SimResult<Vec<CapChange>>;

    /// The currently enforced caps, in cores.
    fn current(&self) -> Vec<f64>;
}

/// A cgroups-like actuator over a simulated [`Cluster`]: caps apply
/// immediately, jobs in flight are untouched, and every change is logged.
#[derive(Debug, Clone)]
pub struct SimulatedCgroups {
    cluster: Cluster,
    log: Vec<CapChange>,
}

impl SimulatedCgroups {
    /// Wraps a cluster for actuation.
    pub fn new(cluster: Cluster) -> Self {
        SimulatedCgroups {
            cluster,
            log: Vec::new(),
        }
    }

    /// The audit log of all applied changes, oldest first.
    pub fn log(&self) -> &[CapChange] {
        &self.log
    }

    /// Returns the managed cluster, consuming the actuator.
    pub fn into_cluster(self) -> Cluster {
        self.cluster
    }

    /// Borrows the managed cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }
}

impl CapacityActuator for SimulatedCgroups {
    fn apply(&mut self, caps: &[f64]) -> SimResult<Vec<CapChange>> {
        if caps.len() != self.cluster.vms.len() {
            return Err(SimError::InvalidConfig("cap count != VM count"));
        }
        if caps.iter().any(|c| !c.is_finite() || *c <= 0.0) {
            return Err(SimError::InvalidConfig("caps must be positive and finite"));
        }
        let mut changes = Vec::new();
        for (vm, &cap) in self.cluster.vms.iter_mut().zip(caps) {
            let from = vm.cap_cores;
            if (from - cap).abs() > 1e-12 {
                vm.set_cap(cap);
                changes.push(CapChange {
                    vm: vm.name.clone(),
                    from_cores: from,
                    to_cores: vm.cap_cores,
                });
            }
        }
        self.log.extend(changes.iter().cloned());
        Ok(changes)
    }

    fn current(&self) -> Vec<f64> {
        self.cluster.vms.iter().map(|vm| vm.cap_cores).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Node;
    use crate::vm::{Job, SimVm};

    fn cluster() -> Cluster {
        Cluster {
            nodes: vec![Node {
                name: "n0".into(),
                cores: 8.0,
            }],
            vms: vec![SimVm::new("a", 0, 2.0), SimVm::new("b", 0, 2.0)],
        }
    }

    #[test]
    fn applies_and_logs_changes() {
        let mut actuator = SimulatedCgroups::new(cluster());
        let changes = actuator.apply(&[3.0, 2.0]).unwrap();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].vm, "a");
        assert_eq!(changes[0].from_cores, 2.0);
        assert_eq!(changes[0].to_cores, 3.0);
        assert_eq!(actuator.current(), vec![3.0, 2.0]);
        assert_eq!(actuator.log().len(), 1);
        // Unchanged caps produce no log entries.
        let none = actuator.apply(&[3.0, 2.0]).unwrap();
        assert!(none.is_empty());
        assert_eq!(actuator.log().len(), 1);
    }

    #[test]
    fn validates_input() {
        let mut actuator = SimulatedCgroups::new(cluster());
        assert!(actuator.apply(&[1.0]).is_err());
        assert!(actuator.apply(&[0.0, 1.0]).is_err());
        assert!(actuator.apply(&[f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn non_disruptive_for_running_jobs() {
        let mut c = cluster();
        c.vms[0].enqueue(Job {
            request: 1,
            remaining: 0.5,
        });
        let mut actuator = SimulatedCgroups::new(c);
        actuator.apply(&[4.0, 2.0]).unwrap();
        let cluster = actuator.into_cluster();
        // The queued job survived the cap change.
        assert_eq!(cluster.vms[0].queue_len(), 1);
        assert_eq!(cluster.vms[0].cap_cores, 4.0);
    }
}
